"""Visualize one Dirigent control episode with the telemetry tracer.

Runs ``streamcluster`` against five ``bwaves`` batch tasks under the full
Dirigent runtime while :class:`repro.sim.MachineTracer` samples the
node's management state, then prints ascii sparklines of

* memory-bandwidth utilization (the interference the BG phases inject),
* the FG core's effective LLC ways (the coarse controller growing the
  partition),
* a BG core's frequency (the fine controller throttling and releasing),
* the number of paused BG tasks (the controller's last resort).

Run with::

    python examples/control_episode_trace.py
"""

from repro.core import DirigentRuntime, ManagedTask, RuntimeOptions
from repro.experiments import deadlines_for, get_profile, mix_by_name
from repro.experiments.harness import build_machine
from repro.sim import MachineConfig, MachineTracer, sparkline

EXECUTIONS = 30


def main() -> None:
    config = MachineConfig()
    mix = mix_by_name("streamcluster bwaves")
    deadline = deadlines_for(mix, executions=EXECUTIONS)[0]

    machine, fg_procs, bg_procs = build_machine(mix, config)
    fg = fg_procs[0]
    task = ManagedTask(
        pid=fg.pid, core=fg.core,
        profile=get_profile(mix.fg_name, config),
        deadline_s=deadline, ema_weight=0.2,
    )
    runtime = DirigentRuntime(
        machine, [task], [p.pid for p in bg_procs], options=RuntimeOptions()
    )
    machine.add_completion_listener(
        lambda proc, record: runtime.on_fg_completion(
            proc.pid, record.end_s, record.duration_s,
            record.instructions, record.llc_misses,
        )
    )
    tracer = MachineTracer(machine, period_s=10e-3)
    runtime.start()
    tracer.start()

    durations = []
    machine.add_completion_listener(
        lambda proc, record: durations.append(record.duration_s)
    )
    while len(durations) < EXECUTIONS:
        machine.tick()

    met = sum(1 for d in durations if d <= deadline)
    steady = durations[10:]
    steady_met = sum(1 for d in steady if d <= deadline)
    print(
        "streamcluster + 5x bwaves under Dirigent (deadline %.3f s)"
        % deadline
    )
    print(
        "deadlines met: %d/%d overall, %d/%d after the controllers "
        "converge" % (met, len(durations), steady_met, len(steady))
    )
    print()
    width = 72
    bg_core = bg_procs[0].core
    print("memory utilization  |%s|" % sparkline(tracer.series("rho"), width))
    print("FG cache ways       |%s|" % sparkline(tracer.series("ways", core=0), width))
    print("BG core frequency   |%s|" % sparkline(
        tracer.series("frequency", core=bg_core), width))
    print("paused BG tasks     |%s|" % sparkline(tracer.series("paused"), width))
    print()
    print(
        "low '.' = low value, high '@' = high value; time runs left to "
        "right over ~%.0f s" % machine.now()
    )
    print(
        "Watch the FG ways ramp up as the coarse controller converges, "
        "and BG frequency dip\nwherever utilization spikes while the FG "
        "is predicted to be behind."
    )


if __name__ == "__main__":
    main()
