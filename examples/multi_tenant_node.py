"""Scenario: backfilling a multi-tenant node with batch work.

A datacenter operator runs two copies of a latency-critical animation
service (``fluidanimate``) on one node and wants to backfill the four
remaining cores with rotating batch jobs (the ``lbm+soplex`` pair, which
models tasks being context-switched in and out by the cluster scheduler).

The example compares all five of the paper's configurations and prints a
Figure 9c-style row, showing that only Dirigent holds the deadline for
both service instances without giving up most of the batch throughput.

Run with::

    python examples/multi_tenant_node.py
"""

from repro.core import PAPER_POLICIES
from repro.experiments import measure_baseline, mix_by_name, run_policy

EXECUTIONS = 25


def main() -> None:
    mix = mix_by_name("fluidanimate x2 lbm+soplex")
    baseline = measure_baseline(mix, executions=EXECUTIONS)
    deadline = baseline.deadlines_s[0]
    print(
        "Node: 2x fluidanimate (FG) + 4x rotating lbm/soplex (BG); "
        "deadline %.3f s" % deadline
    )
    print()
    print("  policy         FG success   batch vs Baseline   FG sigma")
    for policy in PAPER_POLICIES:
        result = run_policy(mix, policy, executions=EXECUTIONS)
        print(
            "  %-13s  %5.0f%%        %5.1f%%             %.4f s"
            % (
                policy.name,
                100 * result.fg_success_ratio,
                100 * result.bg_instr_per_s / baseline.bg_instr_per_s,
                result.fg_stats.std_s,
            )
        )
    print()
    print(
        "Reading: with several FG tasks sharing the cache partition the\n"
        "fine-grain-only controller (DirigentFreq) must be conservative;\n"
        "adding coarse cache partitioning (Dirigent) isolates the service\n"
        "instances and returns most of the batch throughput."
    )


if __name__ == "__main__":
    main()
