"""Scenario: cluster-level consolidation with per-node Dirigent.

The paper argues Dirigent is orthogonal to QoS-aware cluster schedulers
(Paragon, Quasar, ...) and "can be integrated with these schemes to
manage performance on each node".  This example plays the cluster
scheduler's role:

1. measure the completion-time distribution of a latency-critical task
   stream under Baseline and under Dirigent;
2. let a reservation-based dispatcher pack as many streams as possible
   onto a rack of nodes for each distribution (Figure 2 at rack scale);
3. run a small mixed cluster — one unmanaged node, one Dirigent node —
   in lockstep and report per-node and cluster-wide outcomes;
4. crash one node of a small fleet mid-run and let the self-healing
   control plane (:mod:`repro.cluster.control`) re-place its stream.

Run with::

    python examples/cluster_consolidation.py
"""

from repro.cluster import (
    Cluster,
    ClusterNode,
    ReservationDispatcher,
    StreamRequest,
)
from repro.core import BASELINE, DIRIGENT
from repro.experiments import measure_baseline, mix_by_name, run_policy
from repro.faults import NodeFaultPlan, NodeFaultSpec
from repro.sched.reservation import reservation_for

EXECUTIONS = 25
RACK_NODES = 4


def main(executions: int = EXECUTIONS, rack_nodes: int = RACK_NODES) -> None:
    mix = mix_by_name("ferret rs")
    baseline = measure_baseline(mix, executions=executions)
    dirigent = run_policy(mix, DIRIGENT, executions=executions)

    print("Task: %s (deadline %.3f s)" % (mix.fg_name, baseline.deadlines_s[0]))
    print(
        "95%% reservation per task: Baseline %.3f s, Dirigent %.3f s"
        % (
            reservation_for(baseline.all_durations, 0.95),
            reservation_for(dirigent.all_durations, 0.95),
        )
    )

    # Rack-scale packing: three latency-critical cores per node.
    period = reservation_for(baseline.all_durations, 0.95) * 1.1
    for label, durations in (
        ("Baseline", baseline.all_durations),
        ("Dirigent", dirigent.all_durations),
    ):
        dispatcher = ReservationDispatcher(
            num_nodes=rack_nodes, capacity_cores=3.0
        )
        requests = [
            StreamRequest(
                name="stream-%d" % i,
                period_s=period,
                durations_s=tuple(durations),
            )
            for i in range(4 * rack_nodes)
        ]
        admitted = dispatcher.place_all(requests)
        print(
            "%s distributions: %2d streams admitted on %d nodes "
            "(mean reserved utilization %.0f%%)"
            % (
                label,
                admitted,
                rack_nodes,
                100
                * sum(dispatcher.utilization())
                / (len(dispatcher.utilization()) * 3.0),
            )
        )

    # A small mixed cluster in lockstep.
    print()
    print("Running a 2-node cluster (one unmanaged, one Dirigent)...")
    cluster = Cluster(
        [
            ClusterNode("unmanaged", mix, BASELINE, executions=executions),
            ClusterNode("dirigent", mix, DIRIGENT, executions=executions,
                        seed=1),
        ]
    )
    outcome = cluster.run()
    for name, result in outcome.node_results.items():
        print(
            "  %-9s FG success %3.0f%%  sigma %.4f s  batch %.2f Ginstr/s"
            % (
                name,
                100 * result.fg_success_ratio,
                result.fg_stats.std_s,
                result.bg_instr_per_s / 1e9,
            )
        )
    print(
        "  cluster-wide FG success: %.0f%%, total batch %.2f Ginstr/s"
        % (
            100 * outcome.fg_success_ratio,
            outcome.total_bg_instr_per_s / 1e9,
        )
    )

    # Fleet self-healing: crash one node mid-run; the control plane
    # detects the missing heartbeats and re-places its stream.
    print()
    print("Crashing one node of a 3-node Dirigent fleet...")
    fleet = Cluster(
        [
            ClusterNode("n%d" % i, mix, DIRIGENT, executions=executions,
                        seed=10 + i, warmup=2)
            for i in range(3)
        ]
    )
    plan = NodeFaultPlan(
        scenario="demo-crash",
        seed=0,
        overrides=(NodeFaultSpec(node="n1", kind="crash", onset_s=0.5),),
    )
    healed = fleet.run(fault_plan=plan)
    print(
        "  fleet attainment %.0f%%  failovers %d  stranded executions %d"
        % (
            100 * healed.fg_success_ratio,
            healed.failovers,
            healed.stranded_executions,
        )
    )
    for incident, (ttd, ttr) in enumerate(
        zip(healed.time_to_detection_s, healed.time_to_recovery_s)
    ):
        print(
            "  incident %d: detected after %.0f ms, re-placed after %.0f ms"
            % (incident, 1000 * ttd, 1000 * ttr)
        )


if __name__ == "__main__":
    main()
