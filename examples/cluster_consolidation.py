"""Scenario: cluster-level consolidation with per-node Dirigent.

The paper argues Dirigent is orthogonal to QoS-aware cluster schedulers
(Paragon, Quasar, ...) and "can be integrated with these schemes to
manage performance on each node".  This example plays the cluster
scheduler's role:

1. measure the completion-time distribution of a latency-critical task
   stream under Baseline and under Dirigent;
2. let a reservation-based dispatcher pack as many streams as possible
   onto a rack of nodes for each distribution (Figure 2 at rack scale);
3. run a small mixed cluster — one unmanaged node, one Dirigent node —
   in lockstep and report per-node and cluster-wide outcomes.

Run with::

    python examples/cluster_consolidation.py
"""

from repro.cluster import (
    Cluster,
    ClusterNode,
    ReservationDispatcher,
    StreamRequest,
)
from repro.core import BASELINE, DIRIGENT
from repro.experiments import measure_baseline, mix_by_name, run_policy
from repro.sched.reservation import reservation_for

EXECUTIONS = 25
RACK_NODES = 4


def main() -> None:
    mix = mix_by_name("ferret rs")
    baseline = measure_baseline(mix, executions=EXECUTIONS)
    dirigent = run_policy(mix, DIRIGENT, executions=EXECUTIONS)

    print("Task: %s (deadline %.3f s)" % (mix.fg_name, baseline.deadlines_s[0]))
    print(
        "95%% reservation per task: Baseline %.3f s, Dirigent %.3f s"
        % (
            reservation_for(baseline.all_durations, 0.95),
            reservation_for(dirigent.all_durations, 0.95),
        )
    )

    # Rack-scale packing: three latency-critical cores per node.
    period = reservation_for(baseline.all_durations, 0.95) * 1.1
    for label, durations in (
        ("Baseline", baseline.all_durations),
        ("Dirigent", dirigent.all_durations),
    ):
        dispatcher = ReservationDispatcher(
            num_nodes=RACK_NODES, capacity_cores=3.0
        )
        requests = [
            StreamRequest(
                name="stream-%d" % i,
                period_s=period,
                durations_s=tuple(durations),
            )
            for i in range(4 * RACK_NODES)
        ]
        admitted = dispatcher.place_all(requests)
        print(
            "%s distributions: %2d streams admitted on %d nodes "
            "(mean reserved utilization %.0f%%)"
            % (
                label,
                admitted,
                RACK_NODES,
                100
                * sum(dispatcher.utilization())
                / (len(dispatcher.utilization()) * 3.0),
            )
        )

    # A small mixed cluster in lockstep.
    print()
    print("Running a 2-node cluster (one unmanaged, one Dirigent)...")
    cluster = Cluster(
        [
            ClusterNode("unmanaged", mix, BASELINE, executions=EXECUTIONS),
            ClusterNode("dirigent", mix, DIRIGENT, executions=EXECUTIONS,
                        seed=1),
        ]
    )
    outcome = cluster.run()
    for name, result in outcome.node_results.items():
        print(
            "  %-9s FG success %3.0f%%  sigma %.4f s  batch %.2f Ginstr/s"
            % (
                name,
                100 * result.fg_success_ratio,
                result.fg_stats.std_s,
                result.bg_instr_per_s / 1e9,
            )
        )
    print(
        "  cluster-wide FG success: %.0f%%, total batch %.2f Ginstr/s"
        % (
            100 * outcome.fg_success_ratio,
            outcome.total_bg_instr_per_s / 1e9,
        )
    )


if __name__ == "__main__":
    main()
