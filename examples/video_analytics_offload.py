"""Scenario: cloud-offloaded video analytics with a tunable SLO.

The paper's motivating third workload class is computation offloaded from
user devices to the cloud — online video processing, stream analysis,
recognition — where tasks take hundreds of milliseconds, finishing
*early* has no utility, and finishing *late* is a QoS violation.

This example models a node processing offloaded rendering/analysis tasks
(``raytrace``) back to back while batch science jobs (``bwaves``) fill
the other five cores.  It sweeps the service-level objective (target
completion time) from "standalone speed" to "18% slack" and shows the
tradeoff Dirigent exposes (paper Figure 15): every percent of FG slack
the operator grants is converted into batch throughput, while the SLO
success rate stays high.

Run with::

    python examples/video_analytics_offload.py
"""

from repro.core import DIRIGENT
from repro.experiments import (
    measure_baseline,
    measure_standalone,
    mix_by_name,
    run_policy,
)

EXECUTIONS = 25
SLO_FACTORS = (1.00, 1.06, 1.12, 1.18)


def main() -> None:
    mix = mix_by_name("raytrace bwaves")
    standalone = measure_standalone(mix.fg_name, executions=EXECUTIONS)
    baseline = measure_baseline(mix, executions=EXECUTIONS)

    print("Offload node: 1x raytrace task stream + 5x bwaves batch jobs")
    print("Standalone task time : %.3f s" % standalone.stats.mean_s)
    print(
        "Unmanaged collocation: %.3f s mean, sigma %.3f s, batch = 100%%"
        % (baseline.fg_stats.mean_s, baseline.fg_stats.std_s)
    )
    print()
    print("SLO sweep under Dirigent:")
    print("  target   task mean   sigma     SLO met   batch throughput")
    for factor in SLO_FACTORS:
        slo = standalone.stats.mean_s * factor
        result = run_policy(
            mix, DIRIGENT, deadlines_s=(slo,), executions=EXECUTIONS
        )
        print(
            "  %.2fx    %.3f s     %.4f s   %4.0f%%     %5.1f%% of unmanaged"
            % (
                factor,
                result.fg_stats.mean_s,
                result.fg_stats.std_s,
                100 * result.fg_success_ratio,
                100 * result.bg_instr_per_s / baseline.bg_instr_per_s,
            )
        )
    print()
    print(
        "Reading: a tighter SLO forces Dirigent to throttle/pause the\n"
        "batch jobs; relaxing it converts the slack into batch throughput\n"
        "while completion times stay tightly distributed around the target."
    )


if __name__ == "__main__":
    main()
