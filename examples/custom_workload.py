"""Define your own workload and manage it with Dirigent directly.

This example uses the library's lower-level API — no experiment harness:

1. define a custom phase-structured FG workload (an "object detection"
   pipeline) and a custom streaming BG workload;
2. profile the FG offline with :class:`repro.core.OfflineProfiler`;
3. build a machine, pin processes, wire the :class:`DirigentRuntime` to
   completion notifications, and run it.

It is the template to follow when plugging Dirigent into a new substrate:
everything the runtime needs from the platform is the
:class:`repro.sim.SystemInterface` protocol plus completion events.

Run with::

    python examples/custom_workload.py
"""

import statistics

from repro.core import DirigentRuntime, ManagedTask, OfflineProfiler, RuntimeOptions
from repro.sim import Machine, MachineConfig
from repro.workloads import KIND_BG, KIND_FG, PhaseSpec, WorkloadSpec

DETECTOR = WorkloadSpec(
    name="object-detector",
    kind=KIND_FG,
    description="Synthetic object-detection pipeline",
    input_noise=0.004,
    phases=(
        PhaseSpec("decode", 0.30e9, base_cpi=0.70, apki=12.0,
                  mpki_floor=0.3, mpki_peak=2.2, ways_scale=3.0),
        PhaseSpec("feature-extract", 0.55e9, base_cpi=0.60, apki=8.0,
                  mpki_floor=0.15, mpki_peak=1.5, ways_scale=3.0),
        PhaseSpec("inference", 0.45e9, base_cpi=0.85, apki=16.0,
                  mpki_floor=0.5, mpki_peak=3.0, ways_scale=4.0),
        PhaseSpec("postprocess", 0.20e9, base_cpi=0.65, apki=6.0,
                  mpki_floor=0.1, mpki_peak=1.0, ways_scale=2.5),
    ),
)

LOG_CRUNCHER = WorkloadSpec(
    name="log-cruncher",
    kind=KIND_BG,
    description="Synthetic streaming log-analysis batch job",
    phases=(
        PhaseSpec("scan", 4.0e9, base_cpi=0.80, apki=48.0,
                  mpki_floor=1.8, mpki_peak=2.6, ways_scale=2.5,
                  mem_sensitivity=0.8),
        PhaseSpec("aggregate", 7.0e9, base_cpi=0.60, apki=4.0,
                  mpki_floor=0.2, mpki_peak=0.7, ways_scale=3.0),
    ),
)

EXECUTIONS = 20


def main() -> None:
    config = MachineConfig(seed=2026)

    # 1. Offline profile of the FG task running alone (Section 4.1).
    profile = OfflineProfiler(machine_config=config).profile(DETECTOR)
    print(
        "Profiled %s: %d segments, %.3f s standalone"
        % (DETECTOR.name, profile.num_segments, profile.total_duration_s)
    )

    # 2. Build the node: FG on core 0, batch jobs on cores 1-5.
    machine = Machine(config)
    fg = machine.spawn(DETECTOR, core=0, nice=-5)
    bg = [machine.spawn(LOG_CRUNCHER, core=c, nice=5) for c in range(1, 6)]

    # 3. Attach the Dirigent runtime.  The deadline grants 40% slack over
    #    the standalone time (collocation with five streaming jobs costs
    #    roughly that much unmanaged).
    deadline = profile.total_duration_s * 1.40
    task = ManagedTask(
        pid=fg.pid, core=fg.core, profile=profile, deadline_s=deadline,
        ema_weight=0.2,
    )
    runtime = DirigentRuntime(
        machine, [task], [p.pid for p in bg],
        options=RuntimeOptions(initial_fg_ways=2),
    )
    machine.add_completion_listener(
        lambda proc, record: runtime.on_fg_completion(
            proc.pid, record.end_s, record.duration_s,
            record.instructions, record.llc_misses,
        )
    )
    runtime.start()

    # 4. Drive the machine until enough task executions completed.
    durations = []
    machine.add_completion_listener(
        lambda proc, record: durations.append(record.duration_s)
    )
    while len(durations) < EXECUTIONS:
        machine.tick()

    # Skip the first executions while the predictor and the coarse
    # controller warm up, as the paper's measurement windows do.
    measured = durations[5:]
    met = sum(1 for d in measured if d <= deadline)
    print("Deadline: %.3f s" % deadline)
    print(
        "Measured %d executions: mean %.3f s, sigma %.4f s, %d/%d on time"
        % (
            len(measured),
            statistics.mean(measured),
            statistics.pstdev(measured),
            met,
            len(measured),
        )
    )
    print(
        "Coarse controller FG partition history: %s"
        % runtime.coarse_controller.partition_history
    )
    grades = runtime.bg_grade_histogram
    total = sum(grades.values())
    print(
        "BG cores spent %.0f%% of samples at the top frequency grade"
        % (100 * grades.get(4, 0) / total)
    )


if __name__ == "__main__":
    main()
