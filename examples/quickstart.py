"""Quickstart: enforce QoS for one latency-critical task with Dirigent.

Collocates the ``ferret`` content-similarity-search task (latency
critical) with five ``rs`` (MLPack Range Search) batch tasks on the
simulated 6-core node, then compares free contention (Baseline) against
the full Dirigent runtime.

Run with::

    python examples/quickstart.py
"""

from repro.core import BASELINE, DIRIGENT
from repro.experiments import measure_baseline, mix_by_name, run_policy
from repro.experiments.metrics import std_reduction

EXECUTIONS = 30


def main() -> None:
    mix = mix_by_name("ferret rs")
    print("Workload mix: 1x %s (FG) + 5x %s (BG)" % (mix.fg_name, mix.bg_name))

    # Baseline: every core at maximum frequency, free contention.  Its
    # statistics also define the deadline (mu + 0.3 sigma, as in the paper).
    baseline = measure_baseline(mix, executions=EXECUTIONS)
    deadline = baseline.deadlines_s[0]
    print("\nBaseline (no management)")
    print("  FG mean completion : %.3f s" % baseline.fg_stats.mean_s)
    print("  FG sigma           : %.4f s" % baseline.fg_stats.std_s)
    print("  deadline (mu+0.3s) : %.3f s" % deadline)
    print("  FG success ratio   : %.0f%%" % (100 * baseline.fg_success_ratio))

    # Dirigent: offline profile + online prediction + fine (DVFS, pausing)
    # and coarse (cache partitioning) control.
    dirigent = run_policy(mix, DIRIGENT, executions=EXECUTIONS)
    print("\nDirigent")
    print("  FG mean completion : %.3f s" % dirigent.fg_stats.mean_s)
    print("  FG sigma           : %.4f s" % dirigent.fg_stats.std_s)
    print("  FG success ratio   : %.0f%%" % (100 * dirigent.fg_success_ratio))
    print(
        "  sigma reduction    : %.0f%%"
        % (100 * std_reduction(baseline.fg_stats.std_s, dirigent.fg_stats.std_s))
    )
    print(
        "  BG throughput      : %.0f%% of Baseline"
        % (100 * dirigent.bg_instr_per_s / baseline.bg_instr_per_s)
    )
    print(
        "  LLC ways given to FG over time: %s"
        % (dirigent.partition_history,)
    )

    errors = [r.relative_error for r in dirigent.prediction_logs[0]]
    print(
        "  completion-time predictor mean error: %.1f%%"
        % (100 * sum(errors) / len(errors))
    )


if __name__ == "__main__":
    main()
