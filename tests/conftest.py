"""Shared fixtures: small machines and fast synthetic workloads.

Unit tests run on miniature workloads (tens of milliseconds of virtual
time) so the whole suite stays fast; integration tests use the real
catalog with reduced execution counts.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.spec import KIND_BG, KIND_FG, PhaseSpec, WorkloadSpec


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Point the persistent result cache at a throwaway directory.

    Tests must neither read a developer's warm ``.repro_cache`` (results
    could mask regressions) nor delete it (``clear_caches`` purges disk).
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro_cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


def make_phase(
    name="p",
    instructions=2e8,
    base_cpi=0.8,
    apki=10.0,
    mpki_floor=0.3,
    mpki_peak=2.0,
    ways_scale=4.0,
    mem_sensitivity=1.0,
):
    """PhaseSpec factory with small-test defaults."""
    return PhaseSpec(
        name=name,
        instructions=instructions,
        base_cpi=base_cpi,
        apki=apki,
        mpki_floor=mpki_floor,
        mpki_peak=mpki_peak,
        ways_scale=ways_scale,
        mem_sensitivity=mem_sensitivity,
    )


def make_fg(name="tiny-fg", phases=None, input_noise=0.0, total_gi=0.4):
    """A small FG workload (~0.2 s standalone) for unit tests."""
    if phases is None:
        half = total_gi / 2 * 1e9
        phases = (
            make_phase("compute", instructions=half, base_cpi=0.6, mpki_floor=0.1,
                       mpki_peak=1.0, apki=6.0),
            make_phase("memory", instructions=half, base_cpi=0.9, mpki_floor=0.8,
                       mpki_peak=4.0, apki=18.0),
        )
    return WorkloadSpec(
        name=name, kind=KIND_FG, phases=tuple(phases), input_noise=input_noise
    )


def make_bg(name="tiny-bg", heavy=True):
    """A small BG workload with two contrasting phases."""
    phases = (
        make_phase(
            "heavy",
            instructions=6e8,
            base_cpi=0.8,
            apki=45.0 if heavy else 8.0,
            mpki_floor=2.0 if heavy else 0.4,
            mpki_peak=3.0 if heavy else 1.0,
            ways_scale=2.5,
            mem_sensitivity=0.8,
        ),
        make_phase(
            "calm",
            instructions=9e8,
            base_cpi=0.6,
            apki=4.0,
            mpki_floor=0.2,
            mpki_peak=0.6,
            ways_scale=3.0,
        ),
    )
    return WorkloadSpec(name=name, kind=KIND_BG, phases=phases)


@pytest.fixture
def config():
    """Default paper-style machine configuration with a fixed seed."""
    return MachineConfig(seed=42)


@pytest.fixture
def quiet_config():
    """Noise-free configuration for deterministic numeric checks."""
    return MachineConfig(
        seed=42,
        os_jitter_sigma=0.0,
        timer_jitter_prob=0.0,
    )


@pytest.fixture
def machine(config):
    """An empty machine with the default config."""
    return Machine(config)


@pytest.fixture
def quiet_machine(quiet_config):
    """An empty noise-free machine."""
    return Machine(quiet_config)


@pytest.fixture
def tiny_fg():
    """Small two-phase FG workload."""
    return make_fg()


@pytest.fixture
def tiny_bg():
    """Small two-phase BG workload."""
    return make_bg()


def run_executions(machine, n, guard_s=300.0):
    """Tick the machine until n FG completions occur; return the records."""
    records = []
    machine.add_completion_listener(lambda p, r: records.append(r))
    guard = int(guard_s / machine.config.tick_s)
    ticks = 0
    while len(records) < n:
        machine.tick()
        ticks += 1
        assert ticks <= guard, "machine did not complete executions in time"
    return records
