"""Unit tests for RunResult's derived metrics (synthetic data)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import RunResult
from repro.experiments.mixes import Mix


def result(durations=((1.0, 1.2, 0.9),), deadlines=(1.1,), **kwargs):
    defaults = dict(
        mix=Mix(name="ferret rs", fg_name="ferret", bg_name="rs"),
        policy_name="Test",
        deadlines_s=deadlines,
        durations_s=durations,
        bg_instr_per_s=1e9,
        elapsed_s=10.0,
        fg_instr=2e9,
        fg_misses=4e6,
        bg_misses=1e7,
        bg_instr=1e10,
    )
    defaults.update(kwargs)
    return RunResult(**defaults)


class TestDerivedMetrics:
    def test_all_durations_pools_tasks(self):
        r = result(durations=((1.0, 1.2), (0.8, 0.9)), deadlines=(1.1, 1.1))
        assert sorted(r.all_durations) == [0.8, 0.9, 1.0, 1.2]

    def test_fg_stats(self):
        r = result()
        assert r.fg_stats.count == 3
        assert r.fg_stats.mean_s == pytest.approx((1.0 + 1.2 + 0.9) / 3)

    def test_success_ratio_per_task_deadlines(self):
        r = result(
            durations=((1.0, 1.2), (0.8, 2.0)),
            deadlines=(1.1, 0.9),
        )
        # Task 1: 1.0 ok, 1.2 late. Task 2: 0.8 ok, 2.0 late.
        assert r.fg_success_ratio == pytest.approx(0.5)

    def test_success_ratio_boundary_inclusive(self):
        r = result(durations=((1.1,),), deadlines=(1.1,))
        assert r.fg_success_ratio == 1.0

    def test_success_ratio_empty_rejected(self):
        r = result(durations=((),), deadlines=(1.1,))
        with pytest.raises(ExperimentError):
            r.fg_success_ratio

    def test_fg_mpki(self):
        r = result(fg_instr=2e9, fg_misses=4e6)
        assert r.fg_mpki == pytest.approx(2.0)

    def test_fg_mpki_zero_instructions(self):
        r = result(fg_instr=0.0)
        assert r.fg_mpki == 0.0

    def test_result_is_immutable(self):
        r = result()
        with pytest.raises(AttributeError):
            r.policy_name = "other"
