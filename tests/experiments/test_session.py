"""Tests for PolicySession (the incrementally driven run)."""

import pytest

from repro.core.policies import BASELINE, DIRIGENT
from repro.errors import ExperimentError
from repro.experiments.harness import PolicySession, clear_caches, run_policy
from repro.experiments.mixes import mix_by_name

EXECS = 5
WARMUP = 2


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestPolicySession:
    def test_incremental_drive_matches_run_policy(self):
        mix = mix_by_name("ferret rs")
        via_function = run_policy(
            mix, BASELINE, executions=EXECS, warmup=WARMUP
        )
        session = PolicySession(
            mix, BASELINE, executions=EXECS, warmup=WARMUP
        )
        while not session.done:
            session.tick()
        via_session = session.result()
        assert via_session.durations_s == via_function.durations_s
        assert via_session.bg_instr_per_s == pytest.approx(
            via_function.bg_instr_per_s
        )

    def test_result_before_done_rejected(self):
        session = PolicySession(
            mix_by_name("ferret rs"), BASELINE, executions=EXECS,
            warmup=WARMUP,
        )
        with pytest.raises(ExperimentError):
            session.result()

    def test_completions_progress(self):
        session = PolicySession(
            mix_by_name("ferret rs"), BASELINE, executions=EXECS,
            warmup=WARMUP,
        )
        assert session.completions() == [0]
        while not session.done:
            session.tick()
        assert session.completions()[0] >= EXECS + WARMUP

    def test_tick_after_done_is_noop(self):
        session = PolicySession(
            mix_by_name("ferret rs"), BASELINE, executions=EXECS,
            warmup=WARMUP,
        )
        while not session.done:
            session.tick()
        now = session.machine.now()
        session.tick()
        assert session.machine.now() == now

    def test_runtime_attached_for_dirigent(self):
        session = PolicySession(
            mix_by_name("ferret rs"), DIRIGENT, executions=EXECS,
            warmup=WARMUP,
        )
        assert session.runtime is not None
        assert session.runtime.coarse_controller is not None

    def test_invalid_executions_rejected(self):
        with pytest.raises(ExperimentError):
            PolicySession(
                mix_by_name("ferret rs"), BASELINE, executions=0
            )
