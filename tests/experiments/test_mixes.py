"""Unit tests for the evaluation mixes."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.mixes import (
    MULTI_FG_COMBOS,
    Mix,
    all_single_fg_mixes,
    mix_by_name,
    multi_fg_mixes,
    rotate_bg_mixes,
    single_bg_mixes,
)


class TestMixCounts:
    def test_fifteen_single_bg_mixes(self):
        assert len(single_bg_mixes()) == 15

    def test_twenty_rotate_mixes(self):
        assert len(rotate_bg_mixes()) == 20

    def test_thirty_five_single_fg_mixes(self):
        # The paper's "all 35 workload combinations" (Figure 7).
        assert len(all_single_fg_mixes()) == 35

    def test_fifteen_multi_fg_mixes(self):
        assert len(multi_fg_mixes()) == 15

    def test_multi_fg_covers_five_combos(self):
        assert len(MULTI_FG_COMBOS) == 5


class TestMixValidation:
    def test_mix_needs_exactly_one_bg_kind(self):
        with pytest.raises(ExperimentError):
            Mix(name="x", fg_name="ferret")
        with pytest.raises(ExperimentError):
            Mix(name="x", fg_name="ferret", bg_name="rs", rotate_name="lbm+namd")

    def test_unknown_fg_rejected(self):
        with pytest.raises(Exception):
            Mix(name="x", fg_name="nope", bg_name="rs")

    def test_fg_count_positive(self):
        with pytest.raises(ExperimentError):
            Mix(name="x", fg_name="ferret", fg_count=0, bg_name="rs")

    def test_bg_label(self):
        assert Mix(name="a", fg_name="ferret", bg_name="rs").bg_label == "rs"
        assert (
            Mix(name="b", fg_name="ferret", rotate_name="lbm+namd").bg_label
            == "lbm+namd"
        )

    def test_is_rotate(self):
        assert Mix(name="b", fg_name="ferret", rotate_name="lbm+namd").is_rotate
        assert not Mix(name="a", fg_name="ferret", bg_name="rs").is_rotate


class TestNames:
    def test_single_bg_names_follow_paper_format(self):
        names = {m.name for m in single_bg_mixes()}
        assert "ferret rs" in names
        assert "streamcluster pca" in names

    def test_multi_fg_names_include_copy_count(self):
        names = {m.name for m in multi_fg_mixes()}
        assert "raytrace x2 rs" in names
        assert "streamcluster x3 lbm+namd" in names

    def test_mix_by_name_roundtrip(self):
        for mix in all_single_fg_mixes()[:5] + multi_fg_mixes()[:3]:
            assert mix_by_name(mix.name).name == mix.name

    def test_mix_by_name_unknown(self):
        with pytest.raises(ExperimentError):
            mix_by_name("nope nope")

    def test_multi_fg_process_totals(self):
        for mix in multi_fg_mixes():
            assert 1 <= mix.fg_count <= 3
