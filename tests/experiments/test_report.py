"""Unit tests for the text report renderer."""

from repro.experiments.figures import FigureResult
from repro.experiments.report import render


def result():
    return FigureResult(
        name="figX",
        title="Example",
        headers=("A", "LongHeader"),
        rows=(("aa", 1.25), ("b", 22)),
        notes=("a note",),
    )


class TestRender:
    def test_contains_title_and_headers(self):
        text = render(result())
        assert "figX — Example" in text
        assert "LongHeader" in text

    def test_rows_rendered(self):
        text = render(result())
        assert "1.25" in text
        assert "22" in text

    def test_notes_rendered(self):
        assert "note: a note" in render(result())

    def test_truncation(self):
        text = render(result(), max_rows=1)
        assert "22" not in text
        assert "1 more rows" in text

    def test_columns_aligned(self):
        lines = render(result()).splitlines()
        header, sep = lines[1], lines[2]
        assert len(header) == len(sep)
