"""Persistent result cache: key correctness, durability, invalidation."""

import os
import pickle

import pytest

from repro.core.policies import BASELINE, DIRIGENT
from repro.experiments import harness
from repro.experiments.diskcache import (
    DiskCache,
    cache_key,
    code_version_tag,
    get_cache,
)
from repro.experiments.mixes import Mix
from repro.sim.config import MachineConfig


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "cache")


def _mix(**overrides):
    fields = dict(
        name="ferret bwaves", fg_name="ferret", fg_count=1,
        bg_name="bwaves",
    )
    fields.update(overrides)
    return Mix(**fields)


class TestCacheKeys:
    def test_same_parts_same_key(self):
        parts = (_mix(), MachineConfig(), 8, 2, 0)
        assert cache_key("run", parts) == cache_key("run", parts)

    def test_seed_changes_key(self):
        config = MachineConfig()
        one = cache_key("run", (_mix(), config, 8, 2, 0))
        two = cache_key("run", (_mix(), config, 8, 2, 1))
        assert one != two

    def test_config_seed_changes_key(self):
        one = cache_key("run", (_mix(), MachineConfig(seed=0), 8, 2, 0))
        two = cache_key("run", (_mix(), MachineConfig(seed=1), 8, 2, 0))
        assert one != two

    @pytest.mark.parametrize(
        "field, value",
        [
            ("mem_peak_gbps", 21.0),
            ("llc_ways", 12),
            ("num_cores", 4),
            ("os_jitter_sigma", 0.0),
            ("tick_s", 2e-3),
        ],
    )
    def test_single_config_field_changes_key(self, field, value):
        base = MachineConfig()
        changed = MachineConfig(**{field: value})
        assert getattr(base, field) != getattr(changed, field)
        one = cache_key("run", (_mix(), base, 8, 2, 0))
        two = cache_key("run", (_mix(), changed, 8, 2, 0))
        assert one != two

    def test_mix_and_policy_change_key(self):
        config = MachineConfig()
        base = cache_key("run", (_mix(), BASELINE, config, 8, 2, 0))
        other_mix = cache_key(
            "run", (_mix(bg_name="lbm"), BASELINE, config, 8, 2, 0)
        )
        other_policy = cache_key(
            "run", (_mix(), DIRIGENT, config, 8, 2, 0)
        )
        assert len({base, other_mix, other_policy}) == 3

    def test_kind_namespaces_keys(self):
        parts = (_mix(), MachineConfig(), 8, 2, 0)
        assert cache_key("run", parts) != cache_key("baseline", parts)

    def test_code_version_tag_is_stable(self):
        assert code_version_tag() == code_version_tag()
        assert len(code_version_tag()) == 16


class TestDiskCacheStore:
    def test_roundtrip(self, cache):
        parts = ("ferret", MachineConfig(), 5)
        assert cache.get("standalone", parts) == (False, None)
        cache.put("standalone", parts, {"answer": 42})
        hit, value = cache.get("standalone", parts)
        assert hit and value == {"answer": 42}

    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        parts = ("ferret", 0)
        cache.put("run", parts, [1, 2, 3])
        path = cache._path("run", cache_key("run", parts))
        path.write_bytes(b"not a pickle")
        hit, value = cache.get("run", parts)
        assert not hit and value is None
        assert not path.exists()

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = DiskCache(tmp_path / "off", enabled=False)
        cache.put("run", ("x",), 1)
        assert cache.get("run", ("x",)) == (False, None)
        assert not (tmp_path / "off").exists()

    def test_clear_removes_entries(self, cache):
        cache.put("run", ("a",), 1)
        cache.put("baseline", ("b",), 2)
        assert cache.stats()["total_entries"] == 2
        assert cache.clear() == 2
        assert cache.stats()["total_entries"] == 0

    def test_stats_counts_hits_and_misses(self, cache):
        cache.get("run", ("nope",))
        cache.put("run", ("yes",), 3)
        cache.get("run", ("yes",))
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"]["run"] == 1


class TestHarnessIntegration:
    def test_get_cache_honors_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert str(get_cache().root) == str(tmp_path / "envcache")
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not get_cache().enabled

    def test_clear_caches_purges_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "purge"))
        disk = get_cache()
        disk.put("run", ("cell",), 1)
        disk.put("profile", ("prof",), 2)
        assert disk.stats()["total_entries"] == 2
        harness.clear_caches()
        assert get_cache().stats()["total_entries"] == 0

    def test_results_survive_process_memory(self, tmp_path, monkeypatch):
        """A fresh in-memory cache still hits the persisted result."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "persist"))
        from repro.experiments.mixes import mix_by_name

        mix = mix_by_name("ferret bwaves")
        first = harness.measure_baseline(mix, executions=2, warmup=1)
        # Drop only the in-memory layer; keep disk.
        harness._BASELINE_CACHE.clear()
        disk = get_cache()
        hits_before = disk.hits
        second = harness.measure_baseline(mix, executions=2, warmup=1)
        assert disk.hits == hits_before + 1
        assert first is not second
        assert repr(first) == repr(second)


class TestTornWriteRecovery:
    """A writer killed mid-write must never wedge or poison the cache."""

    def test_writer_killed_midway_publishes_nothing(
        self, cache, monkeypatch
    ):
        parts = ("ferret", 4)

        def torn_dump(value, handle, *args, **kwargs):
            # Half a pickle frame hits the temp file, then the process
            # dies (a kill signal surfaces as BaseException here).
            handle.write(b"\x80\x05partial")
            handle.flush()
            raise KeyboardInterrupt

        monkeypatch.setattr(pickle, "dump", torn_dump)
        with pytest.raises(KeyboardInterrupt):
            cache.put("run", parts, list(range(100)))
        monkeypatch.undo()
        path = cache._path("run", cache_key("run", parts))
        # The atomic-replace protocol never published the torn bytes,
        # and the orphaned temp file was unlinked on the way out.
        assert not path.exists()
        assert list(path.parent.glob("*.tmp")) == []
        hit, value = cache.get("run", parts)
        assert not hit and value is None
        assert cache.stats()["corrupt_drops"] == 0  # clean miss, not torn

    def test_torn_entry_on_disk_is_dropped_then_recomputable(self, cache):
        # Defense in depth: even if torn bytes *did* land at the final
        # path (non-atomic filesystem, partial disk flush), the reader
        # drops the entry and the cell heals on the next put.
        parts = ("ferret", 5)
        cache.put("run", parts, list(range(100)))
        path = cache._path("run", cache_key("run", parts))
        path.write_bytes(path.read_bytes()[:7])
        hit, value = cache.get("run", parts)
        assert not hit and value is None
        assert cache.stats()["corrupt_drops"] == 1
        assert not path.exists()
        cache.put("run", parts, list(range(100)))
        hit, value = cache.get("run", parts)
        assert hit and value == list(range(100))


class TestCorruptDropAccounting:
    def test_corrupt_drop_counter_increments(self, cache):
        parts = ("ferret", 1)
        cache.put("run", parts, [1, 2, 3])
        path = cache._path("run", cache_key("run", parts))
        path.write_bytes(b"not a pickle")
        assert cache.stats()["corrupt_drops"] == 0
        cache.get("run", parts)
        assert cache.stats()["corrupt_drops"] == 1

    def test_clean_hits_do_not_count_as_drops(self, cache):
        parts = ("ferret", 2)
        cache.put("run", parts, {"v": 1})
        cache.get("run", parts)
        cache.get("run", ("missing",))
        assert cache.stats()["corrupt_drops"] == 0

    def test_truncated_pickle_counts(self, cache):
        parts = ("ferret", 3)
        cache.put("run", parts, list(range(100)))
        path = cache._path("run", cache_key("run", parts))
        path.write_bytes(path.read_bytes()[:10])
        hit, value = cache.get("run", parts)
        assert not hit and value is None
        assert cache.stats()["corrupt_drops"] == 1
