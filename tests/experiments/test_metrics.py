"""Unit tests for evaluation metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.experiments.metrics import (
    DEADLINE_SIGMA_FACTOR,
    deadline_for,
    duration_stats,
    geometric_mean,
    histogram,
    std_reduction,
    success_ratio,
)


class TestDurationStats:
    def test_basic_stats(self):
        stats = duration_stats([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean_s == 2.0
        assert stats.min_s == 1.0
        assert stats.max_s == 3.0
        assert stats.std_s == pytest.approx((2 / 3) ** 0.5)

    def test_normalized_std(self):
        stats = duration_stats([2.0, 4.0])
        assert stats.normalized_std == pytest.approx(1.0 / 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            duration_stats([])


class TestDeadline:
    def test_paper_definition(self):
        stats = duration_stats([1.0, 2.0, 3.0])
        assert deadline_for(stats) == pytest.approx(
            stats.mean_s + DEADLINE_SIGMA_FACTOR * stats.std_s
        )

    def test_custom_factor(self):
        stats = duration_stats([1.0, 3.0])
        assert deadline_for(stats, factor=1.0) == pytest.approx(3.0)

    def test_sigma_factor_is_paper_value(self):
        assert DEADLINE_SIGMA_FACTOR == 0.3


class TestSuccessRatio:
    def test_all_meet(self):
        assert success_ratio([0.5, 0.6], deadline_s=1.0) == 1.0

    def test_partial(self):
        assert success_ratio([0.5, 1.5, 0.9, 2.0], 1.0) == 0.5

    def test_boundary_counts_as_success(self):
        assert success_ratio([1.0], 1.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            success_ratio([], 1.0)

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ExperimentError):
            success_ratio([1.0], 0.0)

    @given(
        durations=st.lists(
            st.floats(min_value=0.01, max_value=10), min_size=1, max_size=50
        ),
        deadline=st.floats(min_value=0.01, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_ratio_bounded(self, durations, deadline):
        assert 0.0 <= success_ratio(durations, deadline) <= 1.0


class TestHistogram:
    def test_density_integrates_to_one(self):
        centers, densities = histogram([1.0, 1.5, 2.0, 2.5], bins=4)
        width = centers[1] - centers[0]
        assert sum(d * width for d in densities) == pytest.approx(1.0)

    def test_explicit_range(self):
        centers, densities = histogram([1.0], bins=2, lo=0.0, hi=2.0)
        assert centers == [0.5, 1.5]
        assert densities[0] == 0.0

    def test_out_of_range_clamped(self):
        centers, densities = histogram([5.0], bins=2, lo=0.0, hi=2.0)
        assert densities[-1] > 0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            histogram([], bins=2)
        with pytest.raises(ExperimentError):
            histogram([1.0], bins=0)

    def test_degenerate_range(self):
        centers, densities = histogram([1.0, 1.0], bins=3)
        assert sum(densities) > 0


class TestStdReduction:
    def test_paper_headline_shape(self):
        # 85% reduction means managed sigma is 15% of baseline's.
        assert std_reduction(1.0, 0.15) == pytest.approx(0.85)

    def test_no_reduction(self):
        assert std_reduction(1.0, 1.0) == 0.0

    def test_zero_baseline(self):
        assert std_reduction(0.0, 1.0) == 0.0

    def test_negative_when_worse(self):
        assert std_reduction(1.0, 1.2) == pytest.approx(-0.2)


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ExperimentError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            geometric_mean([])
