"""Integration tests for the experiment harness (small run counts)."""

import math

import pytest

from repro.core.policies import BASELINE, DIRIGENT, STATIC_FREQ, Policy
from repro.errors import ExperimentError
from repro.experiments.harness import (
    build_machine,
    clear_caches,
    deadlines_for,
    fg_cores_of,
    bg_cores_of,
    get_profile,
    measure_baseline,
    measure_standalone,
    run_policy,
)
from repro.experiments.mixes import Mix, mix_by_name
from repro.sim.config import MachineConfig

EXECS = 6
WARMUP = 2


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def mix():
    return mix_by_name("ferret rs")


class TestBuildMachine:
    def test_single_fg_layout(self, mix):
        machine, fg, bg = build_machine(mix, MachineConfig())
        assert [p.core for p in fg] == [0]
        assert [p.core for p in bg] == [1, 2, 3, 4, 5]
        assert all(p.spec.name == "rs" for p in bg)

    def test_multi_fg_layout(self):
        mix = mix_by_name("raytrace x2 rs")
        machine, fg, bg = build_machine(mix, MachineConfig())
        assert [p.core for p in fg] == [0, 1]
        assert len(bg) == 4

    def test_rotate_layout(self):
        mix = mix_by_name("ferret lbm+namd")
        machine, fg, bg = build_machine(mix, MachineConfig())
        names = {p.spec.name for p in bg}
        assert names <= {"lbm", "namd"}

    def test_core_helpers(self, mix):
        config = MachineConfig()
        assert fg_cores_of(mix, config) == [0]
        assert bg_cores_of(mix, config) == [1, 2, 3, 4, 5]

    def test_too_many_fg_rejected(self):
        mix = Mix(name="x", fg_name="ferret", fg_count=6, bg_name="rs")
        with pytest.raises(ExperimentError):
            fg_cores_of(mix, MachineConfig())


class TestProfiles:
    def test_profile_cached(self):
        one = get_profile("ferret")
        two = get_profile("ferret")
        assert one is two

    def test_profile_has_many_segments(self):
        # The paper's 5ms sampling gives 100+ segments per FG task.
        profile = get_profile("ferret")
        assert profile.num_segments >= 100


class TestBaselineAndDeadlines:
    def test_baseline_success_near_62_percent(self, mix):
        # With deadline = mu + 0.3 sigma, a roughly symmetric completion
        # distribution yields ~62% success; the paper reports ~60%.
        base = measure_baseline(mix, executions=30, warmup=WARMUP)
        assert 0.4 < base.fg_success_ratio < 0.85

    def test_baseline_cached(self, mix):
        one = measure_baseline(mix, executions=EXECS, warmup=WARMUP)
        two = measure_baseline(mix, executions=EXECS, warmup=WARMUP)
        assert one is two

    def test_deadlines_match_baseline_stats(self, mix):
        base = measure_baseline(mix, executions=EXECS, warmup=WARMUP)
        deadlines = deadlines_for(mix, executions=EXECS, warmup=WARMUP)
        assert deadlines == base.deadlines_s
        stats = base.fg_stats
        assert deadlines[0] == pytest.approx(stats.mean_s + 0.3 * stats.std_s)


class TestRunPolicy:
    def test_result_shape(self, mix):
        result = run_policy(mix, BASELINE, executions=EXECS, warmup=WARMUP)
        assert result.policy_name == "Baseline"
        assert len(result.durations_s) == 1
        assert len(result.durations_s[0]) == EXECS
        assert result.elapsed_s > 0
        assert result.bg_instr_per_s > 0
        assert result.fg_instr > 0

    def test_static_freq_uses_baseline_deadlines(self, mix):
        base = measure_baseline(mix, executions=EXECS, warmup=WARMUP)
        result = run_policy(mix, STATIC_FREQ, executions=EXECS, warmup=WARMUP)
        assert result.deadlines_s == base.deadlines_s

    def test_static_partition_requires_ways_or_sweep(self, mix):
        policy = Policy(name="P", static_partition=True, static_bg_grade=0)
        result = run_policy(
            mix, policy, deadlines_s=(math.inf,), executions=EXECS,
            warmup=WARMUP, static_fg_ways=6,
        )
        assert result.fg_stats.mean_s > 0

    def test_dirigent_produces_runtime_artifacts(self, mix):
        result = run_policy(mix, DIRIGENT, executions=EXECS, warmup=WARMUP)
        assert result.partition_history  # coarse controller ran
        assert result.bg_grade_histogram  # sampled BG grades
        assert result.prediction_logs and result.prediction_logs[0]

    def test_observe_mode_records_predictions_without_control(self, mix):
        result = run_policy(
            mix, BASELINE, executions=EXECS, warmup=WARMUP,
            observe_predictor=True,
        )
        assert result.prediction_logs[0]
        assert not result.partition_history

    def test_multi_fg_runs_all_tasks(self):
        mix = mix_by_name("raytrace x2 rs")
        result = run_policy(mix, BASELINE, executions=EXECS, warmup=WARMUP)
        assert len(result.durations_s) == 2
        assert all(len(task) == EXECS for task in result.durations_s)
        assert len(result.deadlines_s) == 2

    def test_invalid_executions_rejected(self, mix):
        with pytest.raises(ExperimentError):
            run_policy(mix, BASELINE, executions=0)

    def test_seed_changes_trajectory(self, mix):
        a = run_policy(mix, BASELINE, executions=EXECS, warmup=WARMUP, seed=0)
        b = run_policy(mix, BASELINE, executions=EXECS, warmup=WARMUP, seed=1)
        assert a.durations_s != b.durations_s

    def test_same_seed_reproducible(self, mix):
        a = run_policy(mix, BASELINE, executions=EXECS, warmup=WARMUP)
        b = run_policy(mix, BASELINE, executions=EXECS, warmup=WARMUP)
        assert a.durations_s == b.durations_s


class TestStandalone:
    def test_standalone_faster_than_contended(self, mix):
        alone = measure_standalone("ferret", executions=EXECS, warmup=WARMUP)
        base = measure_baseline(mix, executions=EXECS, warmup=WARMUP)
        assert alone.stats.mean_s < base.fg_stats.mean_s

    def test_standalone_cached(self):
        one = measure_standalone("ferret", executions=EXECS, warmup=WARMUP)
        two = measure_standalone("ferret", executions=EXECS, warmup=WARMUP)
        assert one is two

    def test_standalone_mpki_positive(self):
        alone = measure_standalone("ferret", executions=EXECS, warmup=WARMUP)
        assert alone.mpki > 0
