"""Parallel sweep engine: coverage, timings, and serial equivalence.

The load-bearing property: a multi-worker sweep must reproduce the
serial sweep *exactly* — every cell derives its randomness from
``(config.seed, mix.name, seed)`` alone, and workers coordinate only
through the content-addressed disk cache.
"""

import logging
import multiprocessing
import os
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies import BASELINE, DIRIGENT, STATIC_FREQ
from repro.errors import ExperimentError
from repro.experiments import harness
from repro.experiments import parallel as parallel_mod
from repro.experiments.mixes import mix_by_name
from repro.experiments.parallel import (
    ENV_PACK_CELLS,
    SweepResult,
    _pack_cells,
    default_workers,
    run_grid,
    set_default_workers,
)
from repro.sim.config import ENV_CELL_TIMEOUT_S

MIXES = ["ferret bwaves", "raytrace rs", "bodytrack pca"]

#: Worker fakes must be monkeypatched onto the parallel module *and*
#: visible to forked workers, so they live at test-module top level
#: (picklable by qualified name) and the tests skip on platforms whose
#: default start method re-imports a pristine module instead of
#: inheriting the patched one.
_FORK = multiprocessing.get_start_method() == "fork"
fork_only = pytest.mark.skipif(
    not _FORK, reason="worker monkeypatching needs the fork start method"
)


def _exit_pack(pack):
    """Worker fake: die abruptly, breaking the process pool."""
    os._exit(1)


def _stall_pack(pack):
    """Worker fake: blow any sub-second per-cell budget, then finish."""
    time.sleep(3.0)
    return [parallel_mod._policy_cell(cell) for cell in pack]


def _raise_cell(cell):
    """Cell fake: fail deterministically (also on the serial retry)."""
    raise ExperimentError("synthetic cell failure")


@pytest.fixture(autouse=True)
def fresh_caches():
    # Discard any retained warm pool: these tests monkeypatch worker
    # callables and env knobs, and a pool forked before the patch would
    # serve stale code.
    parallel_mod.shutdown_pool()
    harness.clear_caches()
    yield
    parallel_mod.shutdown_pool()
    harness.clear_caches()


def _snapshot(sweep: SweepResult) -> dict:
    return {key: repr(result) for key, result in sweep.results.items()}


class TestRunGrid:
    def test_serial_covers_every_cell(self):
        mixes = [mix_by_name(name) for name in MIXES[:2]]
        policies = [BASELINE, STATIC_FREQ]
        sweep = run_grid(mixes, policies, executions=2, warmup=1, workers=1)
        assert sweep.mode == "serial"
        assert set(sweep.results) == {
            (m.name, p.name) for m in mixes for p in policies
        }
        assert set(sweep.cell_timings) == set(sweep.results)
        assert all(t >= 0 for t in sweep.cell_timings.values())
        assert sweep.elapsed_s > 0

    def test_parallel_matches_serial_exactly(self):
        mixes = [mix_by_name(name) for name in MIXES]
        policies = [BASELINE, DIRIGENT]
        serial = run_grid(mixes, policies, executions=2, warmup=1, workers=1)
        harness.clear_caches()
        parallel = run_grid(
            mixes, policies, executions=2, warmup=1, workers=2
        )
        assert parallel.mode == "parallel"
        assert _snapshot(serial) == _snapshot(parallel)

    def test_warm_cache_hits_are_fast(self):
        mixes = [mix_by_name(MIXES[0])]
        policies = [BASELINE, STATIC_FREQ]
        cold = run_grid(mixes, policies, executions=2, warmup=1, workers=1)
        warm = run_grid(mixes, policies, executions=2, warmup=1, workers=1)
        assert _snapshot(cold) == _snapshot(warm)
        assert warm.elapsed_s < cold.elapsed_s

    def test_sweep_result_get_accessor(self):
        mix = mix_by_name(MIXES[0])
        sweep = run_grid([mix], [BASELINE], executions=2, warmup=1, workers=1)
        assert sweep.get(mix, BASELINE).policy_name == BASELINE.name


class TestLanePacking:
    """Lane-packed dispatch: scheduling changes, results never do."""

    @staticmethod
    def _cells(mix_names, per_mix):
        class _FakeMix:
            def __init__(self, name):
                self.name = name

        return [
            (_FakeMix(name), "policy-%d" % index)
            for name in mix_names
            for index in range(per_mix)
        ]

    def test_packs_group_by_mix_and_split_evenly(self, monkeypatch):
        monkeypatch.delenv(ENV_PACK_CELLS, raising=False)
        cells = self._cells(["a", "b", "c"], per_mix=2)
        packs = _pack_cells(cells, workers=3)
        # 6 cells over 3 workers -> cap 2, one pack per mix.
        assert [len(pack) for pack in packs] == [2, 2, 2]
        for pack in packs:
            assert len({cell[0].name for cell in pack}) == 1
        assert sorted(
            (cell[0].name, cell[1]) for pack in packs for cell in pack
        ) == sorted((cell[0].name, cell[1]) for cell in cells)

    def test_env_override_caps_pack_size(self, monkeypatch):
        monkeypatch.setenv(ENV_PACK_CELLS, "1")
        packs = _pack_cells(self._cells(["a", "b"], per_mix=3), workers=2)
        assert [len(pack) for pack in packs] == [1] * 6

    def test_invalid_env_override_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_PACK_CELLS, "many")
        packs = _pack_cells(self._cells(["a"], per_mix=4), workers=2)
        assert [len(pack) for pack in packs] == [2, 2]

    def test_packed_sweep_matches_serial_and_records_sizes(
        self, monkeypatch
    ):
        monkeypatch.setenv(ENV_PACK_CELLS, "2")
        mixes = [mix_by_name(name) for name in MIXES[:2]]
        policies = [BASELINE, STATIC_FREQ]
        serial = run_grid(mixes, policies, executions=2, warmup=1, workers=1)
        assert serial.pack_sizes == []
        harness.clear_caches()
        packed = run_grid(mixes, policies, executions=2, warmup=1, workers=2)
        assert packed.mode == "parallel"
        assert packed.pack_sizes == [2, 2]
        assert _snapshot(serial) == _snapshot(packed)


class TestDegradedDispatch:
    """Lost cells are retried serially; dead pools degrade loudly."""

    @staticmethod
    def _grid(workers=2, **kwargs):
        mixes = [mix_by_name(name) for name in MIXES[:2]]
        policies = [BASELINE]
        sweep = run_grid(mixes, policies, executions=2, warmup=1,
                         workers=workers, **kwargs)
        expected = {(m.name, p.name) for m in mixes for p in policies}
        return sweep, expected

    @fork_only
    def test_timed_out_pack_is_retried_serially(self, monkeypatch):
        monkeypatch.setenv(ENV_CELL_TIMEOUT_S, "0.2")
        monkeypatch.setattr(parallel_mod, "_run_pack", _stall_pack)
        sweep, expected = self._grid()
        assert sweep.mode == "parallel"
        assert set(sweep.results) == expected
        assert sweep.retried == len(expected)
        assert sweep.failed == 0
        assert sweep.fallback_reason is None

    @fork_only
    def test_no_timeout_waits_for_slow_workers(self, monkeypatch):
        monkeypatch.delenv(ENV_CELL_TIMEOUT_S, raising=False)
        monkeypatch.setenv(ENV_PACK_CELLS, "2")
        monkeypatch.setattr(parallel_mod, "_run_pack", _stall_pack)
        sweep, expected = self._grid()
        assert sweep.mode == "parallel"
        assert set(sweep.results) == expected
        assert sweep.retried == 0

    @fork_only
    def test_broken_pool_cells_are_retried_serially(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_run_pack", _exit_pack)
        sweep, expected = self._grid()
        assert sweep.mode == "parallel"
        assert set(sweep.results) == expected
        assert sweep.retried == len(expected)
        assert sweep.failed == 0

    @fork_only
    def test_unrecoverable_cells_are_counted_not_raised(
        self, monkeypatch, caplog
    ):
        monkeypatch.setattr(parallel_mod, "_run_pack", _exit_pack)
        monkeypatch.setattr(parallel_mod, "_policy_cell", _raise_cell)
        with caplog.at_level(logging.WARNING,
                             logger="repro.experiments.parallel"):
            sweep, expected = self._grid()
        assert sweep.mode == "parallel"
        assert sweep.results == {}
        assert sweep.retried == 0
        assert sweep.failed == len(expected)
        assert {(mix, policy) for mix, policy, _ in sweep.failures} \
            == expected
        assert all("synthetic cell failure" in reason
                   for _, _, reason in sweep.failures)
        assert "failed on serial retry" in caplog.text

    def test_pool_creation_failure_surfaces_reason(
        self, monkeypatch, caplog
    ):
        def _no_pool(*args, **kwargs):
            raise OSError("no semaphores here")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _no_pool)
        with caplog.at_level(logging.WARNING,
                             logger="repro.experiments.parallel"):
            sweep, expected = self._grid()
        assert sweep.mode == "serial"
        assert sweep.workers == 1
        assert set(sweep.results) == expected
        assert sweep.fallback_reason == "OSError: no semaphores here"
        assert "running serially" in caplog.text

    def test_healthy_sweep_reports_no_degradation(self):
        sweep, expected = self._grid(workers=1)
        assert sweep.retried == 0
        assert sweep.failed == 0
        assert sweep.failures == []
        assert sweep.fallback_reason is None


class TestWorkerDefaults:
    def test_set_default_workers_overrides(self):
        previous = default_workers()
        try:
            set_default_workers(3)
            assert default_workers() == 3
            set_default_workers(0)  # clamped
            assert default_workers() == 1
        finally:
            set_default_workers(previous)

    def test_env_variable_respected(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_default_workers", None)
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert default_workers() == 5
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert default_workers() >= 1


class TestDeterminismGuard:
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_two_worker_sweep_reproduces_serial(self, seed):
        """Property: parallel(2) == serial for any experiment seed."""
        mixes = [mix_by_name(name) for name in MIXES]
        policies = [BASELINE, DIRIGENT]
        harness.clear_caches()
        serial = run_grid(
            mixes, policies, executions=2, warmup=1, seed=seed, workers=1
        )
        harness.clear_caches()
        parallel = run_grid(
            mixes, policies, executions=2, warmup=1, seed=seed, workers=2
        )
        harness.clear_caches()
        assert _snapshot(serial) == _snapshot(parallel)
