"""Structural tests for the conceptual figure drivers (fig1-fig3)."""

import pytest

from repro.experiments import figures
from repro.experiments.figures import clear_run_cache
from repro.experiments.harness import clear_caches

EXECS = 6


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    clear_run_cache()
    yield
    clear_caches()
    clear_run_cache()


class TestFig1:
    def test_three_curves(self):
        result = figures.fig1(executions=EXECS, bins=8)
        curves = {row[0] for row in result.rows}
        assert curves == {"Standalone", "Contention", "Ideal(Dirigent)"}
        assert len(result.rows) == 3 * 8

    def test_densities_normalized(self):
        result = figures.fig1(executions=EXECS, bins=8)
        for curve in ("Standalone", "Contention", "Ideal(Dirigent)"):
            pts = [(t, d) for c, t, d in result.rows if c == curve]
            width = pts[1][0] - pts[0][0]
            assert sum(d * width for _, d in pts) == pytest.approx(
                1.0, rel=0.05
            )

    def test_deadline_noted(self):
        result = figures.fig1(executions=EXECS, bins=8)
        assert any("Deadline" in note for note in result.notes)


class TestFig2:
    def test_two_task_types(self):
        result = figures.fig2(executions=EXECS)
        types = [row[0] for row in result.rows]
        assert types == ["TypeA(Baseline)", "TypeB(Dirigent)"]

    def test_reservations_positive(self):
        result = figures.fig2(executions=EXECS)
        for row in result.rows:
            assert row[1] > 0
            assert row[2] >= 0


class TestFig3:
    def test_deterministic(self):
        a = figures.fig3()
        b = figures.fig3()
        assert a.rows == b.rows

    def test_equation1_identity(self):
        result = figures.fig3()
        for row in result.rows:
            __, profiled, measured, alpha, penalty = row
            assert penalty == pytest.approx(
                (alpha - 1.0) * profiled, abs=1e-3
            )
