"""Warm-worker determinism: pool reuse must never change results.

The warm-worker layer (persistent kernel cache, pool reuse, work
stealing, columnar transport) is pure mechanism — every leg here pins
the same property from a different angle: a sweep's results are a
function of ``(mixes, policies, executions, warmup, seed)`` alone,
never of which pool ran it, how packs were scheduled, or where kernel
sources came from.
"""

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies import BASELINE, DIRIGENT
from repro.experiments import harness
from repro.experiments import parallel as parallel_mod
from repro.experiments.diskcache import get_kernel_cache
from repro.experiments.mixes import mix_by_name
from repro.experiments.parallel import (
    ENV_PACK_CELLS,
    SweepResult,
    run_grid,
    shutdown_pool,
)
from repro.sim import spanplan
from repro.sim.config import (
    ENV_KERNEL_DISK_CACHE,
    ENV_POOL_REUSE,
    ENV_STEAL,
)

MIXES = ["ferret bwaves", "raytrace rs"]

_FORK = multiprocessing.get_start_method() == "fork"
fork_only = pytest.mark.skipif(
    not _FORK, reason="pool tests rely on the fork start method"
)


@pytest.fixture(autouse=True)
def fresh_state():
    shutdown_pool()
    harness.clear_caches()
    get_kernel_cache().clear()
    spanplan.consume_kernel_cache_stats()
    yield
    shutdown_pool()
    harness.clear_caches()
    get_kernel_cache().clear()
    spanplan.consume_kernel_cache_stats()


def _snapshot(sweep: SweepResult) -> dict:
    return {key: repr(result) for key, result in sweep.results.items()}


def _grid(workers, **kwargs):
    mixes = [mix_by_name(name) for name in MIXES]
    policies = [BASELINE, DIRIGENT]
    return run_grid(
        mixes, policies, executions=2, warmup=1, workers=workers, **kwargs
    )


class TestWarmPoolDeterminism:
    @fork_only
    def test_cold_and_warm_pools_match_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_POOL_REUSE, "1")
        serial = _grid(workers=1)
        assert serial.mode == "serial"
        assert serial.warm_starts == 0

        harness.clear_caches()
        shutdown_pool()
        cold = _grid(workers=2)
        assert cold.mode == "parallel"
        assert cold.warm_starts == 0

        harness.clear_caches()
        warm = _grid(workers=2)
        assert warm.mode == "parallel"
        assert warm.warm_starts == 1

        assert _snapshot(serial) == _snapshot(cold) == _snapshot(warm)
        assert cold.ipc_bytes > 0
        assert warm.ipc_bytes == cold.ipc_bytes

    @fork_only
    def test_reuse_kill_switch_restores_cold_pools(self, monkeypatch):
        monkeypatch.setenv(ENV_POOL_REUSE, "0")
        serial = _grid(workers=1)
        harness.clear_caches()
        first = _grid(workers=2)
        harness.clear_caches()
        second = _grid(workers=2)
        assert first.warm_starts == 0
        assert second.warm_starts == 0
        assert _snapshot(serial) == _snapshot(first) == _snapshot(second)

    @fork_only
    def test_kernel_cache_kill_switch(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL_DISK_CACHE, "0")
        serial = _grid(workers=1)
        harness.clear_caches()
        sweep = _grid(workers=2)
        assert sweep.kernel_disk_hits == 0
        assert get_kernel_cache().stats()["entries"] == 0
        assert _snapshot(serial) == _snapshot(sweep)

    @fork_only
    def test_steal_kill_switch(self, monkeypatch):
        monkeypatch.setenv(ENV_STEAL, "0")
        monkeypatch.setenv(ENV_PACK_CELLS, "1")
        serial = _grid(workers=1)
        harness.clear_caches()
        sweep = _grid(workers=2)
        assert sweep.mode == "parallel"
        assert sweep.steals == 0
        assert sweep.packs_split == 0
        assert _snapshot(serial) == _snapshot(sweep)

    @fork_only
    def test_stealing_dispatch_matches_serial(self, monkeypatch):
        # One cell per pack and more packs than workers: the deque is
        # actually contended, so steals happen (first `workers` packs
        # are seeds, the rest are steals).
        monkeypatch.setenv(ENV_STEAL, "1")
        monkeypatch.setenv(ENV_PACK_CELLS, "1")
        serial = _grid(workers=1)
        harness.clear_caches()
        sweep = _grid(workers=2)
        assert sweep.mode == "parallel"
        assert sweep.steals >= 1
        assert _snapshot(serial) == _snapshot(sweep)

    @fork_only
    def test_idle_workers_split_packs(self, monkeypatch):
        # More workers than packs: the dispatcher must split the big
        # pack (at a seed-group boundary) to occupy idle workers, and
        # the result must not move.
        monkeypatch.setenv(ENV_STEAL, "1")
        monkeypatch.setenv(ENV_PACK_CELLS, "4")
        serial = _grid(workers=1)
        harness.clear_caches()
        sweep = _grid(workers=4)
        assert sweep.mode == "parallel"
        assert sweep.packs_split >= 1
        assert _snapshot(serial) == _snapshot(sweep)

    @fork_only
    def test_warm_pool_serves_kernels_from_disk(self, monkeypatch):
        monkeypatch.setenv(ENV_POOL_REUSE, "1")
        monkeypatch.setenv(ENV_KERNEL_DISK_CACHE, "1")
        first = _grid(workers=2)
        assert first.mode == "parallel"
        # Workers persisted their generated kernels for the next pool.
        assert get_kernel_cache().stats()["entries"] >= 1
        harness.clear_caches()
        shutdown_pool()
        second = _grid(workers=2)
        assert second.kernels_preloaded >= 1
        assert second.kernel_disk_hits >= 1
        assert _snapshot(first) == _snapshot(second)


class TestWarmPoolSeedSweep:
    @fork_only
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_reused_pool_reproduces_serial_for_any_seed(
        self, monkeypatch, seed
    ):
        """Property: a pool warmed by earlier seeds stays bit-exact."""
        monkeypatch.setenv(ENV_POOL_REUSE, "1")
        harness.clear_caches()
        serial = _grid(workers=1, seed=seed)
        harness.clear_caches()
        warm = _grid(workers=2, seed=seed)
        harness.clear_caches()
        assert _snapshot(serial) == _snapshot(warm)


class TestKernelDiskCacheIntegrity:
    def _shape(self):
        return spanplan.template_shapes()[0]

    def test_torn_write_is_dropped_and_recompiled(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL_DISK_CACHE, "1")
        cache = get_kernel_cache()
        shape = self._shape()
        source = spanplan.generate_kernel_source(shape)
        cache.store(shape, source)
        path = cache._path(shape)
        assert path.exists()
        # Tear the entry mid-file: the digest check must reject it.
        data = path.read_text(encoding="utf-8")
        path.write_text(data[: len(data) // 2], encoding="utf-8")
        drops = cache.corrupt_drops
        assert cache.load(shape) is None
        assert cache.corrupt_drops == drops + 1
        assert not path.exists()
        # The engine regenerates and re-persists transparently.
        assert spanplan._kernel_source(shape) == source
        assert get_kernel_cache().load(shape) == source

    def test_doctored_entry_fails_gen003_audit(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL_DISK_CACHE, "1")
        import hashlib
        import json

        cache = get_kernel_cache()
        shape = self._shape()
        cache.store(shape, spanplan.generate_kernel_source(shape))
        path = cache._path(shape)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["source"] += "\n# doctored\n"
        entry["sha256"] = hashlib.sha256(
            entry["source"].encode("utf-8")
        ).hexdigest()
        path.write_text(json.dumps(entry), encoding="utf-8")

        import ast
        from pathlib import Path

        from repro.analysis.core import SourceModule
        from repro.analysis.rules_gen import KernelDiskCacheAudit

        # The rule only runs when spanplan is among the analyzed
        # modules (that is how `repro lint` scopes it).
        spanplan_path = Path(spanplan.__file__)
        text = spanplan_path.read_text(encoding="utf-8")
        module = SourceModule(
            spanplan_path, "repro/sim/spanplan.py", text, ast.parse(text)
        )
        findings = list(KernelDiskCacheAudit().check_project([module]))
        assert any("diverges" in f.message for f in findings)

    def test_stale_tag_entries_are_invisible(self, tmp_path):
        import hashlib
        import json

        from repro.experiments.diskcache import KernelDiskCache

        cache = KernelDiskCache(root=tmp_path)
        shape = self._shape()
        # An entry left behind by another code version: valid JSON and
        # digest, but a tag the current version will never look up.
        source = "def k(): pass"
        stale_entry = {
            "shape": repr(shape),
            "tag": "0" * 16,
            "sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
            "source": source,
        }
        cache._dir().mkdir(parents=True)
        stale = cache._dir() / ("0" * 64 + ".json")
        stale.write_text(json.dumps(stale_entry), encoding="utf-8")
        assert cache.load(shape) is None
        assert list(cache.entries()) == []
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["stale_entries"] == 1
        assert cache.corrupt_drops == 0
