"""Tests for the figure drivers (tiny execution counts).

These exercise the structure of each driver; the shape-level assertions
against the paper live in the benchmark harness, which runs with more
executions.
"""

import pytest

from repro.experiments import figures
from repro.experiments.figures import FIGURES, FigureResult, clear_run_cache
from repro.experiments.harness import clear_caches

EXECS = 6


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    clear_run_cache()
    yield
    clear_caches()
    clear_run_cache()


class TestRegistry:
    def test_all_paper_figures_present(self):
        expected = {
            "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9a", "fig9b", "fig9c", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "headline",
        }
        assert set(FIGURES) == expected

    def test_table1_structure(self):
        result = FIGURES["table1"]()
        assert isinstance(result, FigureResult)
        assert len(result.rows) == 12


class TestFig4:
    def test_rows_per_fg_benchmark(self):
        result = figures.fig4(executions=EXECS)
        assert len(result.rows) == 5
        for row in result.rows:
            name, alone, contend, mpki_a, mpki_c = row
            assert contend > alone
            assert mpki_c > mpki_a


class TestFig6:
    def test_trace_rows(self):
        result = figures.fig6(executions=10)
        assert len(result.rows) == 10
        for row in result.rows:
            assert row[3] >= 0  # error column


class TestFig8:
    def test_sweep_monotone_improvement(self):
        result = figures.fig8(
            executions=5, ways_range=(2, 6, 12), dirigent_executions=15
        )
        means = [row[1] for row in result.rows]
        assert means[-1] < means[0]  # more ways => faster streamcluster

    def test_notes_mention_convergence(self):
        result = figures.fig8(
            executions=4, ways_range=(2, 8), dirigent_executions=15
        )
        assert any("Converged" in note for note in result.notes)


class TestFig11:
    def test_density_rows_per_policy(self):
        result = figures.fig11(executions=EXECS, bins=6)
        policies = {row[0] for row in result.rows}
        assert policies == {
            "Baseline", "StaticFreq", "StaticBoth", "DirigentFreq", "Dirigent",
        }
        assert len(result.rows) == 5 * 6


class TestFig12:
    def test_probabilities_sum_to_one(self):
        result = figures.fig12(executions=EXECS)
        for policy in ("DirigentFreq", "Dirigent"):
            total = sum(row[2] for row in result.rows if row[0] == policy)
            assert total == pytest.approx(1.0, abs=0.01)


class TestFig15:
    def test_sweep_factors(self):
        result = figures.fig15(executions=EXECS, factors=(1.05, 1.15))
        assert [row[0] for row in result.rows] == ["1.05x", "1.15x"]
        # A looser target must not reduce BG throughput.
        assert result.rows[1][3] >= result.rows[0][3] - 0.05


class TestRunCache:
    def test_repeated_driver_calls_reuse_runs(self):
        figures.fig12(executions=EXECS)
        before = dict(figures._RUN_CACHE)
        figures.fig12(executions=EXECS)
        assert list(figures._RUN_CACHE) == list(before)
