"""Unit tests for the figure-driver helpers on reduced mix sets."""

import pytest

from repro.experiments import figures
from repro.experiments.figures import FigureResult, clear_run_cache
from repro.experiments.harness import clear_caches
from repro.experiments.mixes import Mix

EXECS = 5

REDUCED = [
    Mix(name="ferret rs", fg_name="ferret", bg_name="rs"),
    Mix(name="bodytrack bwaves", fg_name="bodytrack", bg_name="bwaves"),
]


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    clear_run_cache()
    yield
    clear_caches()
    clear_run_cache()


class TestMixPolicyRows:
    def test_rows_cover_every_policy(self):
        rows = figures._mix_policy_rows(REDUCED, EXECS, seed=0)
        assert len(rows) == len(REDUCED) * 5
        policies = {row[1] for row in rows}
        assert policies == {
            "Baseline", "StaticFreq", "StaticBoth", "DirigentFreq",
            "Dirigent",
        }

    def test_baseline_bg_is_reference(self):
        rows = figures._mix_policy_rows(REDUCED, EXECS, seed=0)
        for mix, policy, success, bg, mean, std in rows:
            if policy == "Baseline":
                assert bg == 1.0
            assert 0.0 <= success <= 1.0
            assert mean > 0 and std >= 0


class TestSummary:
    def test_summary_structure(self):
        result = figures._summary(
            "figX", "reduced", REDUCED, EXECS, 0, "note"
        )
        assert isinstance(result, FigureResult)
        assert [row[0] for row in result.rows] == [
            "Baseline", "StaticFreq", "StaticBoth", "DirigentFreq",
            "Dirigent",
        ]
        for __, success, bg in result.rows:
            assert 0.0 <= success <= 1.0
            assert bg > 0

    def test_summary_reuses_cached_runs(self):
        figures._summary("figX", "reduced", REDUCED, EXECS, 0, "note")
        cached = len(figures._RUN_CACHE)
        figures._summary("figY", "reduced", REDUCED, EXECS, 0, "note")
        assert len(figures._RUN_CACHE) == cached


class TestRunHelper:
    def test_custom_options_bypass_cache(self):
        from repro.core.policies import BASELINE
        from repro.core.runtime import RuntimeOptions

        figures._run(REDUCED[0], BASELINE, EXECS)
        cached = len(figures._RUN_CACHE)
        figures._run(
            REDUCED[0], BASELINE, EXECS,
            runtime_options=RuntimeOptions(),
        )
        assert len(figures._RUN_CACHE) == cached  # not cached
