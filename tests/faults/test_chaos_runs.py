"""End-to-end chaos runs: bit-identity, reproducibility, and the
hardening acceptance criterion.

These run the full harness (machine + runtime + metrics) under fault
plans.  The two load-bearing properties:

* a zero-fault plan is *bit-identical* to running with no plan at all
  (the harness installs no wrapper for it), and
* under the documented ``sensor-degraded`` rates the hardened runtime
  keeps FG QoS high while the unhardened one (kill switch thrown)
  demonstrably misses more deadlines.
"""

import pytest

from repro.core.policies import DIRIGENT
from repro.experiments.chaos import (
    DEFAULT_CHAOS_MIXES,
    run_chaos,
    run_chaos_cell,
)
from repro.experiments.harness import clear_caches, run_policy
from repro.experiments.mixes import mix_by_name
from repro.faults import SCENARIO_NAMES, ZERO_FAULTS, scenario


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestZeroFaultIdentity:
    def test_zero_plan_bit_identical_to_no_plan(self):
        mix = mix_by_name("ferret rs")
        plain = run_policy(mix, DIRIGENT, executions=3, warmup=1)
        clear_caches()
        zeroed = run_policy(
            mix, DIRIGENT, executions=3, warmup=1, fault_plan=ZERO_FAULTS
        )
        assert plain.durations_s == zeroed.durations_s
        assert plain.deadlines_s == zeroed.deadlines_s
        assert plain.bg_grade_histogram == zeroed.bg_grade_histogram
        assert plain.elapsed_s == zeroed.elapsed_s
        # The control row still carries a report — an empty one.
        assert plain.fault_report is None
        report = zeroed.fault_report
        assert report is not None
        assert report.total_injected == 0
        assert report.event_signature == ()
        assert report.degraded_entries == 0
        assert report.safe_entries == 0


class TestFaultedReproducibility:
    def test_same_plan_same_run(self):
        mix = mix_by_name("ferret rs")
        plan = scenario("sensor-degraded", seed=3)
        first = run_policy(
            mix, DIRIGENT, executions=3, warmup=1, fault_plan=plan
        )
        second = run_policy(
            mix, DIRIGENT, executions=3, warmup=1, fault_plan=plan
        )
        assert first.durations_s == second.durations_s
        assert first.fault_report.event_signature \
            == second.fault_report.event_signature
        assert first.fault_report.event_signature  # faults actually fired
        assert first.fault_report.injected == second.fault_report.injected

    def test_fault_seed_changes_the_stream(self):
        mix = mix_by_name("ferret rs")
        first = run_policy(
            mix, DIRIGENT, executions=3, warmup=1,
            fault_plan=scenario("sensor-degraded", seed=3),
        )
        other = run_policy(
            mix, DIRIGENT, executions=3, warmup=1,
            fault_plan=scenario("sensor-degraded", seed=4),
        )
        assert first.fault_report.event_signature \
            != other.fault_report.event_signature

    def test_deadlines_come_from_the_clean_baseline(self):
        mix = mix_by_name("ferret rs")
        clean = run_policy(mix, DIRIGENT, executions=3, warmup=1)
        faulted = run_policy(
            mix, DIRIGENT, executions=3, warmup=1,
            fault_plan=scenario("sensor-degraded", seed=3),
        )
        # Faults corrupt the controller's view, never the goalposts.
        assert faulted.deadlines_s == clean.deadlines_s


class TestHardeningAcceptance:
    """ISSUE acceptance: >=90% FG deadlines hardened, unhardened worse."""

    def test_hardened_meets_qos_where_unhardened_fails(self, monkeypatch):
        mix = mix_by_name("bodytrack bwaves")
        plan = scenario("sensor-degraded", seed=7)
        monkeypatch.delenv("REPRO_DEGRADED_MODE", raising=False)
        hardened = run_policy(
            mix, DIRIGENT, executions=12, warmup=3, seed=7, fault_plan=plan
        )
        monkeypatch.setenv("REPRO_DEGRADED_MODE", "0")
        unhardened = run_policy(
            mix, DIRIGENT, executions=12, warmup=3, seed=7, fault_plan=plan
        )
        assert hardened.fault_report.hardening_enabled
        assert not unhardened.fault_report.hardening_enabled
        assert hardened.fg_success_ratio >= 0.9
        assert unhardened.fg_success_ratio < hardened.fg_success_ratio
        # The hardened run detected the fault storm and degraded.
        assert hardened.fault_report.degraded_entries >= 1
        assert hardened.fault_report.rejected_samples > 0
        assert unhardened.fault_report.degraded_entries == 0


class TestChaosSuite:
    def test_cell_runs_one_scenario(self):
        result = run_chaos_cell(
            mix_by_name("ferret rs"), "actuator-flaky", executions=3,
            warmup=1,
        )
        report = result.fault_report
        assert report.scenario == "actuator-flaky"
        assert report.actuations_retried > 0

    def test_suite_covers_mixes_by_scenarios(self):
        figure = run_chaos(
            mixes=("ferret rs",), scenarios=("none", "wakeup-storm"),
            executions=2, warmup=1,
        )
        assert figure.name == "chaos"
        assert len(figure.rows) == 2
        scenarios = [row[1] for row in figure.rows]
        assert scenarios == ["none", "wakeup-storm"]
        assert len(figure.headers) == len(figure.rows[0])

    def test_default_suite_shape(self):
        assert len(DEFAULT_CHAOS_MIXES) == 2
        assert "none" in SCENARIO_NAMES
