"""Tests for node-level fault plans and the zero-plan bit-identity pin."""

import pytest

from repro.cluster import Cluster, ClusterNode
from repro.core.policies import DIRIGENT
from repro.errors import FaultError
from repro.experiments.harness import clear_caches
from repro.experiments.mixes import mix_by_name
from repro.faults import (
    FLEET_SCENARIO_NAMES,
    ZERO_NODE_FAULTS,
    FleetSchedule,
    NodeFaultPlan,
    NodeFaultSpec,
    fleet_scenario,
)

NAMES = ["n0", "n1", "n2", "n3", "n4", "n5"]


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestNodeFaultSpec:
    def test_kind_validated(self):
        with pytest.raises(FaultError, match="unknown node-fault kind"):
            NodeFaultSpec(node="n0", kind="meltdown", onset_s=1.0)

    def test_flap_needs_cycle_shape(self):
        with pytest.raises(FaultError):
            NodeFaultSpec(node="n0", kind="flap", onset_s=1.0, cycles=0)
        with pytest.raises(FaultError):
            NodeFaultSpec(node="n0", kind="flap", onset_s=1.0, cycles=2,
                          down_s=0.0, up_s=0.5)

    def test_crash_down_forever(self):
        spec = NodeFaultSpec(node="n0", kind="crash", onset_s=2.0)
        assert not spec.is_down(1.999)
        assert spec.is_down(2.0)
        assert spec.is_down(1e9)

    def test_flap_down_intervals(self):
        spec = NodeFaultSpec(node="n0", kind="flap", onset_s=1.0,
                             down_s=0.5, up_s=0.25, cycles=2)
        assert spec.down_intervals() == ((1.0, 1.5), (1.75, 2.25))
        assert spec.is_down(1.2)
        assert not spec.is_down(1.6)
        assert spec.is_down(2.0)
        assert not spec.is_down(2.25)

    def test_partition_and_slow_never_down(self):
        for kind in ("partition", "slow"):
            spec = NodeFaultSpec(node="n0", kind=kind, onset_s=1.0)
            assert spec.down_intervals() == ()
            assert not spec.is_down(5.0)


class TestNodeFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(FaultError, match="crash_rate"):
            NodeFaultPlan(crash_rate=1.5)
        with pytest.raises(FaultError, match="onset_window_s"):
            NodeFaultPlan(onset_window_s=(3.0, 1.0))
        with pytest.raises(FaultError, match="rack_rate needs rack_size"):
            NodeFaultPlan(rack_rate=0.5)

    def test_zero_plan_draws_nothing(self):
        assert ZERO_NODE_FAULTS.is_zero
        assert ZERO_NODE_FAULTS.schedule(NAMES) == FleetSchedule(specs=())

    def test_overrides_defeat_is_zero(self):
        plan = NodeFaultPlan(overrides=(
            NodeFaultSpec(node="n0", kind="crash", onset_s=1.0),
        ))
        assert not plan.is_zero

    def test_schedule_deterministic(self):
        plan = NodeFaultPlan(scenario="x", seed=11, crash_rate=0.5,
                             slow_rate=0.5)
        assert plan.schedule(NAMES) == plan.schedule(NAMES)
        other = plan.with_seed(12).schedule(NAMES)
        assert other != plan.schedule(NAMES)

    def test_per_kind_streams_independent(self):
        """Enabling another kind never moves an existing kind's draws."""
        alone = NodeFaultPlan(seed=5, slow_rate=0.6).schedule(NAMES)
        combined = NodeFaultPlan(
            seed=5, slow_rate=0.6, flap_rate=0.6
        ).schedule(NAMES)
        slow_alone = {s.node: s for s in alone.specs if s.kind == "slow"}
        slow_combined = {
            s.node: s for s in combined.specs if s.kind == "slow"
        }
        # Flap has lower precedence than slow, so every slow fault
        # drawn alone survives verbatim in the combined plan.
        assert slow_alone == slow_combined

    def test_precedence_crash_beats_flap(self):
        plan = NodeFaultPlan(seed=0, crash_rate=1.0, flap_rate=1.0)
        schedule = plan.schedule(NAMES)
        assert len(schedule.specs) == len(NAMES)
        assert all(spec.kind == "crash" for spec in schedule.specs)

    def test_rack_failure_correlated(self):
        plan = NodeFaultPlan(seed=2, rack_size=3, rack_rate=1.0)
        schedule = plan.schedule(NAMES)
        assert len(schedule.specs) == len(NAMES)
        racks = {}
        for spec in schedule.specs:
            assert spec.kind == "crash"
            racks.setdefault(spec.rack, set()).add(spec.onset_s)
        assert set(racks) == {0, 1}
        # One shared onset per rack: the failure is correlated.
        assert all(len(onsets) == 1 for onsets in racks.values())

    def test_override_unknown_node_rejected(self):
        plan = NodeFaultPlan(overrides=(
            NodeFaultSpec(node="ghost", kind="crash", onset_s=1.0),
        ))
        with pytest.raises(FaultError, match="unknown node"):
            plan.schedule(NAMES)

    def test_catalog(self):
        assert "none" in FLEET_SCENARIO_NAMES
        for name in FLEET_SCENARIO_NAMES:
            plan = fleet_scenario(name, seed=9)
            assert plan.seed == 9
        with pytest.raises(FaultError, match="unknown fleet scenario"):
            fleet_scenario("nope")


class TestFleetSchedule:
    def test_injection_events_include_flap_edges(self):
        schedule = FleetSchedule(specs=(
            NodeFaultSpec(node="n1", kind="flap", onset_s=1.0,
                          down_s=0.5, up_s=0.5, cycles=2),
            NodeFaultSpec(node="n0", kind="crash", onset_s=0.5),
        ))
        events = schedule.injection_events()
        kinds = [(event[1], event[2]) for event in events]
        assert kinds == [
            ("n0", "node-crash"),
            ("n1", "flap-down"), ("n1", "flap-up"),
            ("n1", "flap-down"), ("n1", "flap-up"),
        ]
        assert schedule.injection_counts() == {
            "node-flap": 1, "node-crash": 1,
        }


class TestZeroPlanBitIdentity:
    """A zero plan must be bit-identical to no plan at all."""

    EXECS = 5

    def _nodes(self):
        mix = mix_by_name("ferret rs")
        return [
            ClusterNode("n%d" % i, mix, DIRIGENT, executions=self.EXECS,
                        warmup=2, seed=20 + i)
            for i in range(3)
        ]

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_zero_plan_matches_plain_run(self, vectorized):
        plain = Cluster(self._nodes(), vectorized=vectorized).run()
        zero = Cluster(self._nodes(), vectorized=vectorized).run(
            fault_plan=ZERO_NODE_FAULTS
        )
        assert zero.node_results == plain.node_results
        assert zero.fg_success_ratio == plain.fg_success_ratio
        assert zero.total_bg_instr_per_s == plain.total_bg_instr_per_s
        # The zero-plan run reports an empty fleet signature: no control
        # plane was installed, nothing happened.
        assert zero.fleet_report is not None
        assert zero.fleet_report.event_signature == ()
        assert zero.fleet_report.total_injected == 0
        assert zero.failovers == 0
        assert zero.stranded_executions == 0
        # And the plain run carries no report at all.
        assert plain.fleet_report is None
