"""GuardedSystem: read-back verification, bounded retry, accounting."""

import pytest

from repro.core.actuation import (
    DEFAULT_RETRY_OVERHEAD_S,
    GuardedSystem,
)
from repro.errors import ControlError
from tests.core.fakes import FakeSystem


class DroppingSystem:
    """Delegates to a FakeSystem, silently dropping the first N writes.

    Read-backs stay truthful (they go straight to the fake), which is
    exactly the contract the guarded layer relies on to detect drops.
    """

    def __init__(self, system: FakeSystem, drop_first: int = 0) -> None:
        self._sys = system
        self.drops_left = drop_first

    def _dropped(self) -> bool:
        if self.drops_left > 0:
            self.drops_left -= 1
            return True
        return False

    def set_frequency_grade(self, core, grade):
        if not self._dropped():
            self._sys.set_frequency_grade(core, grade)

    def step_frequency(self, core, direction):
        if self._dropped():
            grade = self._sys.frequency_grade(core)
            return 0 <= grade + direction < self._sys.num_frequency_grades()
        return self._sys.step_frequency(core, direction)

    def pause(self, pid):
        if not self._dropped():
            self._sys.pause(pid)

    def resume(self, pid):
        if not self._dropped():
            self._sys.resume(pid)

    def set_fg_partition(self, fg_cores, fg_ways):
        if not self._dropped():
            self._sys.set_fg_partition(fg_cores, fg_ways)

    def __getattr__(self, name):
        return getattr(self._sys, name)


def build(drop_first=0, retries=2, **kwargs):
    fake = FakeSystem(pid_to_core={1: 0, 11: 1})
    flaky = DroppingSystem(fake, drop_first=drop_first)
    guarded = GuardedSystem(flaky, retries=retries, overhead_core=1, **kwargs)
    return fake, guarded


class TestHealthyPassthrough:
    def test_first_try_success_costs_nothing(self):
        fake, guarded = build()
        guarded.set_frequency_grade(1, 2)
        guarded.pause(11)
        guarded.resume(11)
        guarded.set_fg_partition([0], 12)
        assert fake.grades[1] == 2
        assert fake.partition == ((0,), 12)
        assert guarded.actuations_total == 4
        assert guarded.actuations_retried == 0
        assert guarded.actuations_failed == 0
        assert fake.overhead == []  # no retry, no backoff charged

    def test_observation_passthrough(self):
        fake, guarded = build()
        fake.time_s = 1.5
        assert guarded.now() == 1.5
        assert guarded.num_frequency_grades() == 5
        assert guarded.llc_ways() == 20
        assert guarded.core_of(11) == 1
        assert guarded.partition_ways(0) == 20

    def test_validation(self):
        with pytest.raises(ControlError):
            GuardedSystem(FakeSystem(), retries=-1)
        with pytest.raises(ControlError):
            GuardedSystem(FakeSystem(), retry_overhead_s=-1.0)


class TestRetry:
    def test_dropped_pause_recovered_by_retry(self):
        fake, guarded = build(drop_first=1)
        guarded.pause(11)
        assert fake.is_paused(11)
        assert guarded.actuations_retried == 1
        assert guarded.actuations_failed == 0
        # One backoff charged, to the designated runtime core.
        assert fake.overhead == [(1, DEFAULT_RETRY_OVERHEAD_S)]

    def test_dropped_partition_recovered_by_read_back(self):
        fake, guarded = build(drop_first=1)
        guarded.set_fg_partition([0], 7)
        assert fake.partition == ((0,), 7)
        assert guarded.actuations_retried == 1

    def test_step_retries_with_absolute_setter(self):
        # A dropped step reports success; only the read-back reveals the
        # grade never moved.  The retry must set the absolute target —
        # re-stepping after a late-landing write would overshoot.
        fake, guarded = build(drop_first=1)
        assert guarded.step_frequency(1, -1) is True
        assert fake.grades[1] == fake.num_frequency_grades() - 2
        assert guarded.actuations_retried == 1
        assert guarded.actuations_failed == 0

    def test_step_at_limit_delegates_unguarded(self):
        fake, guarded = build()
        assert guarded.step_frequency(1, +1) is False  # already at max
        assert guarded.actuations_total == 0

    def test_exhausted_retries_counted_not_raised(self):
        fake, guarded = build(drop_first=10, retries=2)
        guarded.pause(11)
        assert not fake.is_paused(11)
        assert guarded.actuations_retried == 2
        assert guarded.actuations_failed == 1
        assert len(fake.overhead) == 2

    def test_zero_retries_fails_immediately(self):
        fake, guarded = build(drop_first=1, retries=0)
        guarded.pause(11)
        assert not fake.is_paused(11)
        assert guarded.actuations_failed == 1
        assert guarded.actuations_retried == 0

    def test_actuation_already_in_target_state_verifies_clean(self):
        # The write is dropped but the verify passes anyway because the
        # system is already where the caller wanted it: not a failure.
        fake, guarded = build(drop_first=1)
        guarded.resume(11)  # pid 11 was never paused
        assert guarded.actuations_failed == 0
        assert guarded.actuations_retried == 0
