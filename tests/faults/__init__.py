"""Fault-injection and graceful-degradation tests."""
