"""FaultInjector draw semantics, determinism, and the FaultySystem view."""

import pytest

from repro.core.heartbeats import ProcessHeartbeatBridge
from repro.core.profile import ExecutionProfile, ProfileSegment
from repro.faults import GLITCH_FACTOR, FaultInjector, FaultPlan, FaultySystem
from repro.sim.counters import CounterSnapshot
from tests.core.fakes import FakeSystem


def snap(time_s, instructions, **kwargs):
    fields = dict(cycles=instructions, llc_accesses=0.0, llc_misses=0.0)
    fields.update(kwargs)
    return CounterSnapshot(time_s=time_s, instructions=instructions, **fields)


def profile(segments=10, duration=0.005, progress=1e7):
    return ExecutionProfile(
        "synthetic",
        duration,
        tuple(ProfileSegment(duration, progress) for _ in range(segments)),
    )


class TestCounterSurface:
    def test_first_read_baselines_without_faults(self):
        injector = FaultInjector(FaultPlan(counter_drop_rate=1.0))
        first = snap(0.005, 1e7)
        assert injector.filter_counters(0, first) is first
        assert injector.events == []

    def test_drop_returns_previous_values_restamped(self):
        injector = FaultInjector(FaultPlan(counter_drop_rate=1.0))
        injector.filter_counters(0, snap(0.005, 1e7))
        out = injector.filter_counters(0, snap(0.010, 2e7))
        assert out.time_s == 0.010  # stamped at the read
        assert out.instructions == 1e7  # frozen at the last returned
        assert injector.counts["counter-drop"] == 1
        assert injector.events[0].kind == "counter-drop"

    def test_glitch_scales_the_delta(self):
        injector = FaultInjector(FaultPlan(counter_glitch_rate=1.0))
        injector.filter_counters(0, snap(0.005, 1e7))
        out = injector.filter_counters(0, snap(0.010, 2e7))
        assert out.instructions == 1e7 + GLITCH_FACTOR * 1e7
        assert injector.counts["counter-glitch"] == 1

    def test_inflated_counters_plateau_never_regress(self):
        injector = FaultInjector(FaultPlan(counter_glitch_rate=1.0))
        injector.filter_counters(0, snap(0.005, 1e7))
        inflated = injector.filter_counters(0, snap(0.010, 2e7))
        # Truth is far behind the inflated read; the returned counter
        # plateaus (monotone) instead of running backwards.
        later = injector.filter_counters(0, snap(0.015, 2.5e7))
        assert later.instructions == inflated.instructions
        assert later.time_s == 0.015

    def test_noise_is_tallied_but_not_an_event(self):
        injector = FaultInjector(FaultPlan(counter_noise_sigma=0.3))
        injector.filter_counters(0, snap(0.005, 1e7))
        injector.filter_counters(0, snap(0.010, 2e7))
        assert injector.counts["counter-noise"] == 1
        assert injector.events == []

    def test_cores_are_tracked_independently(self):
        injector = FaultInjector(FaultPlan(counter_drop_rate=1.0))
        injector.filter_counters(0, snap(0.005, 1e7))
        first_other = snap(0.005, 5e6)
        assert injector.filter_counters(1, first_other) is first_other


class TestWakeupAndActuationSurfaces:
    def test_delay_and_miss_accumulate(self):
        plan = FaultPlan(
            wakeup_delay_rate=1.0, wakeup_delay_s=2e-3,
            wakeup_miss_rate=1.0, wakeup_miss_s=5e-3,
        )
        injector = FaultInjector(plan)
        assert injector.wakeup_extra_delay(0.1) == pytest.approx(7e-3)
        kinds = [e.kind for e in injector.events]
        assert kinds == ["wakeup-delay", "wakeup-miss"]

    def test_disabled_surface_draws_nothing(self):
        injector = FaultInjector(FaultPlan())
        assert injector.wakeup_extra_delay(0.1) == 0.0
        assert injector.actuation_dropped(0.1, "pause:11") is False
        assert injector.events == []
        assert injector.counts == {}

    def test_actuation_drop_records_the_call(self):
        injector = FaultInjector(FaultPlan(actuation_fail_rate=1.0))
        assert injector.actuation_dropped(0.25, "pause:11") is True
        event = injector.events[0]
        assert (event.surface, event.kind) == ("actuation", "actuation-fail")
        assert event.detail == "pause:11"
        assert event.time_s == 0.25


class TestHeartbeatSurface:
    def test_total_loss(self):
        channel = FaultInjector(
            FaultPlan(heartbeat_loss_rate=1.0)
        ).heartbeat_channel()
        assert channel(5) == 0

    def test_total_duplication(self):
        channel = FaultInjector(
            FaultPlan(heartbeat_dup_rate=1.0)
        ).heartbeat_channel()
        assert channel(3) == 6

    def test_lossless_plan_passes_through(self):
        channel = FaultInjector(FaultPlan()).heartbeat_channel()
        assert channel(4) == 4

    def test_bridge_with_lossy_channel_never_redelivers(self):
        # Emission and delivery are tracked separately in the bridge: a
        # beat lost in delivery stays lost instead of being silently
        # re-delivered on the next poll.
        state = {"progress": 0.0}
        calls = []

        def channel(new_beats):
            calls.append(new_beats)
            return 0 if len(calls) == 1 else new_beats

        bridge = ProcessHeartbeatBridge(
            lambda: state["progress"], beat_instructions=1e6,
            channel=channel,
        )
        state["progress"] = 3e6
        assert bridge.progress() == 0.0  # three beats lost in delivery
        state["progress"] = 5e6
        assert bridge.progress() == pytest.approx(2e6)  # only new beats
        assert calls == [3, 2]

    def test_bridge_with_duplicating_channel_overcounts(self):
        state = {"progress": 0.0}
        bridge = ProcessHeartbeatBridge(
            lambda: state["progress"], beat_instructions=1e6,
            channel=FaultInjector(
                FaultPlan(heartbeat_dup_rate=1.0)
            ).heartbeat_channel(),
        )
        state["progress"] = 2e6
        assert bridge.progress() == pytest.approx(4e6)


class TestProfileSurface:
    def test_truncation_cuts_tail_keeps_at_least_one(self):
        injector = FaultInjector(FaultPlan(profile_truncate_segments=4))
        out = injector.corrupt_profile(profile(segments=10))
        assert len(out.segments) == 6
        heavy = FaultInjector(FaultPlan(profile_truncate_segments=100))
        assert len(heavy.corrupt_profile(profile(segments=10)).segments) == 1

    def test_noise_perturbs_durations_preserves_progress(self):
        injector = FaultInjector(FaultPlan(profile_noise_sigma=0.5))
        original = profile(segments=10)
        out = injector.corrupt_profile(original)
        assert len(out.segments) == 10
        assert [s.progress for s in out.segments] == [
            s.progress for s in original.segments
        ]
        assert any(
            a.duration_s != b.duration_s
            for a, b in zip(out.segments, original.segments)
        )
        assert all(s.duration_s > 0 for s in out.segments)

    def test_clean_plan_returns_original(self):
        original = profile()
        assert FaultInjector(FaultPlan()).corrupt_profile(original) is original


class TestDeterminism:
    def _drive(self, injector):
        for index in range(50):
            t = 0.005 * (index + 1)
            injector.filter_counters(0, snap(t, 1e7 * (index + 1)))
            injector.wakeup_extra_delay(t)
            injector.actuation_dropped(t, "pause:11")
        return injector.event_signature()

    def _plan(self, seed):
        return FaultPlan(
            scenario="custom", seed=seed,
            counter_drop_rate=0.3, counter_noise_sigma=0.2,
            counter_glitch_rate=0.1, wakeup_delay_rate=0.3,
            actuation_fail_rate=0.3,
        )

    def test_same_seed_same_event_stream(self):
        a = self._drive(FaultInjector(self._plan(seed=11)))
        b = self._drive(FaultInjector(self._plan(seed=11)))
        assert a and a == b

    def test_different_seed_different_stream(self):
        a = self._drive(FaultInjector(self._plan(seed=11)))
        b = self._drive(FaultInjector(self._plan(seed=12)))
        assert a != b

    def test_surfaces_have_independent_streams(self):
        # Disabling one surface must not perturb another's draws: the
        # actuation stream with counters off matches the actuation
        # stream with counters on.
        with_counters = self._drive(FaultInjector(self._plan(seed=11)))
        plan = FaultPlan(
            scenario="custom", seed=11,
            wakeup_delay_rate=0.3, actuation_fail_rate=0.3,
        )
        without = self._drive(FaultInjector(plan))
        actuation = [e for e in with_counters if e[1] == "actuation"]
        assert actuation == [e for e in without if e[1] == "actuation"]
        wakeup = [e for e in with_counters if e[1] == "wakeup"]
        assert wakeup == [e for e in without if e[1] == "wakeup"]


class TestFaultySystem:
    def _faulty(self, plan, pid_to_core=None):
        system = FakeSystem(pid_to_core=pid_to_core or {1: 0, 11: 1})
        return system, FaultySystem(system, FaultInjector(plan))

    def test_dropped_pause_leaves_machine_running(self):
        system, faulty = self._faulty(FaultPlan(actuation_fail_rate=1.0))
        faulty.pause(11)
        assert not system.is_paused(11)
        # The read-back through the faulty view is truthful.
        assert not faulty.is_paused(11)

    def test_dropped_grade_write_detectable_by_read_back(self):
        system, faulty = self._faulty(FaultPlan(actuation_fail_rate=1.0))
        before = system.frequency_grade(1)
        faulty.set_frequency_grade(1, 0)
        assert faulty.frequency_grade(1) == before

    def test_dropped_step_reports_would_be_result(self):
        system, faulty = self._faulty(FaultPlan(actuation_fail_rate=1.0))
        # Grade starts at max: stepping up is impossible, down possible.
        assert faulty.step_frequency(1, -1) is True
        assert faulty.step_frequency(1, +1) is False
        assert system.frequency_grade(1) == system.num_frequency_grades() - 1

    def test_wakeup_faults_stretch_the_timer(self):
        system, faulty = self._faulty(
            FaultPlan(wakeup_miss_rate=1.0, wakeup_miss_s=5e-3)
        )
        faulty.schedule_wakeup(5e-3, lambda: None)
        assert system.wakeups[0][0] == pytest.approx(10e-3)

    def test_clean_plan_is_transparent(self):
        system, faulty = self._faulty(FaultPlan())
        faulty.set_frequency_grade(1, 2)
        faulty.pause(11)
        faulty.set_fg_partition([0], 12)
        assert system.frequency_grade(1) == 2
        assert system.is_paused(11)
        assert system.partition == ((0,), 12)
        assert faulty.injector.events == []
