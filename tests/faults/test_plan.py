"""FaultPlan validation, the scenario catalog, and zero-plan semantics."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    SCENARIO_NAMES,
    SCENARIOS,
    ZERO_FAULTS,
    FaultPlan,
    scenario,
)


class TestValidation:
    @pytest.mark.parametrize("field", [
        "counter_drop_rate", "counter_glitch_rate", "wakeup_delay_rate",
        "wakeup_miss_rate", "actuation_fail_rate", "heartbeat_loss_rate",
        "heartbeat_dup_rate",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(FaultError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(FaultError):
            FaultPlan(**{field: -0.1})

    @pytest.mark.parametrize("field", [
        "counter_noise_sigma", "profile_noise_sigma", "wakeup_delay_s",
        "wakeup_miss_s",
    ])
    def test_magnitudes_must_be_nonnegative(self, field):
        with pytest.raises(FaultError):
            FaultPlan(**{field: -0.5})

    def test_truncation_must_be_nonnegative(self):
        with pytest.raises(FaultError):
            FaultPlan(profile_truncate_segments=-1)

    def test_boundary_rates_accepted(self):
        FaultPlan(counter_drop_rate=0.0)
        FaultPlan(counter_drop_rate=1.0)


class TestZeroPlan:
    def test_default_plan_is_zero(self):
        assert FaultPlan().is_zero
        assert ZERO_FAULTS.is_zero

    @pytest.mark.parametrize("overrides", [
        {"counter_drop_rate": 0.1},
        {"counter_noise_sigma": 0.2},
        {"counter_glitch_rate": 0.01},
        {"wakeup_delay_rate": 0.1},
        {"wakeup_miss_rate": 0.1},
        {"actuation_fail_rate": 0.1},
        {"heartbeat_loss_rate": 0.1},
        {"heartbeat_dup_rate": 0.1},
        {"profile_truncate_segments": 1},
        {"profile_noise_sigma": 0.1},
    ])
    def test_any_enabled_surface_is_nonzero(self, overrides):
        assert not FaultPlan(**overrides).is_zero

    def test_bias_alone_without_sigma_stays_zero(self):
        # Bias only shapes the noise distribution; with sigma 0 no noise
        # is drawn at all, so the plan injects nothing.
        assert FaultPlan(counter_noise_bias=0.5).is_zero


class TestCatalog:
    def test_catalog_names_are_ordered_and_complete(self):
        assert SCENARIO_NAMES == tuple(SCENARIOS)
        assert "none" in SCENARIO_NAMES
        assert "sensor-degraded" in SCENARIO_NAMES

    def test_only_none_is_zero(self):
        for name, plan in SCENARIOS.items():
            assert plan.is_zero == (name == "none"), name

    def test_scenario_seeds_the_plan(self):
        plan = scenario("sensor-degraded", seed=99)
        assert plan.seed == 99
        assert plan.scenario == "sensor-degraded"
        # The catalog entry itself is untouched (frozen copies).
        assert SCENARIOS["sensor-degraded"].seed == 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultError):
            scenario("meteor-strike")

    def test_with_seed_copies(self):
        base = FaultPlan(counter_drop_rate=0.2)
        reseeded = base.with_seed(5)
        assert reseeded.seed == 5
        assert reseeded.counter_drop_rate == 0.2
        assert base.seed == 0
