"""The runtime's sensing-health monitor and graceful-degradation modes.

Driven entirely on the FakeSystem: frozen counters model dropped sensor
reads, and the tests walk the full mode ladder —
normal -> degraded -> safe -> (dwell) -> degraded -> normal — checking
the policy actions taken at each edge.
"""

import pytest

from repro.core.profile import ExecutionProfile, ProfileSegment
from repro.core.runtime import DirigentRuntime, ManagedTask, RuntimeOptions
from repro.errors import ControlError
from tests.core.fakes import FakeSystem


def profile(segments=10, duration=0.005, progress=1e7):
    return ExecutionProfile(
        "synthetic",
        duration,
        tuple(ProfileSegment(duration, progress) for _ in range(segments)),
    )


def build(progress_fn=None, **opt_kwargs):
    system = FakeSystem(pid_to_core={1: 0, 11: 1, 12: 2})
    task = ManagedTask(
        pid=1, core=0, profile=profile(), deadline_s=0.08, ema_weight=0.2,
        progress_fn=progress_fn,
    )
    defaults = dict(
        enable_fine=False,
        hardening=True,
        health_window=10,
        safe_dwell_samples=5,
    )
    defaults.update(opt_kwargs)
    runtime = DirigentRuntime(
        system, [task], [11, 12], options=RuntimeOptions(**defaults)
    )
    return system, task, runtime


def fire(system, count, advance=None):
    """Fire ``count`` wakeups; ``advance`` adds instructions per wakeup."""
    for _ in range(count):
        if advance is not None:
            snap = system.read_counters(0)
            system.set_counters(0, instructions=snap.instructions + advance)
        system.fire_next_wakeup()


class TestOptionValidation:
    @pytest.mark.parametrize("kwargs", [
        {"health_window": 0},
        {"degraded_threshold": 1.5},
        {"safe_threshold": 0.1, "degraded_threshold": 0.2},
        {"recover_threshold": 0.2, "degraded_threshold": 0.1},
        {"safe_dwell_samples": -1},
        {"degraded_guard_extra": 1.0},
        {"actuation_retries": -1},
    ])
    def test_invalid_health_options_rejected(self, kwargs):
        with pytest.raises(ControlError):
            RuntimeOptions(**kwargs)


class TestModeLadder:
    def test_frozen_counters_drive_degraded_then_safe(self):
        system, task, runtime = build()
        runtime.start()
        fire(system, 10)  # window fills with zero-delta suspects
        assert runtime.mode == "degraded"
        assert runtime.degraded_entries == 1
        assert task.predictor.hold_penalty_updates
        fire(system, 1)  # density over the safe threshold
        assert runtime.mode == "safe"
        assert runtime.safe_entries == 1
        # Safe policy: BG paused, FG at maximum frequency (already max
        # on the fake), decisions suspended.
        assert system.is_paused(11) and system.is_paused(12)

    def test_recovery_steps_down_through_degraded(self):
        system, task, runtime = build()
        runtime.start()
        fire(system, 11)
        assert runtime.mode == "safe"
        # Honest progress returns; the dwell holds safe mode until the
        # window fully clears, then recovery resumes the BG tasks.
        fire(system, 10, advance=1e6)
        assert runtime.mode == "degraded"
        assert not system.is_paused(11) and not system.is_paused(12)
        fire(system, 1, advance=1e6)
        assert runtime.mode == "normal"
        assert not task.predictor.hold_penalty_updates
        assert runtime.suspect_samples == 11
        assert runtime.health_samples == 22

    def test_safe_mode_dwell_resists_flapping(self):
        system, task, runtime = build(safe_dwell_samples=30)
        runtime.start()
        fire(system, 11)
        assert runtime.mode == "safe"
        # The window clears after 10 clean samples, but the dwell pins
        # safe mode until 30 samples have passed since entry.
        fire(system, 25, advance=1e6)
        assert runtime.mode == "safe"
        fire(system, 5, advance=1e6)
        assert runtime.mode == "degraded"

    def test_safe_policy_reasserted_against_drift(self):
        system, task, runtime = build(decision_every=5)
        runtime.start()
        fire(system, 11)
        assert runtime.mode == "safe"
        # A faulty actuator (or an operator) undoes the safe policy...
        system.resume(11)
        system.grades[0] = 2
        # ...and the next decision boundary re-asserts it.
        fire(system, 5)
        assert system.is_paused(11)
        assert system.grades[0] == system.num_frequency_grades() - 1

    def test_mode_time_accounting(self):
        system, task, runtime = build()
        runtime.start()
        fire(system, 11)
        now = system.now()
        assert runtime.safe_time_s(now + 0.01) == pytest.approx(0.01)
        degraded = runtime.degraded_time_s(now)
        assert degraded == pytest.approx(0.005)  # one period in degraded


class TestAnomalySources:
    def test_heartbeat_stalls_are_not_suspect(self):
        # A heartbeat-progress task legitimately reports zero delta
        # between beats; only hardware counters make zero-delta
        # anomalous.
        system, task, runtime = build(progress_fn=lambda: 0.0)
        runtime.start()
        fire(system, 20)
        assert runtime.mode == "normal"
        assert runtime.suspect_samples == 0

    def test_late_wakeup_flagged(self):
        system, task, runtime = build()
        runtime.start()
        fire(system, 2, advance=1e6)
        assert runtime.late_wakeups == 0
        when, callback = system.wakeups.pop(0)
        system.wakeups.append((when + 0.01, callback))  # timer stall
        fire(system, 1, advance=1e6)
        assert runtime.late_wakeups == 1
        assert runtime.suspect_samples == 1

    def test_negative_progress_flagged(self):
        system, task, runtime = build()
        system.set_counters(0, instructions=5e6)
        runtime.start()  # instruction base = 5e6
        system.set_counters(0, instructions=1e6)  # counter went backwards
        fire(system, 1)
        assert runtime.negative_progress_samples == 1
        assert runtime.suspect_samples == 1

    def test_sensor_anomalies_aggregates_all_sources(self):
        system, task, runtime = build()
        runtime.start()
        fire(system, 3)
        anomalies = runtime.sensor_anomalies()
        assert set(anomalies) == {
            "stale", "zero_delta", "rejected", "negative_progress",
            "late_wakeups",
        }
        assert anomalies["zero_delta"] == 3


class TestGuardWidening:
    def test_degraded_mode_widens_the_deadline_guard(self):
        system, task, runtime = build(enable_fine=True)
        fine = runtime.fine_controller
        opts = runtime.options
        baseline_ratio = fine._target_ratio
        runtime.start()
        fire(system, 10)
        assert runtime.mode == "degraded"
        assert fine._target_ratio == pytest.approx(
            1.0 - (opts.deadline_guard + opts.degraded_guard_extra)
        )
        fire(system, 11, advance=1e6)
        assert runtime.mode == "normal"
        assert fine._target_ratio == pytest.approx(baseline_ratio)


class TestHardeningSwitch:
    def test_disabled_hardening_never_degrades(self):
        system, task, runtime = build(hardening=False)
        assert not runtime.hardening_enabled
        assert runtime.guarded is None
        assert not task.predictor.reject_outliers
        runtime.start()
        fire(system, 25)
        assert runtime.mode == "normal"
        assert runtime.health_samples == 0

    def test_env_kill_switch_resolves_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADED_MODE", "0")
        _, _, runtime = build(hardening=None)
        assert not runtime.hardening_enabled
        monkeypatch.setenv("REPRO_DEGRADED_MODE", "1")
        _, _, hardened = build(hardening=None)
        assert hardened.hardening_enabled
