"""Unit tests for the fleet control plane (no simulations)."""

import pytest

from repro.cluster import (
    ControlPlaneConfig,
    FailoverDispatcher,
    HeartbeatMonitor,
)
from repro.errors import ExperimentError
from repro.sched.reservation import TaskStream

NAMES = ["n0", "n1", "n2"]


def config(**overrides):
    return ControlPlaneConfig(**overrides)


class TestControlPlaneConfig:
    def test_defaults_valid(self):
        cfg = config()
        assert cfg.failover
        assert cfg.dead_timeout_s > cfg.suspect_timeout_s

    def test_validation(self):
        with pytest.raises(ExperimentError):
            config(suspect_timeout_s=0.0)
        with pytest.raises(ExperimentError):
            config(suspect_timeout_s=0.5, dead_timeout_s=0.4)
        with pytest.raises(ExperimentError):
            config(max_retries=-1)
        with pytest.raises(ExperimentError):
            config(backoff_factor=0.5)
        with pytest.raises(ExperimentError):
            config(period_headroom=1.0)
        with pytest.raises(ExperimentError):
            config(shed_threshold=0.0)

    def test_from_env_reads_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SUSPECT_S", "0.2")
        monkeypatch.setenv("REPRO_FLEET_DEAD_S", "0.9")
        monkeypatch.setenv("REPRO_FLEET_FAILOVER", "0")
        cfg = ControlPlaneConfig.from_env()
        assert cfg.suspect_timeout_s == 0.2
        assert cfg.dead_timeout_s == 0.9
        assert not cfg.failover

    def test_from_env_overrides_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_FAILOVER", "0")
        cfg = ControlPlaneConfig.from_env(failover=True)
        assert cfg.failover


class TestHeartbeatMonitor:
    def test_walks_alive_suspect_dead(self):
        monitor = HeartbeatMonitor(NAMES, config())
        assert monitor.states() == {name: "alive" for name in NAMES}
        monitor.beat("n0", 0.1)
        monitor.beat("n1", 0.1)
        # n2 never beats: suspect once the gap crosses 0.15s...
        transitions = monitor.observe(0.2)
        assert transitions == [("n2", "alive", "suspect")]
        # ...and dead past 0.4s; the others stay alive.
        monitor.beat("n0", 0.35)
        monitor.beat("n1", 0.35)
        transitions = monitor.observe(0.45)
        assert transitions == [("n2", "suspect", "dead")]
        assert monitor.state("n0") == "alive"
        assert monitor.state("n2") == "dead"

    def test_beat_revives(self):
        monitor = HeartbeatMonitor(NAMES, config())
        monitor.observe(1.0)
        assert monitor.state("n0") == "dead"
        transitions = monitor.beat("n0", 1.1)
        assert transitions == [("n0", "dead", "alive")]
        # A fresh beat means no immediate re-demotion (n1/n2 were
        # already declared dead at the first observe).
        assert monitor.observe(1.2) == []
        assert monitor.state("n0") == "alive"

    def test_no_repeat_transitions(self):
        monitor = HeartbeatMonitor(NAMES, config())
        assert len(monitor.observe(5.0)) == len(NAMES)
        assert monitor.observe(6.0) == []


class TestFailoverDispatcher:
    def _stream(self, name, reservation=0.4, period=1.0):
        return TaskStream(
            name=name, period_s=period, reservation_s=reservation
        )

    def test_place_prefers_first_fitting_candidate(self):
        dispatcher = FailoverDispatcher(NAMES, config(capacity_cores=1.0))
        dispatcher.admit_home("n1", [self._stream("a", reservation=0.9)])
        host = dispatcher.try_place(
            [self._stream("b", reservation=0.4)], ["n1", "n2"]
        )
        assert host == "n2"  # n1 has no headroom left

    def test_place_respects_capacity(self):
        dispatcher = FailoverDispatcher(NAMES, config(capacity_cores=1.0))
        for name in NAMES:
            dispatcher.admit_home(name, [self._stream(name, reservation=0.9)])
        assert dispatcher.try_place(
            [self._stream("x", reservation=0.4)], NAMES
        ) is None

    def test_release_restores_capacity(self):
        dispatcher = FailoverDispatcher(NAMES, config(capacity_cores=1.0))
        dispatcher.admit_home("n0", [self._stream("a", reservation=0.9)])
        assert dispatcher.try_place(
            [self._stream("b", reservation=0.4)], ["n0"]
        ) is None
        dispatcher.release("n0")
        assert dispatcher.try_place(
            [self._stream("b", reservation=0.4)], ["n0"]
        ) == "n0"

    def test_home_admission_is_unconditional(self):
        dispatcher = FailoverDispatcher(NAMES, config(capacity_cores=1.0))
        # An overloaded home node is recorded as-is...
        dispatcher.admit_home("n0", [
            self._stream("a", reservation=0.9),
            self._stream("b", reservation=0.9),
        ])
        assert dispatcher.reserved_utilization(["n0"]) > 1.0
        # ...so its apparent headroom for failovers is honest (none).
        assert dispatcher.try_place(
            [self._stream("c", reservation=0.1)], ["n0"]
        ) is None

    def test_utilization_and_capacity(self):
        dispatcher = FailoverDispatcher(NAMES, config(capacity_cores=2.0))
        dispatcher.admit_home("n0", [self._stream("a", reservation=1.0)])
        assert dispatcher.reserved_utilization(["n0"]) == pytest.approx(1.0)
        assert dispatcher.capacity(NAMES) == pytest.approx(6.0)
