"""Tests for the cluster layer."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterNode,
    ReservationDispatcher,
    StreamRequest,
)
from repro.core.policies import BASELINE, DIRIGENT
from repro.errors import ExperimentError
from repro.experiments.harness import clear_caches
from repro.experiments.mixes import mix_by_name

EXECS = 6


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestClusterNode:
    def test_node_runs_to_completion(self):
        node = ClusterNode(
            "n0", mix_by_name("ferret rs"), BASELINE, executions=EXECS,
            warmup=2,
        )
        while not node.done:
            node.tick()
        result = node.result()
        assert result.policy_name == "Baseline"
        assert len(result.durations_s[0]) == EXECS


class TestCluster:
    def test_lockstep_run_aggregates(self):
        nodes = [
            ClusterNode(
                "n%d" % i, mix_by_name(name), BASELINE, executions=EXECS,
                warmup=2, seed=i,
            )
            for i, name in enumerate(("ferret rs", "bodytrack bwaves"))
        ]
        outcome = Cluster(nodes).run()
        assert set(outcome.node_results) == {"n0", "n1"}
        assert 0.0 <= outcome.fg_success_ratio <= 1.0
        assert outcome.total_bg_instr_per_s > 0

    def test_heterogeneous_policies(self):
        nodes = [
            ClusterNode("base", mix_by_name("ferret rs"), BASELINE,
                        executions=EXECS, warmup=2),
            ClusterNode("managed", mix_by_name("ferret rs"), DIRIGENT,
                        executions=EXECS, warmup=2),
        ]
        outcome = Cluster(nodes).run()
        managed = outcome.node_results["managed"]
        base = outcome.node_results["base"]
        assert managed.fg_stats.std_s < base.fg_stats.std_s

    def test_duplicate_names_rejected(self):
        node = ClusterNode("n", mix_by_name("ferret rs"), BASELINE,
                           executions=EXECS, warmup=2)
        other = ClusterNode("n", mix_by_name("ferret rs"), BASELINE,
                            executions=EXECS, warmup=2)
        with pytest.raises(ExperimentError, match="duplicated: 'n'"):
            Cluster([node, other])

    def test_duplicate_names_all_named(self):
        def node(name):
            return ClusterNode(name, mix_by_name("ferret rs"), BASELINE,
                               executions=EXECS, warmup=2)

        with pytest.raises(ExperimentError, match="'a', 'b'"):
            Cluster([node("a"), node("b"), node("a"), node("b"), node("c")])

    def test_node_labels_reported(self):
        nodes = [
            ClusterNode("base", mix_by_name("ferret rs"), BASELINE,
                        executions=EXECS, warmup=2, seed=3),
            ClusterNode("managed", mix_by_name("ferret rs"), DIRIGENT,
                        executions=EXECS, warmup=2, seed=4),
        ]
        outcome = Cluster(nodes).run()
        assert outcome.node_labels == {
            "base": ("ferret rs", "Baseline", 3),
            "managed": ("ferret rs", "Dirigent", 4),
        }

    def test_empty_cluster_rejected(self):
        with pytest.raises(ExperimentError):
            Cluster([])


class TestReservationDispatcher:
    def _request(self, name, durations, period=2.0):
        return StreamRequest(
            name=name, period_s=period, durations_s=tuple(durations)
        )

    def test_first_fit_placement(self):
        dispatcher = ReservationDispatcher(num_nodes=2, capacity_cores=1.0)
        tight = [1.0] * 10  # reservation 1.0, utilization 0.5
        assert dispatcher.place(self._request("a", tight)) == 0
        assert dispatcher.place(self._request("b", tight)) == 0
        assert dispatcher.place(self._request("c", tight)) == 1

    def test_rejection_when_full(self):
        dispatcher = ReservationDispatcher(num_nodes=1, capacity_cores=1.0)
        big = [1.9] * 10  # utilization 0.95
        assert dispatcher.place(self._request("a", big)) == 0
        assert dispatcher.place(self._request("b", big)) is None
        assert dispatcher.rejected == ["b"]

    def test_place_all_counts(self):
        dispatcher = ReservationDispatcher(num_nodes=2, capacity_cores=1.0)
        reqs = [self._request("s%d" % i, [1.0] * 5) for i in range(5)]
        assert dispatcher.place_all(reqs) == 4  # 2 per node

    def test_low_variance_streams_pack_denser(self):
        low = [1.0 + 0.01 * (i % 3) for i in range(30)]
        high = [1.0 + 0.6 * (i % 3) for i in range(30)]
        d_low = ReservationDispatcher(num_nodes=1, capacity_cores=2.0)
        d_high = ReservationDispatcher(num_nodes=1, capacity_cores=2.0)
        low_count = d_low.place_all(
            [self._request("l%d" % i, low) for i in range(10)]
        )
        high_count = d_high.place_all(
            [self._request("h%d" % i, high) for i in range(10)]
        )
        assert low_count > high_count

    def test_utilization_reported(self):
        dispatcher = ReservationDispatcher(num_nodes=2, capacity_cores=1.0)
        dispatcher.place(self._request("a", [1.0] * 5))
        util = dispatcher.utilization()
        assert util[0] == pytest.approx(0.5)
        assert util[1] == 0.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ReservationDispatcher(num_nodes=0)
        with pytest.raises(ExperimentError):
            StreamRequest(name="x", period_s=0.0, durations_s=(1.0,))
        with pytest.raises(ExperimentError):
            StreamRequest(name="x", period_s=1.0, durations_s=())
