"""Fleet chaos acceptance: self-healing QoS, determinism, kill switch.

The headline pins: under node-crash and partition scenarios the
failover-enabled control plane holds >= 90% fleet-wide FG deadline
attainment while the no-failover baseline is demonstrably worse, and
the fleet ``event_signature`` is identical across the scalar, batch,
and vector backends.
"""

import pytest

from repro.cluster import Cluster, ClusterNode, ControlPlaneConfig
from repro.core.policies import DIRIGENT
from repro.experiments.harness import clear_caches
from repro.experiments.mixes import mix_by_name
from repro.faults import NodeFaultPlan, NodeFaultSpec
from repro.sim.batch import ENV_BACKEND

EXECS = 10
WARMUP = 3
FLEET = 6
SEED = 0


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def build_fleet(num_nodes=FLEET, executions=EXECS, warmup=WARMUP, seed=SEED):
    mix = mix_by_name("raytrace rs")
    return [
        ClusterNode("n%d" % i, mix, DIRIGENT, executions=executions,
                    warmup=warmup, seed=seed + i)
        for i in range(num_nodes)
    ]


CRASH_PLAN = NodeFaultPlan(
    scenario="pinned-crash", seed=SEED,
    overrides=(
        NodeFaultSpec(node="n1", kind="crash", onset_s=0.5),
        NodeFaultSpec(node="n4", kind="crash", onset_s=1.0),
    ),
)

PARTITION_PLAN = NodeFaultPlan(
    scenario="pinned-partition", seed=SEED,
    overrides=(
        NodeFaultSpec(node="n2", kind="partition", onset_s=0.5),
    ),
)


class TestSelfHealingQoS:
    """Failover buys >= 90% attainment; without it the fleet is worse."""

    @pytest.mark.parametrize(
        "plan", [CRASH_PLAN, PARTITION_PLAN],
        ids=["node-crash", "partition"],
    )
    def test_failover_beats_no_failover(self, plan):
        healed = Cluster(build_fleet()).run(
            fault_plan=plan,
            control=ControlPlaneConfig(failover=True),
        )
        unhealed = Cluster(build_fleet()).run(
            fault_plan=plan,
            control=ControlPlaneConfig(failover=False),
        )
        assert healed.fg_success_ratio >= 0.9
        assert healed.failovers == len(plan.overrides)
        assert healed.stranded_executions == 0
        # No failover: every faulted node's undelivered executions count
        # as missed, so the fleet is demonstrably worse.
        assert unhealed.fg_success_ratio < healed.fg_success_ratio
        assert unhealed.failovers == 0
        lost = len(plan.overrides) * EXECS
        assert unhealed.fg_success_ratio <= 1.0 - lost / (FLEET * EXECS)

    def test_detection_and_recovery_latencies_reported(self):
        result = Cluster(build_fleet()).run(fault_plan=CRASH_PLAN)
        assert len(result.time_to_detection_s) == 2
        assert len(result.time_to_recovery_s) == 2
        cfg = ControlPlaneConfig.from_env()
        for ttd, ttr in zip(
            result.time_to_detection_s, result.time_to_recovery_s
        ):
            assert cfg.dead_timeout_s <= ttd < cfg.dead_timeout_s + 0.2
            assert ttr >= ttd
        assert result.node_health["n1"] == "dead"
        assert result.node_health["n0"] == "alive"
        # Replacement sessions appear as home@host entries.
        assert any("@" in label for label in result.node_results)

    def test_failover_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_FAILOVER", "0")
        result = Cluster(build_fleet()).run(fault_plan=CRASH_PLAN)
        assert result.fleet_report is not None
        assert not result.fleet_report.failover_enabled
        assert result.failovers == 0
        assert result.stranded_executions > 0


class TestQuarantine:
    def test_flapping_node_quarantined(self):
        plan = NodeFaultPlan(
            scenario="pinned-flap", seed=SEED,
            overrides=(
                NodeFaultSpec(node="n1", kind="flap", onset_s=0.5,
                              down_s=0.5, up_s=0.5, cycles=2),
            ),
        )
        result = Cluster(build_fleet(num_nodes=4)).run(fault_plan=plan)
        report = result.fleet_report
        assert report.quarantines >= 1
        kinds = {event[2] for event in report.event_signature}
        assert "quarantine" in kinds
        assert "node-recovered" in kinds
        # The flapper ends the run alive again.
        assert result.node_health["n1"] == "alive"


MIXED_PLAN = NodeFaultPlan(
    scenario="pinned-mixed", seed=SEED,
    overrides=(
        NodeFaultSpec(node="n0", kind="crash", onset_s=0.6),
        NodeFaultSpec(node="n2", kind="flap", onset_s=0.5,
                      down_s=0.5, up_s=0.5, cycles=2),
    ),
)


def _small_fleet_run(vectorized=False):
    cluster = Cluster(
        build_fleet(num_nodes=4, executions=6, warmup=2),
        vectorized=vectorized,
    )
    return cluster.run(fault_plan=MIXED_PLAN)


class TestDeterminism:
    def test_repeat_runs_identical(self):
        first = _small_fleet_run()
        second = _small_fleet_run()
        assert first.fleet_report.event_signature == \
            second.fleet_report.event_signature
        assert first.node_results == second.node_results
        assert first.fg_success_ratio == second.fg_success_ratio

    def test_serial_vs_vectorized_bit_identical(self):
        serial = _small_fleet_run(vectorized=False)
        vector = _small_fleet_run(vectorized=True)
        assert serial.fleet_report.event_signature == \
            vector.fleet_report.event_signature
        assert serial.node_results == vector.node_results
        assert serial.fg_success_ratio == vector.fg_success_ratio
        assert serial.health_timelines == vector.health_timelines

    def test_signature_identical_across_backends(self, monkeypatch):
        signatures = {}
        outcomes = {}
        for backend, vectorized in (
            ("scalar", False), ("batch", False), ("batch", True),
        ):
            monkeypatch.setenv(ENV_BACKEND, backend)
            clear_caches()
            label = "vector" if vectorized else backend
            result = _small_fleet_run(vectorized=vectorized)
            signatures[label] = result.fleet_report.event_signature
            outcomes[label] = (
                result.fg_success_ratio,
                result.failovers,
                result.stranded_executions,
            )
        assert signatures["scalar"] == signatures["batch"]
        assert signatures["batch"] == signatures["vector"]
        assert outcomes["scalar"] == outcomes["batch"] == outcomes["vector"]
