"""Determinism and isolation checks for cluster runs."""

import pytest

from repro.cluster import Cluster, ClusterNode
from repro.core.policies import BASELINE
from repro.experiments.harness import clear_caches, run_policy
from repro.experiments.mixes import mix_by_name

EXECS = 5


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestClusterDeterminism:
    def test_cluster_run_is_reproducible(self):
        def outcome():
            nodes = [
                ClusterNode("a", mix_by_name("ferret rs"), BASELINE,
                            executions=EXECS, warmup=2, seed=0),
                ClusterNode("b", mix_by_name("bodytrack bwaves"), BASELINE,
                            executions=EXECS, warmup=2, seed=1),
            ]
            result = Cluster(nodes).run()
            return {
                name: r.durations_s for name, r in result.node_results.items()
            }

        assert outcome() == outcome()

    def test_nodes_do_not_interfere(self):
        # Lockstep co-execution must produce exactly the results of
        # running each node alone: nodes share no simulated state.
        solo = run_policy(
            mix_by_name("ferret rs"), BASELINE, executions=EXECS, warmup=2
        )
        nodes = [
            ClusterNode("a", mix_by_name("ferret rs"), BASELINE,
                        executions=EXECS, warmup=2, seed=0),
            ClusterNode("b", mix_by_name("streamcluster pca"), BASELINE,
                        executions=EXECS, warmup=2, seed=7),
        ]
        together = Cluster(nodes).run()
        assert together.node_results["a"].durations_s == solo.durations_s

    def test_nodes_finish_at_different_times(self):
        # Nodes with different-length tasks finish independently; the
        # cluster keeps ticking the unfinished ones.
        nodes = [
            ClusterNode("short", mix_by_name("fluidanimate bwaves"),
                        BASELINE, executions=EXECS, warmup=2),
            ClusterNode("long", mix_by_name("raytrace bwaves"),
                        BASELINE, executions=EXECS, warmup=2),
        ]
        result = Cluster(nodes).run()
        short = result.node_results["short"].elapsed_s
        long_ = result.node_results["long"].elapsed_s
        assert long_ > short
