"""Tests of the public package surface and error hierarchy."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ControlError,
    ExperimentError,
    ProfileError,
    ReproError,
    SimulationError,
    WorkloadError,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_exposed(self):
        assert repro.Machine
        assert repro.DirigentRuntime
        assert repro.OfflineProfiler
        assert repro.CompletionTimePredictor
        assert len(repro.PAPER_POLICIES) == 5

    def test_subpackage_all_names_resolve(self):
        import repro.core
        import repro.experiments
        import repro.sim
        import repro.workloads

        for module in (repro.core, repro.experiments, repro.sim,
                       repro.workloads):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            SimulationError,
            WorkloadError,
            ProfileError,
            ControlError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise WorkloadError("x")
