"""Every example script must at least parse and compile."""

import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples").glob("*.py")
)


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # deliverable: at least three examples
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_docstring_and_main(path):
    source = path.read_text()
    assert source.lstrip().startswith('"""')
    assert 'if __name__ == "__main__":' in source


def test_cluster_consolidation_smoke(capsys):
    """The cluster example actually runs (tiny sizes), fleet demo included."""
    import importlib

    module = importlib.import_module("examples.cluster_consolidation")
    module.main(executions=6, rack_nodes=2)
    out = capsys.readouterr().out
    assert "cluster-wide FG success" in out
    assert "fleet attainment" in out
