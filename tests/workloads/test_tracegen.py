"""Tests for the synthetic workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.tracegen import GeneratorParams, WorkloadGenerator
from tests.conftest import run_executions


class TestGeneratorParams:
    def test_defaults_valid(self):
        GeneratorParams()

    def test_phase_range_validated(self):
        with pytest.raises(WorkloadError):
            GeneratorParams(min_phases=3, max_phases=2)
        with pytest.raises(WorkloadError):
            GeneratorParams(min_phases=0)

    def test_heavy_fraction_validated(self):
        with pytest.raises(WorkloadError):
            GeneratorParams(heavy_fraction=1.5)


class TestBackgroundGeneration:
    def test_generates_valid_bg(self):
        spec = WorkloadGenerator(seed=1).background()
        assert not spec.is_foreground
        assert spec.total_instructions == pytest.approx(20e9, rel=1e-9)

    def test_deterministic_per_seed(self):
        a = WorkloadGenerator(seed=5).background()
        b = WorkloadGenerator(seed=5).background()
        assert [p.apki for p in a.phases] == [p.apki for p in b.phases]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(seed=5).background()
        b = WorkloadGenerator(seed=6).background()
        assert [p.apki for p in a.phases] != [p.apki for p in b.phases]

    def test_names_unique_within_generator(self):
        gen = WorkloadGenerator(seed=2)
        assert gen.background().name != gen.background().name

    def test_invalid_size_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator().background(total_instructions=0)


class TestForegroundGeneration:
    def test_generates_valid_fg(self):
        spec = WorkloadGenerator(seed=3).foreground(target_standalone_s=0.5)
        assert spec.is_foreground
        assert len(spec.phases) >= 2

    def test_standalone_time_near_target(self):
        spec = WorkloadGenerator(seed=3).foreground(target_standalone_s=0.5)
        machine = Machine(MachineConfig(seed=9, os_jitter_sigma=0.0))
        machine.spawn(spec, core=0)
        records = run_executions(machine, 2)
        # Within 25%: the sizing model ignores contention-free queueing
        # effects but must land in the right ballpark.
        assert records[-1].duration_s == pytest.approx(0.5, rel=0.25)

    def test_invalid_target_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator().foreground(target_standalone_s=0.0)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_any_seed_produces_valid_specs(self, seed):
        gen = WorkloadGenerator(seed=seed)
        bg = gen.background()
        fg = gen.foreground(target_standalone_s=0.8)
        # WorkloadSpec validation ran in the constructors; check a few
        # cross-field invariants on top.
        for spec in (bg, fg):
            for phase in spec.phases:
                assert phase.mpki_peak >= phase.mpki_floor
                assert phase.instructions > 0
