"""Unit tests for repro.workloads.spec."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.spec import (
    KIND_BG,
    KIND_FG,
    PhaseSpec,
    WorkloadSpec,
    uniform_workload,
)
from tests.conftest import make_phase


class TestPhaseSpecValidation:
    def test_valid_phase(self):
        assert make_phase().name == "p"

    def test_nonpositive_instructions(self):
        with pytest.raises(WorkloadError):
            make_phase(instructions=0)

    def test_nonpositive_cpi(self):
        with pytest.raises(WorkloadError):
            make_phase(base_cpi=0)

    def test_negative_apki(self):
        with pytest.raises(WorkloadError):
            make_phase(apki=-1)

    def test_negative_floor(self):
        with pytest.raises(WorkloadError):
            make_phase(mpki_floor=-0.1)

    def test_peak_below_floor(self):
        with pytest.raises(WorkloadError):
            make_phase(mpki_floor=2.0, mpki_peak=1.0)

    def test_nonpositive_ways_scale(self):
        with pytest.raises(WorkloadError):
            make_phase(ways_scale=0)

    def test_negative_sensitivity(self):
        with pytest.raises(WorkloadError):
            make_phase(mem_sensitivity=-0.1)


class TestMissCurve:
    def test_zero_ways_gives_peak(self):
        phase = make_phase(mpki_floor=1.0, mpki_peak=5.0)
        assert phase.mpki(0.0) == pytest.approx(5.0)

    def test_large_allocation_approaches_floor(self):
        phase = make_phase(mpki_floor=1.0, mpki_peak=5.0, ways_scale=2.0)
        assert phase.mpki(100.0) == pytest.approx(1.0, abs=1e-6)

    def test_negative_ways_clamped(self):
        phase = make_phase(mpki_floor=1.0, mpki_peak=5.0)
        assert phase.mpki(-3.0) == phase.mpki(0.0)

    def test_exponential_form(self):
        phase = make_phase(mpki_floor=1.0, mpki_peak=5.0, ways_scale=4.0)
        expected = 1.0 + 4.0 * math.exp(-2.0 / 4.0)
        assert phase.mpki(2.0) == pytest.approx(expected)

    @given(
        ways=st.floats(min_value=0.0, max_value=64.0),
        delta=st.floats(min_value=0.01, max_value=8.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_monotone_decreasing(self, ways, delta):
        phase = make_phase(mpki_floor=0.5, mpki_peak=6.0, ways_scale=3.0)
        assert phase.mpki(ways + delta) <= phase.mpki(ways)

    @given(ways=st.floats(min_value=0.0, max_value=64.0))
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_floor_and_peak(self, ways):
        phase = make_phase(mpki_floor=0.5, mpki_peak=6.0, ways_scale=3.0)
        assert 0.5 <= phase.mpki(ways) <= 6.0


class TestWorkloadSpec:
    def test_kind_validated(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="x", kind="other", phases=(make_phase(),))

    def test_empty_phases_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="x", kind=KIND_FG, phases=())

    def test_input_noise_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(
                name="x", kind=KIND_FG, phases=(make_phase(),), input_noise=0.6
            )

    def test_is_foreground(self):
        fg = WorkloadSpec(name="f", kind=KIND_FG, phases=(make_phase(),))
        bg = WorkloadSpec(name="b", kind=KIND_BG, phases=(make_phase(),))
        assert fg.is_foreground
        assert not bg.is_foreground

    def test_total_instructions(self):
        spec = WorkloadSpec(
            name="x",
            kind=KIND_FG,
            phases=(make_phase(instructions=100), make_phase(instructions=50)),
        )
        assert spec.total_instructions == 150

    def test_phase_boundaries(self):
        spec = WorkloadSpec(
            name="x",
            kind=KIND_FG,
            phases=(make_phase(instructions=100), make_phase(instructions=50)),
        )
        assert spec.phase_boundaries() == (100, 150)

    def test_phase_at(self):
        first = make_phase(name="a", instructions=100)
        second = make_phase(name="b", instructions=50)
        spec = WorkloadSpec(name="x", kind=KIND_BG, phases=(first, second))
        assert spec.phase_at(0).name == "a"
        assert spec.phase_at(99.9).name == "a"
        assert spec.phase_at(100).name == "b"
        assert spec.phase_at(160).name == "a"  # wraps

    def test_phase_at_rejects_negative(self):
        spec = WorkloadSpec(name="x", kind=KIND_BG, phases=(make_phase(),))
        with pytest.raises(WorkloadError):
            spec.phase_at(-1.0)


class TestUniformWorkload:
    def test_single_phase(self):
        spec = uniform_workload(
            "u", KIND_BG, instructions=1e9, base_cpi=1.0, apki=10,
            mpki_floor=1, mpki_peak=2, ways_scale=3,
        )
        assert len(spec.phases) == 1
        assert spec.total_instructions == 1e9
        assert spec.phases[0].name == "u.main"
