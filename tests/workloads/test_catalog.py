"""Unit tests for the workload catalogs (Table 1)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    ALL_WORKLOADS,
    BACKGROUND_WORKLOADS,
    FOREGROUND_NAMES,
    FOREGROUND_WORKLOADS,
    ROTATE_COMPONENTS,
    SINGLE_BG_NAMES,
    foreground_names,
    get_rotate_pair,
    get_workload,
    render_table1,
    rotate_pair_names,
    single_bg_names,
    table1_rows,
)


class TestForegroundCatalog:
    def test_five_fg_benchmarks(self):
        assert set(FOREGROUND_NAMES) == {
            "bodytrack", "ferret", "fluidanimate", "raytrace", "streamcluster",
        }

    def test_all_fg_are_foreground_kind(self):
        for spec in FOREGROUND_WORKLOADS.values():
            assert spec.is_foreground

    def test_fg_have_enough_segments_for_sampling(self):
        # The paper's 5ms sampling yields 100+ segments; standalone times
        # must therefore exceed ~0.5s => more than 0.7e9 instructions.
        for spec in FOREGROUND_WORKLOADS.values():
            assert spec.total_instructions > 0.7e9

    def test_fg_have_multiple_phases(self):
        # Progress must differ between segments (Section 4.1), which
        # requires phase structure.
        for spec in FOREGROUND_WORKLOADS.values():
            assert len(spec.phases) >= 3

    def test_fg_input_noise_small(self):
        for spec in FOREGROUND_WORKLOADS.values():
            assert 0 < spec.input_noise < 0.02


class TestBackgroundCatalog:
    def test_single_bg_names(self):
        assert set(SINGLE_BG_NAMES) == {"bwaves", "pca", "rs"}

    def test_rotate_components(self):
        assert set(ROTATE_COMPONENTS) == {"namd", "soplex", "libquantum", "lbm"}

    def test_all_bg_are_background_kind(self):
        for spec in BACKGROUND_WORKLOADS.values():
            assert not spec.is_foreground

    def test_single_bg_have_phase_contrast(self):
        # Phase-change behaviour: max phase APKI must dwarf the min.
        for name in SINGLE_BG_NAMES:
            spec = BACKGROUND_WORKLOADS[name]
            apkis = [p.apki for p in spec.phases]
            assert max(apkis) / min(apkis) > 3.0


class TestLookups:
    def test_get_workload(self):
        assert get_workload("ferret").name == "ferret"
        assert get_workload("lbm").name == "lbm"

    def test_get_workload_unknown(self):
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_get_rotate_pair(self):
        pair = get_rotate_pair("lbm+namd")
        assert pair.first.name == "lbm"
        assert pair.second.name == "namd"

    def test_get_rotate_pair_unknown(self):
        with pytest.raises(WorkloadError):
            get_rotate_pair("a+b")

    def test_rotate_pair_names_match_paper(self):
        assert set(rotate_pair_names()) == {
            "lbm+namd", "libquantum+namd", "lbm+soplex", "libquantum+soplex",
        }

    def test_name_helpers_are_consistent(self):
        assert foreground_names() == FOREGROUND_NAMES
        assert set(single_bg_names()) <= set(ALL_WORKLOADS)


class TestTable1:
    def test_rows_cover_all_benchmarks(self):
        rows = table1_rows()
        assert len(rows) == 5 + 3 + 4

    def test_row_types(self):
        kinds = {row[0] for row in table1_rows()}
        assert kinds == {"FG", "Single BG", "Rotate BG"}

    def test_render_contains_names(self):
        text = render_table1()
        for name in ("bodytrack", "bwaves", "libquantum"):
            assert name in text
