"""Unit tests for rotate-BG workloads."""

import pytest

from repro.errors import WorkloadError
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import (
    ROTATE_PAIRS,
    RotateManager,
    make_pair,
    spawn_rotating_background,
)
from tests.conftest import make_fg, run_executions


class TestMakePair:
    def test_name_composition(self):
        pair = make_pair("lbm", "soplex")
        assert pair.name == "lbm+soplex"
        assert pair.components[0].name == "lbm"

    def test_unknown_component_rejected(self):
        with pytest.raises(WorkloadError):
            make_pair("lbm", "bwaves")  # bwaves is not a rotate component

    def test_paper_pairs_exist(self):
        assert len(ROTATE_PAIRS) == 4


class TestRotateManager:
    def _machine_with_rotation(self, seed=5):
        machine = Machine(MachineConfig(seed=seed))
        machine.spawn(make_fg(), core=0)
        procs = spawn_rotating_background(
            machine, ROTATE_PAIRS["lbm+namd"], cores=range(1, 6), seed=seed
        )
        return machine, procs

    def test_initial_components_alternate(self):
        machine, procs = self._machine_with_rotation()
        names = [p.spec.name for p in procs]
        assert names == ["lbm", "namd", "lbm", "namd", "lbm"]

    def test_rotation_on_fg_completion(self):
        machine, procs = self._machine_with_rotation()
        run_executions(machine, 6)
        names = {p.spec.name for p in procs}
        assert names <= {"lbm", "namd"}
        # After several completions at least one switch must have happened.
        # (Probability of zero switches in 30 coin flips is negligible.)
        assert any(p.progress < p.spec.total_instructions for p in procs)

    def test_rotation_is_seeded(self):
        def trace(seed):
            machine = Machine(MachineConfig(seed=seed))
            machine.spawn(make_fg(), core=0)
            procs = spawn_rotating_background(
                machine, ROTATE_PAIRS["lbm+namd"], cores=range(1, 6), seed=seed
            )
            run_executions(machine, 4)
            return [p.spec.name for p in procs]

        assert trace(5) == trace(5)

    def test_manager_rejects_fg_processes(self):
        machine = Machine(MachineConfig(seed=1))
        fg = machine.spawn(make_fg(), core=0)
        with pytest.raises(WorkloadError):
            RotateManager(machine, ROTATE_PAIRS["lbm+namd"], [fg])

    def test_manager_rejects_empty(self):
        machine = Machine(MachineConfig(seed=1))
        with pytest.raises(WorkloadError):
            RotateManager(machine, ROTATE_PAIRS["lbm+namd"], [])

    def test_switch_count_advances(self):
        machine, procs = self._machine_with_rotation()
        managers = [
            listener.__self__
            for listener in machine._completion_listeners
            if isinstance(getattr(listener, "__self__", None), RotateManager)
        ]
        assert len(managers) == 1
        run_executions(machine, 8)
        assert managers[0].switch_count > 0
