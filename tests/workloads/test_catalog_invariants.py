"""Pure-data invariants every catalog workload must satisfy.

These guard the calibration: if a future edit to the catalog breaks one
of the structural assumptions the model or the controllers rely on, a
test here fails immediately (no simulation needed).
"""

import pytest

from repro.workloads.catalog import ALL_WORKLOADS
from repro.workloads.parsec import FOREGROUND_WORKLOADS
from repro.workloads.background import (
    ROTATE_COMPONENTS,
    SINGLE_BG_WORKLOADS,
)

ALL_NAMES = sorted(ALL_WORKLOADS)
FG_NAMES = sorted(FOREGROUND_WORKLOADS)
BG_NAMES = sorted(SINGLE_BG_WORKLOADS) + sorted(ROTATE_COMPONENTS)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryWorkload:
    def test_phase_names_unique(self, name):
        spec = ALL_WORKLOADS[name]
        names = [p.name for p in spec.phases]
        assert len(set(names)) == len(names)

    def test_accesses_dominate_misses(self, name):
        # APKI is the occupancy weight; it must be at least the worst-case
        # miss intensity or the cache model would be inconsistent.
        spec = ALL_WORKLOADS[name]
        for phase in spec.phases:
            assert phase.apki >= phase.mpki_peak, phase.name

    def test_miss_curves_meaningful(self, name):
        # Every phase must actually respond to cache allocation at the
        # machine's scale: the curve at 20 ways must sit below the peak.
        spec = ALL_WORKLOADS[name]
        for phase in spec.phases:
            assert phase.mpki(20) < phase.mpki_peak + 1e-9
            assert phase.mpki(0) == pytest.approx(phase.mpki_peak)

    def test_cpi_in_sane_range(self, name):
        spec = ALL_WORKLOADS[name]
        for phase in spec.phases:
            assert 0.3 <= phase.base_cpi <= 1.5, phase.name

    def test_sensitivity_in_unit_range(self, name):
        spec = ALL_WORKLOADS[name]
        for phase in spec.phases:
            assert 0.3 <= phase.mem_sensitivity <= 1.0, phase.name


@pytest.mark.parametrize("name", FG_NAMES)
class TestForegroundInvariants:
    def test_phase_sizes_support_sampling(self, name):
        # Every FG phase must span several 5 ms sampling segments at
        # ~2.5e9 instructions/s, or the profiler's segment structure
        # degenerates.
        spec = FOREGROUND_WORKLOADS[name]
        for phase in spec.phases:
            approx_seconds = phase.instructions / 2.5e9
            assert approx_seconds > 0.03, phase.name

    def test_progress_rates_differ_across_phases(self, name):
        # Section 4.1: progress differs between segments because the
        # instruction mix differs; require some CPI or MPKI contrast.
        spec = FOREGROUND_WORKLOADS[name]
        cpis = [p.base_cpi for p in spec.phases]
        mpkis = [p.mpki_floor for p in spec.phases]
        assert max(cpis) / min(cpis) > 1.05 or max(mpkis) / min(mpkis) > 1.5


@pytest.mark.parametrize("name", BG_NAMES)
class TestBackgroundInvariants:
    def test_bg_loops_long_enough(self, name):
        # BG phase programs must span multiple FG executions so phase
        # changes create task-to-task variation (DESIGN.md §2).
        spec = ALL_WORKLOADS[name]
        assert spec.total_instructions > 5e9

    def test_bg_has_no_input_noise(self, name):
        assert ALL_WORKLOADS[name].input_noise == 0.0

    def test_heavy_phase_present(self, name):
        # Every batch workload needs at least one phase with real cache
        # pressure; otherwise it creates no interference to manage.
        spec = ALL_WORKLOADS[name]
        assert max(p.apki for p in spec.phases) >= 4.0
