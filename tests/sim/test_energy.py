"""Tests for the energy model."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.config import MachineConfig
from repro.sim.energy import EnergyConfig, EnergyModel
from repro.sim.machine import Machine
from tests.conftest import make_bg, make_fg, run_executions


class TestEnergyConfig:
    def test_defaults_put_cpu_near_third_of_system(self):
        config = EnergyConfig()
        cpu_full = 6 * config.core_power_w(2.0, busy=True)
        system = cpu_full + config.platform_w
        assert 0.2 < cpu_full / system < 0.45  # paper: 25-35%

    def test_core_power_cubic_in_frequency(self):
        config = EnergyConfig(static_w_per_core=0.0)
        p1 = config.core_power_w(1.0, busy=True)
        p2 = config.core_power_w(2.0, busy=True)
        assert p2 == pytest.approx(8 * p1)

    def test_idle_core_draws_static_only(self):
        config = EnergyConfig()
        assert config.core_power_w(2.0, busy=False) == pytest.approx(
            config.static_w_per_core
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyConfig(dynamic_w_per_ghz3=0.0)
        with pytest.raises(ConfigurationError):
            EnergyConfig(static_w_per_core=-1.0)
        with pytest.raises(ConfigurationError):
            EnergyConfig(platform_w=-1.0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(SimulationError):
            EnergyConfig().core_power_w(-1.0, busy=True)


class TestEnergyModel:
    def test_accumulation(self):
        model = EnergyModel(2, EnergyConfig(
            dynamic_w_per_ghz3=1.0, static_w_per_core=0.5, platform_w=10.0
        ))
        model.accumulate(1.0, [2.0, 1.0], [True, False])
        assert model.core_joules(0) == pytest.approx(8.0 + 0.5)
        assert model.core_joules(1) == pytest.approx(0.5)
        assert model.platform_joules == pytest.approx(10.0)
        assert model.system_joules == pytest.approx(19.0)
        assert model.elapsed_s == 1.0

    def test_average_power(self):
        model = EnergyModel(1, EnergyConfig(
            dynamic_w_per_ghz3=1.0, static_w_per_core=0.0, platform_w=0.0
        ))
        model.accumulate(2.0, [1.0], [True])
        assert model.average_system_power_w == pytest.approx(1.0)

    def test_empty_model_power_zero(self):
        assert EnergyModel(1).average_system_power_w == 0.0

    def test_validation(self):
        model = EnergyModel(2)
        with pytest.raises(SimulationError):
            model.accumulate(-1.0, [1.0, 1.0], [True, True])
        with pytest.raises(SimulationError):
            model.accumulate(1.0, [1.0], [True, True])
        with pytest.raises(SimulationError):
            model.core_joules(5)
        with pytest.raises(ConfigurationError):
            EnergyModel(0)


class TestMachineIntegration:
    def test_machine_feeds_attached_model(self, quiet_config):
        machine = Machine(quiet_config)
        machine.spawn(make_fg(), core=0)
        model = EnergyModel(quiet_config.num_cores)
        machine.attach_energy_model(model)
        machine.run_seconds(0.05)
        assert model.elapsed_s == pytest.approx(0.05)
        assert model.system_joules > 0
        assert machine.energy is model

    def test_throttled_cores_use_less_energy(self, quiet_config):
        def joules(grade):
            machine = Machine(quiet_config)
            machine.spawn(make_bg(), core=1)
            machine.set_frequency_grade(1, grade)
            model = EnergyModel(quiet_config.num_cores)
            machine.attach_energy_model(model)
            machine.run_seconds(0.1)
            return model.core_joules(1)

        assert joules(0) < joules(4)

    def test_no_model_attached_is_free(self, quiet_config):
        machine = Machine(quiet_config)
        machine.spawn(make_fg(), core=0)
        machine.run_seconds(0.02)
        assert machine.energy is None
