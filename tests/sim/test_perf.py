"""Unit tests for repro.sim.perf (the analytic CPI model)."""

import pytest

from repro.errors import SimulationError
from repro.sim.config import MachineConfig
from repro.sim.memory import MemorySystem
from repro.sim.perf import PerfInput, solve_tick


@pytest.fixture
def memory():
    return MemorySystem(MachineConfig(seed=1))


def entry(freq=2.0, base_cpi=1.0, mpki=0.0, sens=1.0, jitter=1.0):
    return PerfInput(
        freq_ghz=freq,
        base_cpi=base_cpi,
        mpki=mpki,
        mem_sensitivity=sens,
        jitter=jitter,
    )


class TestSingleProcess:
    def test_no_misses_pure_frequency_scaling(self, memory):
        outputs, rho = solve_tick([entry(freq=2.0, base_cpi=1.0)], memory)
        assert outputs[0].ips == pytest.approx(2e9)
        assert rho == 0.0

    def test_half_frequency_halves_compute_bound_ips(self, memory):
        full, _ = solve_tick([entry(freq=2.0)], memory)
        half, _ = solve_tick([entry(freq=1.0)], memory)
        assert half[0].ips == pytest.approx(full[0].ips / 2)

    def test_memory_bound_process_insensitive_to_frequency(self, memory):
        # With a huge miss rate the stall term dominates and wall-clock
        # progress barely moves with frequency.
        fast, _ = solve_tick([entry(freq=2.0, mpki=50.0)], memory)
        slow, _ = solve_tick([entry(freq=1.2, mpki=50.0)], memory)
        assert slow[0].ips / fast[0].ips > 0.9

    def test_misses_slow_execution(self, memory):
        clean, _ = solve_tick([entry(mpki=0.0)], memory)
        missy, _ = solve_tick([entry(mpki=5.0)], memory)
        assert missy[0].ips < clean[0].ips

    def test_mem_sensitivity_scales_stall(self, memory):
        tolerant, _ = solve_tick([entry(mpki=10.0, sens=0.5)], memory)
        exposed, _ = solve_tick([entry(mpki=10.0, sens=1.0)], memory)
        assert tolerant[0].ips > exposed[0].ips

    def test_jitter_multiplies_rate(self, memory):
        base, _ = solve_tick([entry()], memory)
        shaken, _ = solve_tick([entry(jitter=0.9)], memory)
        assert shaken[0].ips == pytest.approx(base[0].ips * 0.9)

    def test_miss_rate_consistent_with_ips(self, memory):
        outputs, _ = solve_tick([entry(mpki=4.0)], memory)
        out = outputs[0]
        assert out.miss_rate == pytest.approx(out.ips * 4.0 / 1000.0)


class TestContention:
    def test_contention_couples_processes(self, memory):
        alone, _ = solve_tick([entry(mpki=8.0)], memory)
        crowd_inputs = [entry(mpki=8.0)] + [entry(mpki=30.0)] * 5
        crowd, rho = solve_tick(crowd_inputs, memory)
        assert crowd[0].ips < alone[0].ips
        assert rho > 0.1

    def test_rho_reflects_total_traffic(self, memory):
        _, rho_small = solve_tick([entry(mpki=5.0)], memory)
        _, rho_big = solve_tick([entry(mpki=5.0)] * 6, memory)
        assert rho_big > rho_small

    def test_fixed_point_stable_from_any_hint(self, memory):
        inputs = [entry(mpki=20.0)] * 4
        out_cold, rho_cold = solve_tick(inputs, memory, rho_hint=0.0,
                                        iterations=30)
        out_hot, rho_hot = solve_tick(inputs, memory, rho_hint=0.9,
                                      iterations=30)
        assert rho_cold == pytest.approx(rho_hot, rel=1e-3)
        assert out_cold[0].ips == pytest.approx(out_hot[0].ips, rel=1e-3)

    def test_empty_inputs(self, memory):
        outputs, rho = solve_tick([], memory)
        assert outputs == []
        assert rho == 0.0

    def test_invalid_iterations_rejected(self, memory):
        with pytest.raises(SimulationError):
            solve_tick([], memory, iterations=0)

    def test_outputs_align_with_inputs(self, memory):
        inputs = [entry(mpki=0.0), entry(mpki=30.0)]
        outputs, _ = solve_tick(inputs, memory)
        assert outputs[0].ips > outputs[1].ips

    def test_cycles_per_s_is_frequency(self, memory):
        outputs, _ = solve_tick([entry(freq=1.4, mpki=10.0)], memory)
        assert outputs[0].cycles_per_s == pytest.approx(1.4e9)
