"""Tests for the telemetry tracer and sparkline renderer."""

import pytest

from repro.errors import SimulationError
from repro.sim.machine import Machine
from repro.sim.trace import MachineTracer, sparkline
from tests.conftest import make_bg, make_fg


@pytest.fixture
def traced_machine(quiet_config):
    machine = Machine(quiet_config)
    machine.spawn(make_fg(), core=0)
    machine.spawn(make_bg(), core=1)
    tracer = MachineTracer(machine, period_s=5e-3)
    tracer.start()
    return machine, tracer


class TestMachineTracer:
    def test_samples_on_period(self, traced_machine):
        machine, tracer = traced_machine
        machine.run_seconds(0.1)
        assert 18 <= len(tracer.samples) <= 21

    def test_sample_contents(self, traced_machine):
        machine, tracer = traced_machine
        machine.run_seconds(0.02)
        sample = tracer.samples[0]
        assert sample.time_s > 0
        assert len(sample.frequencies_ghz) == 6
        assert sample.frequencies_ghz[0] == 2.0
        assert sample.rho >= 0
        assert sample.paused == 0
        assert len(sample.effective_ways) == 6

    def test_records_frequency_changes(self, traced_machine):
        machine, tracer = traced_machine
        machine.run_seconds(0.02)
        machine.set_frequency_grade(1, 0)
        machine.run_seconds(0.02)
        freqs = tracer.series("frequency", core=1)
        assert freqs[0] == 2.0
        assert freqs[-1] == 1.2

    def test_records_pauses(self, traced_machine):
        machine, tracer = traced_machine
        bg = machine.background_processes[0]
        machine.pause(bg.pid)
        machine.run_seconds(0.02)
        assert tracer.series("paused")[-1] == 1.0

    def test_stop_halts_sampling(self, traced_machine):
        machine, tracer = traced_machine
        machine.run_seconds(0.02)
        tracer.stop()
        count = len(tracer.samples)
        machine.run_seconds(0.02)
        assert len(tracer.samples) == count

    def test_series_validation(self, traced_machine):
        machine, tracer = traced_machine
        machine.run_seconds(0.01)
        with pytest.raises(SimulationError):
            tracer.series("frequency")
        with pytest.raises(SimulationError):
            tracer.series("bogus")

    def test_double_start_rejected(self, traced_machine):
        _, tracer = traced_machine
        with pytest.raises(SimulationError):
            tracer.start()

    def test_invalid_period_rejected(self, quiet_machine):
        with pytest.raises(SimulationError):
            MachineTracer(quiet_machine, period_s=0.0)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([1.0] * 10, width=10)
        assert len(line) == 10
        assert len(set(line)) == 1

    def test_ramp_is_monotone(self):
        line = sparkline([float(i) for i in range(10)], width=10)
        glyph_order = " .:-=+*#%@"
        ranks = [glyph_order.index(ch) for ch in line]
        assert ranks == sorted(ranks)

    def test_width_buckets(self):
        line = sparkline([float(i) for i in range(100)], width=10)
        assert len(line) == 10

    def test_invalid_width(self):
        with pytest.raises(SimulationError):
            sparkline([1.0], width=0)
