"""Tests for the MemGuard-style bandwidth-reservation mechanism."""

import pytest

from repro.errors import ControlError
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.memguard import BandwidthBudget, MemGuard
from tests.conftest import make_bg, make_fg, run_executions


@pytest.fixture
def config():
    return MachineConfig(seed=23, os_jitter_sigma=0.0, timer_jitter_prob=0.0)


def build_node(config):
    machine = Machine(config)
    fg = machine.spawn(make_fg(), core=0, nice=-5)
    bg = [machine.spawn(make_bg(), core=c, nice=5) for c in range(1, 6)]
    return machine, fg, bg


class TestValidation:
    def test_budget_positive(self):
        with pytest.raises(ControlError):
            BandwidthBudget(pid=1, core=1, bytes_per_s=0.0)

    def test_needs_budgets(self, config):
        machine, _, _ = build_node(config)
        with pytest.raises(ControlError):
            MemGuard(machine, [])

    def test_period_positive(self, config):
        machine, _, bg = build_node(config)
        budget = BandwidthBudget(bg[0].pid, bg[0].core, 1e9)
        with pytest.raises(ControlError):
            MemGuard(machine, [budget], period_s=0.0)

    def test_double_start_rejected(self, config):
        machine, _, bg = build_node(config)
        guard = MemGuard(
            machine, [BandwidthBudget(bg[0].pid, bg[0].core, 1e9)]
        )
        guard.start()
        with pytest.raises(ControlError):
            guard.start()


class TestRegulation:
    def test_tight_budget_throttles(self, config):
        machine, fg, bg = build_node(config)
        budgets = [
            BandwidthBudget(p.pid, p.core, bytes_per_s=5e6) for p in bg
        ]
        guard = MemGuard(machine, budgets)
        guard.start()
        machine.run_seconds(0.5)
        assert guard.throttle_events > 0

    def test_generous_budget_never_throttles(self, config):
        machine, fg, bg = build_node(config)
        budgets = [
            BandwidthBudget(p.pid, p.core, bytes_per_s=1e12) for p in bg
        ]
        guard = MemGuard(machine, budgets)
        guard.start()
        machine.run_seconds(0.5)
        assert guard.throttle_events == 0
        assert all(not machine.is_paused(p.pid) for p in bg)

    def test_throttled_tasks_resume_each_period(self, config):
        machine, fg, bg = build_node(config)
        budgets = [
            BandwidthBudget(p.pid, p.core, bytes_per_s=5e6) for p in bg
        ]
        guard = MemGuard(machine, budgets, period_s=0.02)
        guard.start()
        machine.run_seconds(0.5)
        # Tasks keep making progress despite tiny budgets: they run at the
        # start of every period before exhausting it.
        assert all(p.progress > 0 for p in bg)
        assert guard.periods > 10

    def test_reservation_protects_fg(self, config):
        def fg_mean(budget_bytes):
            machine, fg, bg = build_node(config)
            guard = MemGuard(
                machine,
                [BandwidthBudget(p.pid, p.core, budget_bytes) for p in bg],
            )
            guard.start()
            records = run_executions(machine, 6)
            return sum(r.duration_s for r in records[2:]) / 4

        protected = fg_mean(2e7)     # tight BG budgets
        unprotected = fg_mean(1e12)  # effectively unregulated
        assert protected < unprotected

    def test_stop_releases_throttled(self, config):
        machine, fg, bg = build_node(config)
        guard = MemGuard(
            machine,
            [BandwidthBudget(p.pid, p.core, 5e6) for p in bg],
        )
        guard.start()
        machine.run_seconds(0.1)
        guard.stop()
        assert all(not machine.is_paused(p.pid) for p in bg)
        machine.run_seconds(0.1)
        assert guard.throttle_events >= 0  # no further regulation errors


class TestBudgetBoundaries:
    def test_budget_exactly_at_usage_not_throttled(self, config):
        # A budget matching the demand (within the check granularity)
        # should rarely throttle; verify the guard is not trigger-happy.
        machine, fg, bg = build_node(config)
        machine.run_seconds(0.2)  # measure demand first
        demand = machine.read_counters(1).llc_misses / 0.2 * 64
        machine2, fg2, bg2 = build_node(config)
        guard = MemGuard(
            machine2,
            [BandwidthBudget(p.pid, p.core, demand * 4.0) for p in bg2],
        )
        guard.start()
        machine2.run_seconds(0.3)
        assert guard.throttle_events == 0

    def test_single_regulated_task_among_many(self, config):
        machine, fg, bg = build_node(config)
        guard = MemGuard(
            machine, [BandwidthBudget(bg[0].pid, bg[0].core, 1e6)]
        )
        guard.start()
        machine.run_seconds(0.3)
        # Only the regulated task is ever paused.
        assert machine.is_paused(bg[0].pid) or guard.throttle_events > 0
        for proc in bg[1:]:
            assert not machine.is_paused(proc.pid)

    def test_periods_counted(self, config):
        machine, fg, bg = build_node(config)
        guard = MemGuard(
            machine,
            [BandwidthBudget(bg[0].pid, bg[0].core, 1e12)],
            period_s=0.02,
        )
        guard.start()
        machine.run_seconds(0.21)
        assert 9 <= guard.periods <= 12
