"""Vector (multi-cell) backend equivalence.

The structure-of-arrays driver (:mod:`repro.sim.vector`) must be
indistinguishable, cell for cell, from running each machine alone:
bit-identical counters, execution records, cache occupancy, rho,
event streams, energy, and policy decisions — whether a cell fused
into cell-axis kernels, peeled off on a trip and rejoined, or never
found a bit-identical peer at all.  The scalar backend is the
reference; the per-machine batch engine (already pinned scalar-equal
by ``test_batch_equivalence``) is the peel-off path, so the suite
closes the triangle scalar == batch == vector.

A hypothesis layer samples workload shapes, seeds, cell counts, and
drive chunkings; a policy layer checks the harness/cluster consumers
(``run_policy_batch``, vectorized sessions) against their serial
twins, including a faulted plan.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import BASELINE, DIRIGENT
from repro.experiments.harness import (
    PolicySession,
    clear_caches,
    drive_sessions_vectorized,
    run_policy,
    run_policy_batch,
)
from repro.experiments.mixes import mix_by_name
from repro.sim.batch import BACKEND_BATCH, BACKEND_SCALAR, ENV_BACKEND
from repro.sim.config import (
    ENV_VECTOR_CELLS,
    ENV_VECTOR_NUMPY,
    MachineConfig,
    vector_numpy_enabled,
)
from repro.sim.machine import Machine
from repro.sim.vector import MultiCell, numpy_available
from tests.conftest import make_bg, make_fg

#: Quiet config: no per-cell entropy, so identical cells can fuse.
QUIET = dict(os_jitter_sigma=0.0, timer_jitter_prob=0.0)


def _fusion_active() -> bool:
    """Whether fused cell-axis kernels can run at all.

    Needs numpy importable *and* not disabled by REPRO_VECTOR_NUMPY —
    equivalence assertions hold either way, but fusion-counter
    assertions only apply when the fused path is reachable (the
    no-numpy CI leg runs this suite with the fallback active).
    """
    return numpy_available() and vector_numpy_enabled()


def _records_of(machine):
    records = []
    machine.add_completion_listener(
        lambda proc, record: records.append(
            (
                proc.pid,
                record.index,
                record.start_s,
                record.end_s,
                record.instructions,
                record.llc_misses,
            )
        )
    )
    return records


def _spawn_mixed(machine, noise=0.05):
    machine.spawn(make_fg(input_noise=noise), core=0, nice=-5)
    for core in range(1, machine.config.num_cores):
        machine.spawn(make_bg(heavy=core % 2 == 0), core=core, nice=5)


def _fleet(seeds, backend, populate=_spawn_mixed, **config_kw):
    """One machine per seed, plus their completion logs."""
    machines, logs = [], []
    for seed in seeds:
        machine = Machine(
            MachineConfig(seed=seed, **config_kw), backend=backend
        )
        logs.append(_records_of(machine))
        populate(machine)
        machines.append(machine)
    return machines, logs


def _assert_machines_equal(reference, vectored):
    assert reference.clock.tick == vectored.clock.tick
    assert reference.rho == vectored.rho
    for core in range(reference.config.num_cores):
        a = reference.read_counters(core)
        b = vectored.read_counters(core)
        for field in (
            "instructions", "cycles", "llc_accesses", "llc_misses"
        ):
            assert getattr(a, field) == getattr(b, field), (core, field)
        assert reference.cache.effective_ways(core) == \
            vectored.cache.effective_ways(core)


def _assert_fleets_equal(ref_machines, ref_logs, vec_machines, vec_logs):
    for ref, log_r, vec, log_v in zip(
        ref_machines, ref_logs, vec_machines, vec_logs
    ):
        _assert_machines_equal(ref, vec)
        assert log_r == log_v
    assert any(ref_logs)  # the workload actually completed executions


class TestMultiCellBitEquivalence:
    """MultiCell == per-machine advancement, observable for observable."""

    def test_fused_cells_match_scalar_and_batch(self):
        seeds = [3, 4, 5, 6]
        scalar, logs_s = _fleet(seeds, BACKEND_SCALAR, **QUIET)
        batch, logs_b = _fleet(seeds, BACKEND_BATCH, **QUIET)
        vector, logs_v = _fleet(seeds, BACKEND_BATCH, **QUIET)
        for m in scalar + batch:
            m.run_ticks(12_000)
        driver = MultiCell(vector)
        driver.run_ticks(12_000)
        _assert_fleets_equal(scalar, logs_s, vector, logs_v)
        _assert_fleets_equal(batch, logs_b, vector, logs_v)
        if _fusion_active():
            assert driver.stats.vector_spans > 0
            assert driver.stats.cells_per_span >= (
                2 * driver.stats.vector_spans
            )

    def test_divergent_cells_peel_off_and_rejoin(self):
        # Input noise draws per-cell completion targets, so FG
        # completions land at different ticks: fused spans trip, the
        # tripped cell replays one scalar tick, and cells regroup once
        # their shared state re-coincides.
        seeds = [11, 12, 13]
        reference, logs_r = _fleet(seeds, BACKEND_BATCH, **QUIET)
        vector, logs_v = _fleet(seeds, BACKEND_BATCH, **QUIET)
        for m in reference:
            m.run_ticks(15_000)
        driver = MultiCell(vector)
        driver.run_ticks(15_000)
        _assert_fleets_equal(reference, logs_r, vector, logs_v)
        if _fusion_active():
            assert driver.stats.vector_spans > 0
            assert driver.stats.vector_peels > 0
            # Noise-drawn targets land completions at different ticks,
            # so a trip evicts one cell while the others stay fused.
            assert driver.stats.partial_peels > 0

    def test_chunked_driving_matches_one_shot(self):
        seeds = [21, 22, 23]
        one_shot, logs_a = _fleet(seeds, BACKEND_BATCH, **QUIET)
        chunked, logs_b = _fleet(seeds, BACKEND_BATCH, **QUIET)
        MultiCell(one_shot).run_ticks(10_000)
        driver = MultiCell(chunked)
        remaining = 10_000
        for chunk in (1, 7, 93, 2048):
            driver.run_ticks(chunk)
            remaining -= chunk
        driver.run_ticks(remaining)
        _assert_fleets_equal(one_shot, logs_a, chunked, logs_b)

    def test_indices_subset_advances_only_those_cells(self):
        seeds = [31, 32, 33]
        machines, _ = _fleet(seeds, BACKEND_BATCH, **QUIET)
        driver = MultiCell(machines)
        driver.run_ticks(500, indices=[0, 2])
        assert machines[0].clock.tick == machines[2].clock.tick == 500
        assert machines[1].clock.tick == 0
        driver.run_ticks(500, indices=[1])
        assert machines[1].clock.tick == 500

    def test_heterogeneous_cells_never_fuse_but_stay_exact(self):
        # Different workloads => different structural fingerprints: no
        # cell ever finds a peer, everything runs the engine path.
        def populate(machine):
            heavy = machine.config.seed % 2 == 0
            machine.spawn(
                make_fg(input_noise=0.02 if heavy else 0.01),
                core=0, nice=-5,
            )
            for core in range(1, machine.config.num_cores):
                machine.spawn(make_bg(heavy=heavy), core=core, nice=5)

        seeds = [41, 42]
        reference, logs_r = _fleet(
            seeds, BACKEND_BATCH, populate=populate, **QUIET
        )
        vector, logs_v = _fleet(
            seeds, BACKEND_BATCH, populate=populate, **QUIET
        )
        for m in reference:
            m.run_ticks(8_000)
        driver = MultiCell(vector)
        driver.run_ticks(8_000)
        _assert_fleets_equal(reference, logs_r, vector, logs_v)

    def test_jittered_cells_take_the_engine_path_exactly(self):
        # Per-cell entropy (OS jitter) can never fuse; the driver must
        # hand such cells to their own engines wholesale.
        seeds = [51, 52]
        reference, logs_r = _fleet(seeds, BACKEND_BATCH)
        vector, logs_v = _fleet(seeds, BACKEND_BATCH)
        for m in reference:
            m.run_ticks(6_000)
        driver = MultiCell(vector)
        driver.run_ticks(6_000)
        _assert_fleets_equal(reference, logs_r, vector, logs_v)
        assert driver.stats.vector_spans == 0

    def test_scalar_backend_cells_use_the_reference_loop(self):
        seeds = [61, 62]
        reference, logs_r = _fleet(seeds, BACKEND_SCALAR, **QUIET)
        vector, logs_v = _fleet(seeds, BACKEND_SCALAR, **QUIET)
        for m in reference:
            m.run_ticks(5_000)
        MultiCell(vector).run_ticks(5_000)
        _assert_fleets_equal(reference, logs_r, vector, logs_v)


class TestPartialPeels:
    """Trips evict only the diverging cells; survivors stay fused.

    The shared model trajectory is a pure function of the shared state
    — never of the member set — so a fused group that loses a cell
    mid-span must keep producing the exact floats the smaller group
    would have computed from scratch.  These tests pin that invariant
    where it is most fragile: a single divergent cell among N, trips
    landing at span boundaries (zero-tick evictions under 1-tick
    budgets), and regrouping after the peeled cell recovers.
    """

    def _noisy_fg_fleet(self, seeds):
        def populate(machine):
            machine.spawn(
                make_fg(input_noise=0.05, total_gi=0.2), core=0, nice=-5
            )
            for core in range(1, machine.config.num_cores):
                machine.spawn(make_bg(heavy=core % 2 == 0),
                              core=core, nice=5)

        return _fleet(seeds, BACKEND_BATCH, populate=populate, **QUIET)

    def test_one_divergent_cell_among_n_fused(self):
        # Five cells, per-seed noise-drawn FG targets: the earliest
        # completion trips exactly one column while four keep fusing.
        seeds = [101, 102, 103, 104, 105]
        reference, logs_r = self._noisy_fg_fleet(seeds)
        vector, logs_v = self._noisy_fg_fleet(seeds)
        for m in reference:
            m.run_ticks(15_000)
        driver = MultiCell(vector)
        driver.run_ticks(15_000)
        _assert_fleets_equal(reference, logs_r, vector, logs_v)
        if _fusion_active():
            assert driver.stats.partial_peels > 0
            assert driver.stats.vector_peels > 0

    def test_divergence_at_span_boundaries(self):
        # Tiny drive chunks force 1-tick span budgets around the
        # completion window, so trips land on the first tick of a
        # fused span (zero ticks committed before the eviction).
        seeds = [111, 112, 113, 114]
        reference, logs_r = self._noisy_fg_fleet(seeds)
        chunked, logs_c = self._noisy_fg_fleet(seeds)
        chunks = (2_500, 1, 1, 1, 2, 3, 500) * 4
        total = sum(chunks)
        for m in reference:
            m.run_ticks(total)
        driver = MultiCell(chunked)
        for chunk in chunks:
            driver.run_ticks(chunk)
        _assert_fleets_equal(reference, logs_r, chunked, logs_c)

    def test_regroup_after_recovery(self):
        # Single-phase FG + one long BG phase: the shared trajectory
        # sits at its rho fixed point, so a completion trip only
        # redraws the tripped cell's per-cell target — the replayed
        # scalar tick lands the cell back on the exact shared
        # trajectory and it rejoins the fused group next round.
        from tests.conftest import make_phase

        def populate(machine):
            fg = make_fg(
                phases=(make_phase(
                    "only", instructions=2e8, base_cpi=0.7,
                    mpki_floor=0.3, mpki_peak=1.5, apki=8.0,
                ),),
                input_noise=0.05,
            )
            machine.spawn(fg, core=0, nice=-5)
            bg = make_bg()
            bg = type(bg)(
                name=bg.name, kind=bg.kind,
                phases=(make_phase("flat", instructions=1e12),),
            )
            for core in range(1, machine.config.num_cores):
                machine.spawn(bg, core=core, nice=5)

        seeds = [121, 122, 123]
        reference, logs_r = _fleet(
            seeds, BACKEND_BATCH, populate=populate, **QUIET
        )
        vector, logs_v = _fleet(
            seeds, BACKEND_BATCH, populate=populate, **QUIET
        )
        for m in reference:
            m.run_ticks(18_000)
        driver = MultiCell(vector)
        driver.run_ticks(9_000)
        if _fusion_active():
            assert driver.stats.partial_peels > 0
        before = driver.stats.vector_spans
        cells_before = driver.stats.cells_per_span
        driver.run_ticks(9_000)
        _assert_fleets_equal(reference, logs_r, vector, logs_v)
        if _fusion_active():
            # Peels happened in the first half, yet full-width fused
            # spans keep forming in the second: cells regrouped.
            new_spans = driver.stats.vector_spans - before
            new_cells = driver.stats.cells_per_span - cells_before
            assert new_spans > 0
            assert new_cells >= 2 * new_spans


class TestKnobsAndFallbacks:
    """REPRO_VECTOR_* knobs are scheduling-only; results never move."""

    def test_numpy_kill_switch_disables_fusion_not_results(
        self, monkeypatch
    ):
        monkeypatch.setenv(ENV_VECTOR_NUMPY, "0")
        seeds = [71, 72, 73]
        reference, logs_r = _fleet(seeds, BACKEND_BATCH, **QUIET)
        vector, logs_v = _fleet(seeds, BACKEND_BATCH, **QUIET)
        for m in reference:
            m.run_ticks(8_000)
        driver = MultiCell(vector)
        driver.run_ticks(8_000)
        _assert_fleets_equal(reference, logs_r, vector, logs_v)
        assert driver.stats.vector_spans == 0

    def test_cell_cap_chunks_fusion_without_changing_results(
        self, monkeypatch
    ):
        monkeypatch.setenv(ENV_VECTOR_CELLS, "2")
        seeds = [81, 82, 83, 84, 85]
        reference, logs_r = _fleet(seeds, BACKEND_BATCH, **QUIET)
        vector, logs_v = _fleet(seeds, BACKEND_BATCH, **QUIET)
        for m in reference:
            m.run_ticks(8_000)
        driver = MultiCell(vector)
        driver.run_ticks(8_000)
        _assert_fleets_equal(reference, logs_r, vector, logs_v)
        if _fusion_active():
            assert driver.stats.vector_spans > 0
            assert driver.stats.cells_per_span <= \
                2 * driver.stats.vector_spans


class TestEventAndEnergyEquivalence:
    """Timers, DVFS, pauses, partitions, and energy through the driver."""

    def _run_with_events(self, vectorized):
        config = MachineConfig(seed=13, timer_jitter_prob=0.5)
        machine = Machine(config, backend=BACKEND_BATCH)
        log = _records_of(machine)
        _spawn_mixed(machine)
        trace = []

        def periodic():
            tick = machine.clock.tick
            trace.append((tick, machine.read_counters(0).instructions))
            bg_proc = machine.process_on_core(1)
            if machine.is_paused(bg_proc.pid):
                machine.resume(bg_proc.pid)
            else:
                machine.pause(bg_proc.pid)
            machine.step_frequency(2, -1 if tick % 20 else 1)
            if tick % 1000 < 500:
                machine.set_fg_partition([0], 12)
            else:
                machine.clear_partitions()
            machine.charge_overhead(0, 2e-4)
            machine.schedule_wakeup(7.3e-3, periodic)

        machine.schedule_wakeup(7.3e-3, periodic)
        if vectorized:
            MultiCell([machine]).run_ticks(8_000)
        else:
            machine.run_ticks(8_000)
        return machine, log, trace

    def test_event_stream_identical(self):
        ref, log_r, trace_r = self._run_with_events(vectorized=False)
        vec, log_v, trace_v = self._run_with_events(vectorized=True)
        assert trace_r == trace_v
        assert log_r == log_v
        _assert_machines_equal(ref, vec)
        for core in range(ref.config.num_cores):
            assert ref.governor.grade(core) == vec.governor.grade(core)

    def test_energy_model_identical(self):
        from repro.sim.energy import EnergyModel

        totals = []
        for vectorized in (False, True):
            machine = Machine(
                MachineConfig(seed=5, **QUIET), backend=BACKEND_BATCH
            )
            machine.attach_energy_model(EnergyModel(
                machine.config.num_cores
            ))
            _spawn_mixed(machine)
            if vectorized:
                MultiCell([machine]).run_ticks(9_000)
            else:
                machine.run_ticks(9_000)
            totals.append(
                (machine.energy.system_joules, machine.energy.elapsed_s)
            )
        assert totals[0] == totals[1]


class TestHypothesisEquivalence:
    """Property: any quiet fleet advanced by MultiCell matches the
    per-machine batch engines bit for bit, under any drive chunking."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed_base=st.integers(min_value=0, max_value=2**16),
        cells=st.integers(min_value=2, max_value=5),
        noise=st.sampled_from([0.0, 0.01, 0.05]),
        total_gi=st.sampled_from([0.2, 0.4]),
        chunks=st.lists(
            st.integers(min_value=1, max_value=1500),
            min_size=1, max_size=4,
        ),
        cap=st.sampled_from([None, 1, 2, 3]),
    )
    def test_random_fleet_matches_batch(
        self, seed_base, cells, noise, total_gi, chunks, cap
    ):
        with pytest.MonkeyPatch.context() as monkeypatch:
            if cap is None:
                monkeypatch.delenv(ENV_VECTOR_CELLS, raising=False)
            else:
                monkeypatch.setenv(ENV_VECTOR_CELLS, str(cap))
            self._check(seed_base, cells, noise, total_gi, chunks)

    def _check(self, seed_base, cells, noise, total_gi, chunks):
        def populate(machine):
            machine.spawn(
                make_fg(input_noise=noise, total_gi=total_gi),
                core=0, nice=-5,
            )
            for core in range(1, machine.config.num_cores):
                machine.spawn(make_bg(heavy=core % 2 == 0),
                              core=core, nice=5)

        seeds = [seed_base + i for i in range(cells)]
        reference, logs_r = _fleet(
            seeds, BACKEND_BATCH, populate=populate, **QUIET
        )
        vector, logs_v = _fleet(
            seeds, BACKEND_BATCH, populate=populate, **QUIET
        )
        total = sum(chunks)
        for m in reference:
            m.run_ticks(total)
        driver = MultiCell(vector)
        for chunk in chunks:
            driver.run_ticks(chunk)
        for ref, log_r, vec, log_v in zip(
            reference, logs_r, vector, logs_v
        ):
            _assert_machines_equal(ref, vec)
            assert log_r == log_v


class TestPolicyDecisionEquivalence:
    """The harness consumers must match their serial twins exactly."""

    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def test_run_policy_batch_matches_serial_runs(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "vector")
        mix = mix_by_name("ferret rs")
        batch = run_policy_batch(
            mix, DIRIGENT, executions=3, warmup=1, seeds=[0, 1]
        )
        clear_caches()
        for seed, result in zip([0, 1], batch):
            serial = run_policy(
                mix, DIRIGENT, executions=3, warmup=1, seed=seed
            )
            assert result.durations_s == serial.durations_s
            assert result.deadlines_s == serial.deadlines_s
            assert result.bg_grade_histogram == serial.bg_grade_histogram
            assert result.partition_history == serial.partition_history
            assert result.elapsed_s == serial.elapsed_s
            assert result.fg_instr == serial.fg_instr
            assert result.bg_instr == serial.bg_instr

    def test_policy_sessions_fuse_peel_and_match(self, monkeypatch):
        # Quiet config + per-seed input noise: replicas of the same
        # (mix, policy) cell fuse, trip on their noise-drawn FG
        # completions, peel one tick, and rejoin — while every session
        # result stays bit-identical to its solo run.
        monkeypatch.setenv(ENV_BACKEND, "vector")
        config = MachineConfig(**QUIET)
        mix = mix_by_name("ferret rs")
        seeds = [0, 1, 2]
        sessions = [
            PolicySession(
                mix, BASELINE, executions=3, warmup=1, config=config,
                seed=seed,
            )
            for seed in seeds
        ]
        driver = drive_sessions_vectorized(sessions)
        for seed, session in zip(seeds, sessions):
            solo = run_policy(
                mix, BASELINE, executions=3, warmup=1, config=config,
                seed=seed,
            )
            result = session.result()
            assert result.durations_s == solo.durations_s
            assert result.elapsed_s == solo.elapsed_s
            assert result.bg_instr_per_s == solo.bg_instr_per_s
        if _fusion_active():
            assert driver.stats.vector_spans > 0
            assert driver.stats.vector_peels > 0

    def test_faulted_run_policy_batch_matches_serial(self, monkeypatch):
        from repro.faults import scenario

        monkeypatch.setenv(ENV_BACKEND, "vector")
        mix = mix_by_name("ferret rs")
        plan = scenario("sensor-degraded", seed=21)
        batch = run_policy_batch(
            mix, DIRIGENT, executions=3, warmup=1, seeds=[0, 1],
            fault_plan=plan,
        )
        clear_caches()
        for seed, result in zip([0, 1], batch):
            serial = run_policy(
                mix, DIRIGENT, executions=3, warmup=1, seed=seed,
                fault_plan=plan,
            )
            assert result.durations_s == serial.durations_s
            assert result.elapsed_s == serial.elapsed_s
            rep_b, rep_s = result.fault_report, serial.fault_report
            assert rep_b is not None and rep_s is not None
            assert rep_b.event_signature == rep_s.event_signature
            assert rep_b.injected == rep_s.injected
            assert rep_b.degraded_entries == rep_s.degraded_entries
