"""Unit and integration tests for repro.sim.machine."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.osal import SystemInterface
from tests.conftest import make_bg, make_fg, run_executions


class TestSpawn:
    def test_spawn_assigns_pids(self, machine, tiny_fg, tiny_bg):
        a = machine.spawn(tiny_fg, core=0)
        b = machine.spawn(tiny_bg, core=1)
        assert a.pid != b.pid
        assert machine.process_by_pid(a.pid) is a

    def test_spawn_same_core_twice_rejected(self, machine, tiny_fg, tiny_bg):
        machine.spawn(tiny_fg, core=0)
        with pytest.raises(ConfigurationError):
            machine.spawn(tiny_bg, core=0)

    def test_spawn_out_of_range_core_rejected(self, machine, tiny_fg):
        with pytest.raises(ConfigurationError):
            machine.spawn(tiny_fg, core=6)

    def test_process_listing(self, machine, tiny_fg, tiny_bg):
        fg = machine.spawn(tiny_fg, core=0)
        bg = machine.spawn(tiny_bg, core=1)
        assert machine.foreground_processes == [fg]
        assert machine.background_processes == [bg]

    def test_process_listing_cached_until_spawn(self, machine, tiny_fg,
                                                tiny_bg):
        # The runtime reads these every fine interval; repeated access
        # must not rebuild the lists, but a spawn must invalidate them.
        fg = machine.spawn(tiny_fg, core=0)
        assert machine.processes is machine.processes
        assert machine.foreground_processes is machine.foreground_processes
        assert machine.background_processes is machine.background_processes
        bg = machine.spawn(tiny_bg, core=1)
        assert machine.processes == [fg, bg]
        assert machine.foreground_processes == [fg]
        assert machine.background_processes == [bg]

    def test_unknown_pid_rejected(self, machine):
        with pytest.raises(SimulationError):
            machine.process_by_pid(99)

    def test_idle_core_returns_none(self, machine):
        assert machine.process_on_core(3) is None


class TestSystemInterfaceConformance:
    def test_machine_satisfies_protocol(self, machine):
        assert isinstance(machine, SystemInterface)

    def test_now_advances_with_ticks(self, machine):
        machine.run_ticks(10)
        assert machine.now() == pytest.approx(10 * machine.config.tick_s)

    def test_frequency_controls(self, machine):
        assert machine.num_frequency_grades() == 5
        machine.set_frequency_grade(0, 1)
        assert machine.frequency_grade(0) == 1
        assert machine.step_frequency(0, +1)
        assert machine.frequency_grade(0) == 2

    def test_pause_resume_by_pid(self, machine, tiny_bg):
        bg = machine.spawn(tiny_bg, core=1)
        machine.pause(bg.pid)
        assert machine.is_paused(bg.pid)
        machine.resume(bg.pid)
        assert not machine.is_paused(bg.pid)

    def test_core_of(self, machine, tiny_bg):
        bg = machine.spawn(tiny_bg, core=3)
        assert machine.core_of(bg.pid) == 3

    def test_llc_ways(self, machine):
        assert machine.llc_ways() == 20

    def test_partition_passthrough(self, machine):
        machine.set_fg_partition([0], 4)
        assert machine.cache.mask_ways(0) == 4
        machine.clear_partitions()
        assert machine.cache.mask_ways(0) == 20


class TestExecutionDynamics:
    def test_fg_completes_repeatedly(self, quiet_machine, tiny_fg):
        quiet_machine.spawn(tiny_fg, core=0)
        records = run_executions(quiet_machine, 3)
        assert [r.index for r in records] == [0, 1, 2]
        assert records[0].end_s <= records[1].end_s <= records[2].end_s

    def test_completion_time_interpolated_within_tick(self, quiet_machine, tiny_fg):
        quiet_machine.spawn(tiny_fg, core=0)
        records = run_executions(quiet_machine, 1)
        tick = quiet_machine.config.tick_s
        # The interpolated completion should not sit on a tick boundary in
        # general; at minimum it must be positive and before "now".
        assert 0 < records[0].end_s <= quiet_machine.now()

    def test_executions_back_to_back(self, quiet_machine, tiny_fg):
        quiet_machine.spawn(tiny_fg, core=0)
        records = run_executions(quiet_machine, 2)
        assert records[1].start_s == pytest.approx(records[0].end_s)

    def test_record_instructions_match_target(self, quiet_machine, tiny_fg):
        quiet_machine.spawn(tiny_fg, core=0)
        records = run_executions(quiet_machine, 1)
        assert records[0].instructions == pytest.approx(
            tiny_fg.total_instructions, rel=1e-9
        )

    def test_paused_process_makes_no_progress(self, quiet_machine, tiny_bg):
        bg = quiet_machine.spawn(tiny_bg, core=1)
        quiet_machine.pause(bg.pid)
        quiet_machine.run_ticks(50)
        assert bg.progress == 0.0
        assert quiet_machine.read_counters(1).instructions == 0.0

    def test_contention_slows_fg(self, tiny_fg, tiny_bg, quiet_config):
        alone = Machine(quiet_config)
        alone.spawn(tiny_fg, core=0)
        alone_records = run_executions(alone, 3)

        crowded = Machine(quiet_config)
        crowded.spawn(tiny_fg, core=0)
        for core in range(1, 6):
            crowded.spawn(tiny_bg, core=core)
        crowded_records = run_executions(crowded, 3)
        assert (
            crowded_records[0].duration_s > alone_records[0].duration_s
        )

    def test_throttling_bg_speeds_fg(self, tiny_fg, tiny_bg):
        # Small cache-inertia constant so occupancy effects settle within
        # the short test run.
        config = MachineConfig(
            seed=42,
            os_jitter_sigma=0.0,
            timer_jitter_prob=0.0,
            cache_inertia_tau_s=0.005,
        )

        def contended_mean(bg_grade):
            machine = Machine(config)
            machine.spawn(tiny_fg, core=0)
            for core in range(1, 6):
                machine.spawn(tiny_bg, core=core)
                machine.set_frequency_grade(core, bg_grade)
            records = run_executions(machine, 8)
            return sum(r.duration_s for r in records[2:]) / len(records[2:])

        assert contended_mean(0) < contended_mean(4)

    def test_counters_accumulate(self, quiet_machine, tiny_fg):
        quiet_machine.spawn(tiny_fg, core=0)
        quiet_machine.run_ticks(100)
        snap = quiet_machine.read_counters(0)
        assert snap.instructions > 0
        assert snap.cycles > 0
        assert snap.llc_misses > 0
        assert snap.llc_accesses >= snap.llc_misses

    def test_rho_positive_under_load(self, quiet_machine, tiny_bg):
        for core in range(6):
            quiet_machine.spawn(tiny_bg, core=core)
        quiet_machine.run_ticks(20)
        assert quiet_machine.rho > 0.0


class TestOverheadAndTimers:
    def test_charge_overhead_steals_progress(self, quiet_config, tiny_fg):
        reference = Machine(quiet_config)
        reference.spawn(tiny_fg, core=0)
        reference.run_ticks(10)

        taxed = Machine(quiet_config)
        taxed.spawn(tiny_fg, core=0)
        for _ in range(10):
            taxed.charge_overhead(0, 0.5e-3)  # half of every tick
            taxed.tick()
        ref_instr = reference.read_counters(0).instructions
        taxed_instr = taxed.read_counters(0).instructions
        assert taxed_instr == pytest.approx(ref_instr * 0.5, rel=0.05)

    def test_charge_overhead_validation(self, machine):
        with pytest.raises(SimulationError):
            machine.charge_overhead(0, -1.0)
        with pytest.raises(SimulationError):
            machine.charge_overhead(9, 1e-6)

    def test_scheduled_wakeup_fires(self, quiet_machine):
        fired = []
        quiet_machine.schedule_wakeup(5e-3, lambda: fired.append(quiet_machine.now()))
        quiet_machine.run_ticks(10)
        assert len(fired) == 1
        assert fired[0] == pytest.approx(5e-3)

    def test_periodic_wakeups(self, quiet_machine):
        fired = []

        def tick_cb():
            fired.append(quiet_machine.now())
            quiet_machine.schedule_wakeup(5e-3, tick_cb)

        quiet_machine.schedule_wakeup(5e-3, tick_cb)
        quiet_machine.run_ticks(51)
        assert len(fired) == 10


class TestDeterminism:
    def test_same_seed_same_trajectory(self, tiny_fg, tiny_bg):
        def run(seed):
            machine = Machine(MachineConfig(seed=seed))
            machine.spawn(tiny_fg, core=0)
            machine.spawn(tiny_bg, core=1)
            records = run_executions(machine, 3)
            return [r.duration_s for r in records]

        assert run(7) == run(7)

    def test_different_seed_different_trajectory(self, tiny_fg, tiny_bg):
        def run(seed):
            machine = Machine(MachineConfig(seed=seed))
            machine.spawn(tiny_fg, core=0)
            machine.spawn(tiny_bg, core=1)
            return [r.duration_s for r in run_executions(machine, 3)]

        assert run(7) != run(8)

    def test_run_seconds_matches_run_ticks(self, machine):
        machine.run_seconds(0.05)
        assert machine.clock.tick == 50

    def test_run_seconds_sub_tick_duration_runs_one_tick(self, machine):
        # Durations below tick_s/2 used to round down to zero ticks,
        # silently turning short sleeps into no-ops.
        machine.run_seconds(machine.config.tick_s / 10)
        assert machine.clock.tick == 1

    def test_run_seconds_zero_is_a_no_op(self, machine):
        machine.run_seconds(0.0)
        assert machine.clock.tick == 0

    def test_negative_runs_rejected(self, machine):
        with pytest.raises(SimulationError):
            machine.run_ticks(-1)
        with pytest.raises(SimulationError):
            machine.run_seconds(-1.0)
