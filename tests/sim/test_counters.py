"""Unit tests for repro.sim.counters."""

import pytest

from repro.errors import SimulationError
from repro.sim.counters import CounterBank, CounterSnapshot


class TestCounterBank:
    def test_starts_at_zero(self):
        bank = CounterBank(2)
        snap = bank.snapshot(0, 0.0)
        assert snap.instructions == 0
        assert snap.llc_misses == 0

    def test_record_accumulates(self):
        bank = CounterBank(2)
        bank.record(0, instructions=10, cycles=20, llc_accesses=5, llc_misses=2)
        bank.record(0, instructions=1, cycles=2, llc_accesses=1, llc_misses=1)
        snap = bank.snapshot(0, 1.0)
        assert snap.instructions == 11
        assert snap.cycles == 22
        assert snap.llc_accesses == 6
        assert snap.llc_misses == 3

    def test_cores_independent(self):
        bank = CounterBank(2)
        bank.record(0, 10, 10, 10, 10)
        assert bank.snapshot(1, 0.0).instructions == 0

    def test_out_of_range_core_rejected(self):
        bank = CounterBank(2)
        with pytest.raises(SimulationError):
            bank.record(2, 1, 1, 1, 1)
        with pytest.raises(SimulationError):
            bank.snapshot(-1, 0.0)

    def test_zero_core_bank_rejected(self):
        with pytest.raises(SimulationError):
            CounterBank(0)

    def test_totals_over_cores(self):
        bank = CounterBank(3)
        bank.record(0, 5, 0, 0, 1)
        bank.record(2, 7, 0, 0, 3)
        assert bank.total_instructions([0, 2]) == 12
        assert bank.total_llc_misses([0, 1, 2]) == 4


class TestCounterSnapshot:
    def test_delta(self):
        early = CounterSnapshot(1.0, 10, 20, 5, 2)
        late = CounterSnapshot(3.0, 30, 60, 15, 8)
        delta = late.delta(early)
        assert delta.time_s == 2.0
        assert delta.instructions == 20
        assert delta.cycles == 40
        assert delta.llc_accesses == 10
        assert delta.llc_misses == 6

    def test_delta_rejects_newer_baseline(self):
        early = CounterSnapshot(1.0, 0, 0, 0, 0)
        late = CounterSnapshot(3.0, 0, 0, 0, 0)
        with pytest.raises(SimulationError):
            early.delta(late)

    def test_mpki(self):
        snap = CounterSnapshot(1.0, instructions=2000, cycles=0,
                               llc_accesses=0, llc_misses=4)
        assert snap.mpki == pytest.approx(2.0)

    def test_mpki_zero_instructions(self):
        snap = CounterSnapshot(1.0, 0, 0, 0, 5)
        assert snap.mpki == 0.0

    def test_snapshot_is_immutable(self):
        snap = CounterSnapshot(1.0, 1, 1, 1, 1)
        with pytest.raises(AttributeError):
            snap.instructions = 2
