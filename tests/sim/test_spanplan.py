"""Span-compiled kernel path (:mod:`repro.sim.spanplan`).

The compiled path is a pure performance layer: every test here pins
either an observability contract (counters, plan reuse, kernel cache)
or bit-exactness against the scalar reference under conditions that
specifically stress the compiled kernels — stolen overhead time,
partition-driven fallbacks, idle-core occupancy drift, and the exact
float memoization.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import spanplan
from repro.sim.batch import BACKEND_BATCH, BACKEND_SCALAR
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from tests.conftest import make_bg, make_fg


def _machine(backend, *, sigma=0.015, tau=0.15, seed=9, cores_used=None):
    config = MachineConfig(
        seed=seed, os_jitter_sigma=sigma, cache_inertia_tau_s=tau,
        timer_jitter_prob=0.0,
    )
    machine = Machine(config, backend=backend)
    used = cores_used or range(config.num_cores)
    for core in used:
        if core == 0:
            machine.spawn(make_fg(input_noise=0.05), core=0, nice=-5)
        else:
            machine.spawn(make_bg(heavy=core % 2 == 0), core=core, nice=5)
    machine.settle_cache()
    return machine


def _counters(machine):
    return [
        machine.read_counters(core)
        for core in range(machine.config.num_cores)
    ]


def _assert_identical(scalar, batch):
    assert scalar.clock.tick == batch.clock.tick
    assert scalar.rho == batch.rho
    for a, b in zip(_counters(scalar), _counters(batch)):
        assert (a.instructions, a.cycles, a.llc_accesses, a.llc_misses) == (
            b.instructions, b.cycles, b.llc_accesses, b.llc_misses
        )
    for core in range(scalar.config.num_cores):
        assert scalar.cache.effective_ways(core) == batch.cache.effective_ways(
            core
        )


class TestStatsSurface:
    def test_batch_machine_reports_fast_path_counters(self):
        machine = _machine(BACKEND_BATCH)
        machine.run_ticks(2_000)
        stats = machine.backend_stats()
        assert stats is not None
        assert stats["spans"] > 0
        assert stats["compiled_spans"] > 0
        assert stats["compiled_ticks"] > 0
        assert stats["plan_builds"] >= 1
        assert set(stats) == set(spanplan.SpanStats().as_dict())

    def test_scalar_machine_reports_none(self):
        machine = _machine(BACKEND_SCALAR)
        machine.run_ticks(100)
        assert machine.backend_stats() is None

    def test_plan_reuse_dominates_chunked_driving(self):
        machine = _machine(BACKEND_BATCH, sigma=0.0)
        for _ in range(50):
            machine.run_ticks(40)
        stats = machine.backend_stats()
        assert stats["plan_reuses"] > stats["plan_builds"]

    def test_kernel_code_cache_shared_across_machines(self):
        first = _machine(BACKEND_BATCH, seed=1)
        first.run_ticks(200)
        assert len(spanplan._KERNEL_CODE_CACHE) >= 1
        cached = len(spanplan._KERNEL_CODE_CACHE)
        # An identically-shaped machine reuses the cached code objects
        # (the shape is structural, so even the seed does not matter).
        second = _machine(BACKEND_BATCH, seed=1)
        second.run_ticks(200)
        assert second.backend_stats()["kernels_compiled"] == 0
        assert len(spanplan._KERNEL_CODE_CACHE) == cached


class TestMemoization:
    def test_sigma0_spans_hit_the_fixed_point_memo(self):
        # A lone FG with snap-to-target occupancy revisits the same
        # exact (rho, mpki) points across spans — the memo's sweet spot.
        machine = _machine(
            BACKEND_BATCH, sigma=0.0, tau=0.0, cores_used=(0,)
        )
        for _ in range(40):
            machine.run_ticks(100)
        stats = machine.backend_stats()
        assert stats["memo_misses"] > 0
        assert stats["memo_hits"] > 0
        assert stats["stationary_ticks"] > 0

    def test_jittered_spans_bypass_the_memo(self):
        machine = _machine(BACKEND_BATCH, sigma=0.015)
        machine.run_ticks(2_000)
        stats = machine.backend_stats()
        assert stats["memo_hits"] == 0
        assert stats["memo_misses"] == 0

    def test_evaluate_memo_counters(self):
        from repro.sim.memory import MemorySystem
        from repro.sim.perf import (
            PerfInput,
            clear_evaluate_memo,
            evaluate_memo_stats,
            solve_tick,
        )

        clear_evaluate_memo()
        memory = MemorySystem(MachineConfig())
        inputs = [PerfInput(2.0, 0.8, 3.0, 1.0)]
        first, _ = solve_tick(inputs, memory)
        before = evaluate_memo_stats()
        again, _ = solve_tick(inputs, memory)
        after = evaluate_memo_stats()
        assert after["hits"] > before["hits"]
        assert first[0] == again[0]
        clear_evaluate_memo()
        assert evaluate_memo_stats() == {"hits": 0, "misses": 0, "size": 0}


class TestEquivalenceUnderStress:
    def test_stolen_overhead_time_bit_identical(self):
        scalar = _machine(BACKEND_SCALAR)
        batch = _machine(BACKEND_BATCH)
        for step in (3, 1, 7, 100, 900):
            for machine in (scalar, batch):
                machine.charge_overhead(0, 2e-5)
                machine.charge_overhead(2, 5e-5)
                machine.run_ticks(step)
        _assert_identical(scalar, batch)
        stats = batch.backend_stats()
        assert stats["generic_spans"] == 0  # stolen ticks stay compiled

    def test_idle_core_occupancy_drift_matches(self):
        # Only 3 of the cores run; with cache inertia the idle cores'
        # occupancy decays asymptotically and the stationary fast path
        # must not enter while it still moves (regression guard).
        scalar = _machine(BACKEND_SCALAR, sigma=0.0, cores_used=(0, 2, 4))
        batch = _machine(BACKEND_BATCH, sigma=0.0, cores_used=(0, 2, 4))
        scalar.run_ticks(30_000)
        batch.run_ticks(30_000)
        _assert_identical(scalar, batch)

    def test_overlapping_partitions_fall_back_generically(self):
        def shape(machine):
            machine.cache.set_mask(0, 0x0FF0)
            machine.cache.set_mask(1, 0x00FF)

        scalar = _machine(BACKEND_SCALAR)
        batch = _machine(BACKEND_BATCH)
        shape(scalar)
        shape(batch)
        scalar.run_ticks(3_000)
        batch.run_ticks(3_000)
        _assert_identical(scalar, batch)
        assert batch.backend_stats()["generic_spans"] > 0

    def test_non_standard_rng_falls_back_generically(self):
        class LoudRandom(random.Random):
            pass

        def swap(machine):
            machine._jitter_rngs[0] = LoudRandom(123)

        scalar = _machine(BACKEND_SCALAR)
        batch = _machine(BACKEND_BATCH)
        swap(scalar)
        swap(batch)
        scalar.run_ticks(2_000)
        batch.run_ticks(2_000)
        _assert_identical(scalar, batch)
        stats = batch.backend_stats()
        assert stats["compiled_spans"] == 0
        assert stats["generic_spans"] > 0

    def test_span_compile_disabled_still_identical(self, monkeypatch):
        monkeypatch.setenv(spanplan.ENV_SPAN_COMPILE, "0")
        disabled = _machine(BACKEND_BATCH)
        disabled.run_ticks(4_000)
        assert disabled.backend_stats()["compiled_spans"] == 0
        monkeypatch.delenv(spanplan.ENV_SPAN_COMPILE)
        compiled = _machine(BACKEND_BATCH)
        compiled.run_ticks(4_000)
        assert compiled.backend_stats()["compiled_spans"] > 0
        _assert_identical(disabled, compiled)


class TestPropertyEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        sigma=st.sampled_from([0.0, 0.01, 0.02]),
        tau=st.sampled_from([0.0, 0.15]),
        seed=st.integers(min_value=0, max_value=2**16),
        chunks=st.lists(
            st.integers(min_value=1, max_value=700), min_size=1, max_size=5
        ),
        overhead=st.booleans(),
    )
    def test_scalar_batch_bit_identical(
        self, sigma, tau, seed, chunks, overhead
    ):
        scalar = _machine(BACKEND_SCALAR, sigma=sigma, tau=tau, seed=seed)
        batch = _machine(BACKEND_BATCH, sigma=sigma, tau=tau, seed=seed)
        for index, chunk in enumerate(chunks):
            for machine in (scalar, batch):
                if overhead and index % 2 == 0:
                    machine.charge_overhead(0, 1.5e-5)
                machine.run_ticks(chunk)
        _assert_identical(scalar, batch)
