"""Exact-equality regression: the machine's inlined tick kernel versus
the reference model in :mod:`repro.sim.perf`.

The inline loop in :meth:`Machine.tick` duplicates ``solve_tick`` for
speed; both share ``FIXED_POINT_ITERATIONS`` and ``MPKI_SCALE`` and
evaluate in the same floating-point order, so with the final
re-evaluation disabled (``refine_final=False``) the two must agree to
the bit — not just approximately.  Any optimization that reorders a
float expression shows up here as a hard failure.
"""

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.perf import (
    FIXED_POINT_ITERATIONS,
    MPKI_SCALE,
    PerfInput,
    solve_tick,
)
from tests.conftest import make_bg, make_fg


def _quiet_config(**overrides):
    base = dict(
        seed=7, os_jitter_sigma=0.0, timer_jitter_prob=0.0
    )
    base.update(overrides)
    return MachineConfig(**base)


def _reference_inputs(machine):
    """PerfInputs for every running process, from pre-tick state.

    Pending DVFS changes apply at the head of ``Machine.tick`` before
    the model evaluates, so due changes are applied here first (the
    governor's tick is idempotent for a given clock tick).
    """
    machine.governor.tick(machine.clock.tick)
    inputs = []
    cores = []
    for core in range(machine.config.num_cores):
        proc = machine.process_on_core(core)
        if proc is None or not proc.is_running:
            continue
        phase = proc.current_phase()
        inputs.append(
            PerfInput(
                freq_ghz=machine.governor.frequency_ghz(core),
                base_cpi=phase.base_cpi,
                mpki=phase.mpki(machine.cache.effective_ways(core)),
                mem_sensitivity=phase.mem_sensitivity,
                jitter=1.0,
            )
        )
        cores.append(core)
    return inputs, cores


class TestBitIdenticalFixedPoint:
    def test_rho_and_counters_match_reference_every_tick(self):
        """Tick-by-tick, rho and all counter deltas equal the reference."""
        machine = Machine(_quiet_config())
        machine.spawn(make_fg(), core=0)
        machine.spawn(make_bg(), core=1)
        machine.spawn(make_bg(name="tiny-bg-2", heavy=False), core=2)
        machine.settle_cache()
        dt = machine.config.tick_s
        # Accumulate expectations exactly as the counter bank does, so
        # cumulative totals stay comparable with == (floating-point
        # addition is not associative; deltas would drift).
        instr = [0.0] * machine.config.num_cores
        misses = [0.0] * machine.config.num_cores
        for _ in range(200):
            inputs, cores = _reference_inputs(machine)
            outputs, rho = solve_tick(
                inputs,
                machine.memory,
                rho_hint=machine.rho,
                iterations=FIXED_POINT_ITERATIONS,
                refine_final=False,
            )
            machine.tick()
            assert machine.rho == rho  # exact
            for out, core in zip(outputs, cores):
                instr[core] += out.ips * dt
                misses[core] += out.miss_rate * dt
                snap = machine.read_counters(core)
                assert snap.instructions == instr[core]
                assert snap.llc_misses == misses[core]

    def test_matches_under_throttling_and_partitioning(self):
        """Equality holds with DVFS grades and an FG cache partition."""
        machine = Machine(_quiet_config())
        machine.spawn(make_fg(), core=0)
        machine.spawn(make_bg(), core=1)
        machine.set_fg_partition([0], 6)
        machine.set_frequency_grade(1, 0)
        machine.settle_cache()
        for _ in range(machine.config.freq_transition_ticks + 50):
            inputs, _ = _reference_inputs(machine)
            _, rho = solve_tick(
                inputs,
                machine.memory,
                rho_hint=machine.rho,
                iterations=FIXED_POINT_ITERATIONS,
                refine_final=False,
            )
            machine.tick()
            assert machine.rho == rho

    def test_shared_constants(self):
        """The constants the two implementations share are the paper's."""
        assert FIXED_POINT_ITERATIONS == 3
        assert MPKI_SCALE == 1e-3
