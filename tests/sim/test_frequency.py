"""Unit tests for repro.sim.frequency."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.config import MachineConfig
from repro.sim.frequency import FrequencyGovernor


@pytest.fixture
def governor():
    return FrequencyGovernor(MachineConfig(seed=1))


class TestInitialState:
    def test_all_cores_start_at_max(self, governor):
        for core in range(6):
            assert governor.grade(core) == 4
            assert governor.frequency_ghz(core) == 2.0

    def test_is_max_initially(self, governor):
        assert governor.is_max(0)
        assert not governor.is_min(0)


class TestSetGrade:
    def test_change_applies_after_transition(self, governor):
        governor.set_grade(0, 0, now_tick=0)
        assert governor.grade(0) == 4  # not yet effective
        governor.tick(1)
        assert governor.grade(0) == 0

    def test_pending_grade_reflects_request_immediately(self, governor):
        governor.set_grade(0, 2, now_tick=0)
        assert governor.pending_grade(0) == 2

    def test_out_of_range_grade_rejected(self, governor):
        with pytest.raises(ConfigurationError):
            governor.set_grade(0, 5, now_tick=0)
        with pytest.raises(ConfigurationError):
            governor.set_grade(0, -1, now_tick=0)

    def test_duplicate_request_is_noop(self, governor):
        governor.set_grade(0, 2, now_tick=0)
        governor.set_grade(0, 2, now_tick=0)
        governor.tick(1)
        assert governor.grade(0) == 2

    def test_set_frequency_by_value(self, governor):
        governor.set_frequency(1, 1.4, now_tick=0)
        governor.tick(1)
        assert governor.frequency_ghz(1) == 1.4

    def test_set_frequency_invalid_value_rejected(self, governor):
        with pytest.raises(ConfigurationError):
            governor.set_frequency(1, 1.5, now_tick=0)

    def test_cores_independent(self, governor):
        governor.set_grade(0, 0, now_tick=0)
        governor.tick(1)
        assert governor.grade(1) == 4


class TestStep:
    def test_step_down(self, governor):
        assert governor.step(0, -1, now_tick=0)
        governor.tick(1)
        assert governor.grade(0) == 3

    def test_step_up_at_max_returns_false(self, governor):
        assert not governor.step(0, +1, now_tick=0)

    def test_step_down_at_min_returns_false(self, governor):
        governor.set_grade(0, 0, now_tick=0)
        governor.tick(1)
        assert not governor.step(0, -1, now_tick=1)

    def test_step_invalid_direction_rejected(self, governor):
        with pytest.raises(SimulationError):
            governor.step(0, 2, now_tick=0)

    def test_steps_accumulate_on_pending_state(self, governor):
        # Two down-steps in the same tick move two grades.
        governor.step(0, -1, now_tick=0)
        governor.step(0, -1, now_tick=0)
        governor.tick(1)
        assert governor.grade(0) == 2

    def test_is_min_tracks_pending(self, governor):
        governor.set_grade(0, 0, now_tick=0)
        assert governor.is_min(0)  # pending, even before effective


class TestTick:
    def test_future_transition_not_applied_early(self, governor):
        governor.set_grade(0, 1, now_tick=5)
        governor.tick(5)
        assert governor.grade(0) == 4
        governor.tick(6)
        assert governor.grade(0) == 1

    def test_out_of_range_core_rejected(self, governor):
        with pytest.raises(SimulationError):
            governor.grade(6)


class TestHotPathAccessors:
    def test_next_transition_tick_none_when_idle(self, governor):
        assert governor.next_transition_tick() is None

    def test_next_transition_tick_earliest(self, governor):
        governor.set_grade(0, 0, now_tick=5)
        governor.set_grade(1, 1, now_tick=2)
        assert governor.next_transition_tick() == 3  # 2 + 1 transition tick

    def test_next_transition_clears_after_apply(self, governor):
        governor.set_grade(0, 0, now_tick=0)
        governor.tick(governor.next_transition_tick())
        assert governor.next_transition_tick() is None

    def test_pending_transitions_is_stable(self, governor):
        pending = governor.pending_transitions()
        assert pending == []
        governor.set_grade(0, 0, now_tick=0)
        governor.set_grade(1, 2, now_tick=0)
        assert len(pending) == 2  # same list object, mutated in place
        governor.tick(1)
        assert pending == []
        assert governor.pending_transitions() is pending

    def test_in_place_filter_keeps_future_transitions(self, governor):
        pending = governor.pending_transitions()
        governor.set_grade(0, 0, now_tick=0)   # applies at tick 1
        governor.set_grade(1, 2, now_tick=4)   # applies at tick 5
        governor.tick(1)
        assert pending == [(5, 1)]
        assert governor.grade(0) == 0
        assert governor.grade(1) == 4  # still pending
