"""Exact solver tabulation: bit-identity against the direct model.

The contended fast path replaces direct ``MemorySystem.penalty_ns`` /
``_evaluate`` calls with exact-key tables (:class:`MissCurveTable`, the
module-level penalty/output memos in :mod:`repro.sim.perf`) and an
early exit in the rho fixed point.  None of that is an approximation:
every lookup must return the bit-identical float the direct computation
produces, with tabulation on *or* off (``REPRO_MISSCURVE_TABLE=0``),
and the clone-lane dedup kernels in the batch backend must leave the
machine bit-equal to the scalar reference.  Hypothesis drives the state
axes (partition ways, occupancy, frequency grade, rho) through the
reachable discrete-ish ranges.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.batch import BACKEND_BATCH, BACKEND_SCALAR
from repro.sim.config import ENV_MISSCURVE_TABLE, MachineConfig
from repro.sim.machine import Machine
from repro.sim.memory import MemorySystem
from repro.sim.perf import (
    FIXED_POINT_ITERATIONS,
    MPKI_SCALE,
    MissCurveTable,
    PerfInput,
    clear_solver_tables,
    solve_tick,
    solver_table_stats,
)
from repro.sim.perf import _evaluate  # the direct reference evaluation
from tests.conftest import make_bg, make_fg

QUIET = dict(os_jitter_sigma=0.0, timer_jitter_prob=0.0)

#: Reachable axes: effective ways are inertia-filtered floats in
#: [0, cache_ways]; frequencies come from the small DVFS grade set;
#: rho is clamped to the cap by construction.
ways_st = st.floats(
    min_value=0.0, max_value=16.0, allow_nan=False, allow_infinity=False
)
freq_st = st.sampled_from([1.2, 1.6, 2.0, 2.4, 2.8, 3.2])
rho_st = st.floats(
    min_value=0.0, max_value=0.95, allow_nan=False, allow_infinity=False
)


def _memory() -> MemorySystem:
    return MemorySystem(MachineConfig())


def _table(memory: MemorySystem) -> MissCurveTable:
    return MissCurveTable(
        memory,
        base_cpi=0.8,
        mem_sensitivity=1.0,
        mpki_floor=0.3,
        mpki_delta=1.7,
        ways_scale=4.0,
    )


class TestMissCurveTableBitIdentity:
    """Tabulated PerfOutput == direct penalty_ns/_evaluate, bit for bit."""

    @settings(max_examples=200, deadline=None)
    @given(ways=ways_st, freq=freq_st, rho=rho_st)
    def test_output_matches_direct_evaluation(self, ways, freq, rho):
        memory = _memory()
        table = _table(memory)
        direct = _evaluate(
            PerfInput(
                freq_ghz=freq,
                base_cpi=0.8,
                mpki=0.3 + 1.7 * math.exp(-ways / 4.0),
                mem_sensitivity=1.0,
            ),
            memory.penalty_ns(rho),
        )
        with pytest.MonkeyPatch.context() as monkeypatch:
            monkeypatch.setenv(ENV_MISSCURVE_TABLE, "1")
            tabulated = table.output(ways, freq, rho)
            assert tabulated == direct
            # A repeat lookup is a hit and returns the identical output.
            again = table.output(ways, freq, rho)
            assert again is tabulated or again == tabulated
            assert table.hits >= 1

    @settings(max_examples=100, deadline=None)
    @given(ways=ways_st)
    def test_mpki_matches_direct_curve(self, ways):
        table = _table(_memory())
        assert table.mpki(ways) == 0.3 + 1.7 * math.exp(-ways / 4.0)
        assert table.mpki(ways) == table.mpki(ways)

    def test_kill_switch_stores_nothing(self, monkeypatch):
        monkeypatch.setenv(ENV_MISSCURVE_TABLE, "0")
        memory = _memory()
        table = _table(memory)
        first = table.output(8.0, 2.0, 0.5)
        second = table.output(8.0, 2.0, 0.5)
        assert first == second
        assert table.hits == 0 and table.builds == 2


class TestSolveTickTabulation:
    """solve_tick: tabulation and early exit are identities."""

    def _inputs(self, mpkis):
        return [
            PerfInput(
                freq_ghz=2.0 + 0.4 * i,
                base_cpi=0.6 + 0.1 * i,
                mpki=mpki,
                mem_sensitivity=1.0,
            )
            for i, mpki in enumerate(mpkis)
        ]

    @settings(max_examples=60, deadline=None)
    @given(
        mpkis=st.lists(
            st.floats(min_value=0.05, max_value=8.0, allow_nan=False),
            min_size=1, max_size=6,
        ),
        hint=rho_st,
    )
    def test_knob_off_is_bitwise_identical(self, mpkis, hint):
        memory = _memory()
        inputs = self._inputs(mpkis)
        clear_solver_tables()
        with pytest.MonkeyPatch.context() as monkeypatch:
            monkeypatch.setenv(ENV_MISSCURVE_TABLE, "1")
            on = solve_tick(inputs, memory, rho_hint=hint)
            monkeypatch.setenv(ENV_MISSCURVE_TABLE, "0")
            off = solve_tick(inputs, memory, rho_hint=hint)
        assert on == off

    @settings(max_examples=60, deadline=None)
    @given(
        mpkis=st.lists(
            st.floats(min_value=0.05, max_value=8.0, allow_nan=False),
            min_size=1, max_size=4,
        ),
        hint=rho_st,
    )
    def test_early_exit_matches_manual_reference_loop(self, mpkis, hint):
        # The unoptimized fixed point, written out longhand with the
        # direct evaluation and no convergence exit.
        memory = _memory()
        inputs = self._inputs(mpkis)
        rho = max(0.0, hint)
        for _ in range(FIXED_POINT_ITERATIONS):
            penalty = memory.penalty_ns(rho)
            outputs = [_evaluate(entry, penalty) for entry in inputs]
            rho = memory.utilization_for(
                sum(out.miss_rate for out in outputs)
            )
        penalty = memory.penalty_ns(rho)
        outputs = [_evaluate(entry, penalty) for entry in inputs]
        clear_solver_tables()
        got_outputs, got_rho = solve_tick(inputs, memory, rho_hint=hint)
        assert got_rho == rho
        assert got_outputs == outputs

    def test_table_stats_count_hits_and_builds(self, monkeypatch):
        monkeypatch.setenv(ENV_MISSCURVE_TABLE, "1")
        clear_solver_tables()
        memory = _memory()
        inputs = self._inputs([1.0, 3.0])
        solve_tick(inputs, memory, rho_hint=0.0)
        warm = solver_table_stats()
        assert warm["penalty_builds"] > 0
        assert warm["output_builds"] > 0
        # Re-solving the identical tick replays the converged states.
        solve_tick(inputs, memory, rho_hint=0.0)
        again = solver_table_stats()
        assert again["penalty_hits"] > warm["penalty_hits"]
        assert again["output_hits"] > warm["output_hits"]
        clear_solver_tables()
        assert solver_table_stats()["penalty_entries"] == 0


class TestContendedDedupIntegration:
    """Clone-lane dedup in the batch backend: exact, and observable."""

    def _machine(self, backend):
        machine = Machine(MachineConfig(seed=7, **QUIET), backend=backend)
        machine.spawn(make_fg(), core=0, nice=-5)
        for core in range(1, machine.config.num_cores):
            machine.spawn(make_bg(heavy=True), core=core, nice=5)
        machine.settle_cache()
        return machine

    def _assert_equal(self, a, b):
        assert a.clock.tick == b.clock.tick
        assert a.rho == b.rho
        for core in range(a.config.num_cores):
            ca, cb = a.read_counters(core), b.read_counters(core)
            for field in (
                "instructions", "cycles", "llc_accesses", "llc_misses"
            ):
                assert getattr(ca, field) == getattr(cb, field), (
                    core, field
                )
            assert a.cache.effective_ways(core) == \
                b.cache.effective_ways(core)

    def test_dedup_kernels_match_scalar_and_count(self, monkeypatch):
        monkeypatch.setenv(ENV_MISSCURVE_TABLE, "1")
        scalar = self._machine(BACKEND_SCALAR)
        batch = self._machine(BACKEND_BATCH)
        scalar.run_ticks(6_000)
        batch.run_ticks(6_000)
        self._assert_equal(scalar, batch)
        stats = batch.backend_stats()
        # Four identical BG clone lanes solve once per class: the
        # solver counters must show the dedup actually engaged.
        assert stats["table_builds"] > 0
        assert stats["table_hits"] > 0
        assert stats["rho_iterations"] > 0

    def test_dedup_disabled_by_kill_switch_still_exact(self, monkeypatch):
        monkeypatch.setenv(ENV_MISSCURVE_TABLE, "0")
        scalar = self._machine(BACKEND_SCALAR)
        batch = self._machine(BACKEND_BATCH)
        scalar.run_ticks(6_000)
        batch.run_ticks(6_000)
        self._assert_equal(scalar, batch)
        assert batch.backend_stats()["table_hits"] == 0

    def test_warm_start_counters_in_sparse_regime(self):
        machine = Machine(
            MachineConfig(seed=3, **QUIET), backend=BACKEND_BATCH
        )
        machine.spawn(make_fg(), core=0, nice=-5)
        machine.settle_cache()
        machine.run_ticks(6_000)
        stats = machine.backend_stats()
        # Stationary spans reuse the converged rho: warm hits dominate.
        assert stats["rho_warm_hits"] > 0
        assert stats["rho_warm_hits"] + (
            stats["rho_iterations"] // FIXED_POINT_ITERATIONS
        ) > 0


def test_mpki_scale_is_the_canonical_constant():
    # The tables key on exact floats; the shared constant keeps every
    # path rounding identically.
    assert MPKI_SCALE == 1e-3
