"""Scalar/batch backend equivalence.

The batch engine (:mod:`repro.sim.batch`) must be indistinguishable
from the scalar reference kernel: bit-identical counters, execution
records, cache occupancy, and policy decisions when OS-jitter sigma is
0, and within rel 1e-9 with jitter on (in practice the RNG streams
align draw-for-draw, so even jittered runs match exactly; the tests
assert the guaranteed tolerance).
"""

from __future__ import annotations

import pytest

from repro.core.policies import DIRIGENT
from repro.errors import ConfigurationError
from repro.experiments.harness import clear_caches, run_policy
from repro.experiments.mixes import mix_by_name
from repro.sim.batch import (
    BACKEND_BATCH,
    BACKEND_SCALAR,
    DEFAULT_BACKEND,
    ENV_BACKEND,
    resolve_backend,
)
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from tests.conftest import make_bg, make_fg


def _records_of(machine):
    records = []
    machine.add_completion_listener(
        lambda proc, record: records.append(
            (
                proc.pid,
                record.index,
                record.start_s,
                record.end_s,
                record.instructions,
                record.llc_misses,
            )
        )
    )
    return records


def _pair(config, populate):
    """Two identical machines, one per backend, plus their record logs."""
    machines = []
    logs = []
    for backend in (BACKEND_SCALAR, BACKEND_BATCH):
        machine = Machine(config, backend=backend)
        logs.append(_records_of(machine))
        populate(machine)
        machines.append(machine)
    return machines, logs


def _spawn_mixed(machine):
    machine.spawn(make_fg(input_noise=0.05), core=0, nice=-5)
    for core in range(1, machine.config.num_cores):
        machine.spawn(make_bg(heavy=core % 2 == 0), core=core, nice=5)


def _assert_counters_equal(scalar, batch, rel=0.0):
    for core in range(scalar.config.num_cores):
        a = scalar.read_counters(core)
        b = batch.read_counters(core)
        for field in ("instructions", "cycles", "llc_accesses", "llc_misses"):
            if rel == 0.0:
                assert getattr(a, field) == getattr(b, field)
            else:
                assert getattr(a, field) == pytest.approx(
                    getattr(b, field), rel=rel
                )


class TestResolveBackend:
    def test_default_is_batch(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend() == DEFAULT_BACKEND == BACKEND_BATCH

    def test_environment_selects(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "scalar")
        assert resolve_backend() == BACKEND_SCALAR

    def test_explicit_override_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "scalar")
        assert resolve_backend("batch") == BACKEND_BATCH

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("vectorized")

    def test_machine_records_backend(self):
        assert Machine(MachineConfig(), backend="scalar").backend == "scalar"
        assert Machine(MachineConfig(), backend="batch").backend == "batch"


class TestNoiseFreeBitEquivalence:
    """sigma = 0: every observable must match bit-for-bit."""

    def test_single_fg_counters_and_records(self):
        config = MachineConfig(seed=42, os_jitter_sigma=0.0)
        (scalar, batch), (log_s, log_b) = _pair(
            config, lambda m: m.spawn(make_fg(input_noise=0.05), core=0)
        )
        scalar.run_ticks(20_000)
        batch.run_ticks(20_000)
        assert scalar.clock.tick == batch.clock.tick == 20_000
        _assert_counters_equal(scalar, batch)
        assert log_s and log_s == log_b
        assert scalar.rho == batch.rho

    def test_contended_mix_counters_records_occupancy(self):
        config = MachineConfig(seed=7, os_jitter_sigma=0.0)
        (scalar, batch), (log_s, log_b) = _pair(config, _spawn_mixed)
        scalar.run_ticks(20_000)
        batch.run_ticks(20_000)
        _assert_counters_equal(scalar, batch)
        assert log_s and log_s == log_b
        for core in range(config.num_cores):
            assert scalar.cache.effective_ways(core) == pytest.approx(
                batch.cache.effective_ways(core), rel=0, abs=0
            )

    def test_chunked_driving_matches_one_shot(self):
        config = MachineConfig(seed=11, os_jitter_sigma=0.0)
        (one_shot, chunked), (log_a, log_b) = _pair(config, _spawn_mixed)
        one_shot.backend = "batch"  # both batch; drive patterns differ
        one_shot.run_ticks(15_000)
        remaining = 15_000
        for chunk in (1, 7, 93, 2048):
            chunked.run_ticks(chunk)
            remaining -= chunk
        chunked.run_ticks(remaining)
        assert one_shot.clock.tick == chunked.clock.tick
        _assert_counters_equal(one_shot, chunked)
        assert log_a == log_b


class TestJitteredEquivalence:
    """sigma > 0: rel <= 1e-9 guaranteed (streams align, so exact)."""

    def test_contended_mix_with_jitter(self):
        config = MachineConfig(seed=3)  # default sigma = 0.015
        (scalar, batch), (log_s, log_b) = _pair(config, _spawn_mixed)
        scalar.run_ticks(20_000)
        batch.run_ticks(20_000)
        _assert_counters_equal(scalar, batch, rel=1e-9)
        assert len(log_s) == len(log_b)
        for rec_s, rec_b in zip(log_s, log_b):
            assert rec_s[:2] == rec_b[:2]  # pid, index
            for a, b in zip(rec_s[2:], rec_b[2:]):
                assert a == pytest.approx(b, rel=1e-9)


class TestEventEquivalence:
    """Timers, DVFS transitions, pauses, and partitions across backends."""

    def _run_with_events(self, backend):
        config = MachineConfig(seed=13, timer_jitter_prob=0.5)
        machine = Machine(config, backend=backend)
        log = _records_of(machine)
        _spawn_mixed(machine)
        trace = []

        def periodic():
            tick = machine.clock.tick
            trace.append((tick, machine.read_counters(0).instructions))
            # Exercise every event source the horizon must respect.
            bg_proc = machine.process_on_core(1)
            if machine.is_paused(bg_proc.pid):
                machine.resume(bg_proc.pid)
            else:
                machine.pause(bg_proc.pid)
            machine.step_frequency(2, -1 if tick % 20 else 1)
            if tick % 1000 < 500:
                machine.set_fg_partition([0], 12)
            else:
                machine.clear_partitions()
            machine.charge_overhead(0, 2e-4)
            machine.schedule_wakeup(7.3e-3, periodic)

        machine.schedule_wakeup(7.3e-3, periodic)
        machine.run_ticks(8_000)
        return machine, log, trace

    def test_event_stream_identical(self):
        scalar, log_s, trace_s = self._run_with_events(BACKEND_SCALAR)
        batch, log_b, trace_b = self._run_with_events(BACKEND_BATCH)
        assert trace_s == trace_b  # same fire ticks, same observed counters
        assert log_s == log_b
        _assert_counters_equal(scalar, batch)
        for core in range(scalar.config.num_cores):
            assert scalar.governor.grade(core) == batch.governor.grade(core)

    def test_energy_model_identical(self):
        from repro.sim.energy import EnergyModel

        totals = []
        for backend in (BACKEND_SCALAR, BACKEND_BATCH):
            config = MachineConfig(seed=5, os_jitter_sigma=0.0)
            machine = Machine(config, backend=backend)
            machine.attach_energy_model(EnergyModel(config.num_cores))
            _spawn_mixed(machine)
            machine.run_ticks(10_000)
            totals.append(
                (machine.energy.system_joules, machine.energy.elapsed_s)
            )
        assert totals[0] == totals[1]


class TestPolicyDecisionEquivalence:
    """The full Dirigent stack must decide identically on both backends."""

    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    def test_dirigent_run_identical(self, monkeypatch):
        results = {}
        for backend in (BACKEND_SCALAR, BACKEND_BATCH):
            monkeypatch.setenv(ENV_BACKEND, backend)
            clear_caches()
            results[backend] = run_policy(
                mix_by_name("ferret rs"), DIRIGENT, executions=4, warmup=1
            )
        scalar, batch = results[BACKEND_SCALAR], results[BACKEND_BATCH]
        assert scalar.durations_s == batch.durations_s
        assert scalar.deadlines_s == batch.deadlines_s
        assert scalar.bg_grade_histogram == batch.bg_grade_histogram
        assert scalar.partition_history == batch.partition_history
        assert scalar.fg_instr == batch.fg_instr
        assert scalar.bg_instr == batch.bg_instr
        assert scalar.elapsed_s == batch.elapsed_s


class TestFaultedEquivalence:
    """Fault injection is seeded at the OSAL layer, above the backend
    split, so a faulted run must stay bit-identical across backends:
    same injected event stream, same degradation decisions, same
    measured durations."""

    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        clear_caches()
        yield
        clear_caches()

    @pytest.mark.parametrize("scenario_name",
                             ["sensor-degraded", "full-chaos"])
    def test_faulted_dirigent_run_identical(
        self, monkeypatch, scenario_name
    ):
        from repro.faults import scenario

        results = {}
        for backend in (BACKEND_SCALAR, BACKEND_BATCH):
            monkeypatch.setenv(ENV_BACKEND, backend)
            clear_caches()
            results[backend] = run_policy(
                mix_by_name("ferret rs"), DIRIGENT, executions=4, warmup=1,
                fault_plan=scenario(scenario_name, seed=21),
            )
        scalar, batch = results[BACKEND_SCALAR], results[BACKEND_BATCH]
        assert scalar.durations_s == batch.durations_s
        assert scalar.deadlines_s == batch.deadlines_s
        assert scalar.bg_grade_histogram == batch.bg_grade_histogram
        assert scalar.partition_history == batch.partition_history
        assert scalar.elapsed_s == batch.elapsed_s
        rep_s, rep_b = scalar.fault_report, batch.fault_report
        assert rep_s is not None and rep_b is not None
        assert rep_s.event_signature  # faults actually fired
        assert rep_s.event_signature == rep_b.event_signature
        assert rep_s.injected == rep_b.injected
        assert rep_s.rejected_samples == rep_b.rejected_samples
        assert rep_s.suspect_samples == rep_b.suspect_samples
        assert rep_s.degraded_entries == rep_b.degraded_entries
        assert rep_s.safe_entries == rep_b.safe_entries
        assert rep_s.degraded_time_s == rep_b.degraded_time_s
        assert rep_s.actuations_retried == rep_b.actuations_retried
        assert rep_s.actuations_failed == rep_b.actuations_failed
