"""Unit tests for repro.sim.process."""

import random

import pytest

from repro.errors import SimulationError, WorkloadError
from repro.sim.process import STATE_PAUSED, STATE_RUNNING, Process
from tests.conftest import make_bg, make_fg, make_phase


def fg_process(**kwargs):
    return Process(pid=1, spec=make_fg(), core=0, **kwargs)


def bg_process(**kwargs):
    return Process(pid=2, spec=make_bg(), core=1, **kwargs)


class TestLifecycle:
    def test_starts_running(self):
        proc = fg_process()
        assert proc.is_running
        assert proc.state == STATE_RUNNING

    def test_pause_resume(self):
        proc = bg_process()
        proc.pause()
        assert proc.state == STATE_PAUSED
        assert not proc.is_running
        proc.resume()
        assert proc.is_running

    def test_negative_core_rejected(self):
        with pytest.raises(SimulationError):
            Process(pid=1, spec=make_fg(), core=-1)


class TestProgress:
    def test_advance_accumulates(self):
        proc = fg_process()
        proc.advance(1e6, 50.0)
        proc.advance(2e6, 25.0)
        assert proc.progress == pytest.approx(3e6)
        assert proc.execution_misses == pytest.approx(75.0)

    def test_advance_rejects_negative(self):
        proc = fg_process()
        with pytest.raises(SimulationError):
            proc.advance(-1.0, 0.0)
        with pytest.raises(SimulationError):
            proc.advance(1.0, -1.0)

    def test_remaining_instructions(self):
        proc = fg_process()
        total = proc.target_instructions
        proc.advance(total / 4, 0)
        assert proc.remaining_instructions() == pytest.approx(total * 0.75)

    def test_remaining_is_fg_only(self):
        with pytest.raises(SimulationError):
            bg_process().remaining_instructions()


class TestPhaseCursor:
    def test_first_phase_at_start(self):
        proc = fg_process()
        assert proc.current_phase().name == "compute"

    def test_phase_advances_with_progress(self):
        proc = fg_process()
        first = proc.spec.phases[0].instructions
        proc.advance(first + 1, 0)
        assert proc.current_phase().name == "memory"

    def test_bg_phase_wraps(self):
        proc = bg_process()
        total = proc.spec.total_instructions
        proc.advance(total + 1, 0)
        assert proc.current_phase().name == "heavy"

    def test_bg_phase_wraps_into_second_phase(self):
        proc = bg_process()
        total = proc.spec.total_instructions
        first = proc.spec.phases[0].instructions
        proc.advance(total + first + 1, 0)
        assert proc.current_phase().name == "calm"

    def test_fg_overrun_stays_in_last_phase(self):
        spec = make_fg(input_noise=0.0)
        proc = Process(pid=1, spec=spec, core=0)
        proc.advance(spec.total_instructions * 1.5, 0)
        assert proc.current_phase().name == spec.phases[-1].name

    def test_cursor_can_seek_backwards_after_reset(self):
        proc = fg_process()
        proc.advance(proc.spec.total_instructions * 0.9, 0)
        proc.complete_execution(end_s=1.0)
        assert proc.current_phase().name == "compute"


class TestCompletion:
    def test_complete_returns_record(self):
        proc = fg_process()
        total = proc.target_instructions
        proc.advance(total, 123.0)
        record = proc.complete_execution(end_s=0.5)
        assert record.index == 0
        assert record.start_s == 0.0
        assert record.end_s == 0.5
        assert record.duration_s == pytest.approx(0.5)
        assert record.instructions == pytest.approx(total)
        assert record.llc_misses == pytest.approx(123.0)

    def test_complete_resets_for_next_execution(self):
        proc = fg_process()
        proc.advance(proc.target_instructions, 1.0)
        proc.complete_execution(end_s=0.5)
        assert proc.progress == 0.0
        assert proc.execution_misses == 0.0
        assert proc.execution_index == 1
        assert proc.execution_start_s == 0.5

    def test_complete_is_fg_only(self):
        with pytest.raises(SimulationError):
            bg_process().complete_execution(end_s=1.0)

    def test_input_noise_varies_target(self):
        spec = make_fg(input_noise=0.05)
        rng = random.Random(3)
        proc = Process(pid=1, spec=spec, core=0, input_rng=rng)
        targets = set()
        for i in range(5):
            targets.add(proc.target_instructions)
            proc.advance(proc.target_instructions, 0)
            proc.complete_execution(end_s=float(i))
        assert len(targets) > 1

    def test_no_noise_target_is_exact(self):
        proc = fg_process()
        assert proc.target_instructions == proc.spec.total_instructions


class TestSwitchSpec:
    def test_switch_resets_progress(self):
        proc = bg_process()
        proc.advance(5e8, 10.0)
        other = make_bg(name="other")
        proc.switch_spec(other, now_s=2.0)
        assert proc.spec.name == "other"
        assert proc.progress == 0.0
        assert proc.current_phase().name == other.phases[0].name

    def test_switch_to_fg_rejected(self):
        with pytest.raises(WorkloadError):
            bg_process().switch_spec(make_fg(), now_s=0.0)

    def test_switch_fg_process_rejected(self):
        with pytest.raises(SimulationError):
            fg_process().switch_spec(make_bg(), now_s=0.0)
