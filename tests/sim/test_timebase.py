"""Unit tests for repro.sim.timebase."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.timebase import TimerWheel, VirtualClock, derive_rng


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock(1e-3)
        assert clock.tick == 0
        assert clock.now == 0.0

    def test_advance_increments(self):
        clock = VirtualClock(1e-3)
        clock.advance()
        clock.advance()
        assert clock.tick == 2
        assert clock.now == pytest.approx(2e-3)

    def test_ticks_for_rounds(self):
        clock = VirtualClock(1e-3)
        assert clock.ticks_for(5e-3) == 5
        assert clock.ticks_for(5.4e-3) == 5
        assert clock.ticks_for(5.6e-3) == 6

    def test_ticks_for_rounds_half_up(self):
        # Regression: round() uses banker's rounding, under which an
        # exact half-tick delay (2.5 ticks) fired a timer a tick EARLY
        # whenever the nearest even count was the lower one.
        clock = VirtualClock(1e-3)
        assert clock.ticks_for(2.5e-3) == 3
        assert clock.ticks_for(4.5e-3) == 5
        assert clock.ticks_for(3.5e-3) == 4

    def test_ticks_for_minimum_one(self):
        clock = VirtualClock(1e-3)
        assert clock.ticks_for(1e-7) == 1

    def test_ticks_for_rejects_nonpositive(self):
        clock = VirtualClock(1e-3)
        with pytest.raises(SimulationError):
            clock.ticks_for(0.0)

    def test_invalid_tick_length_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(0.0)


class TestTimerWheel:
    def _wheel(self, jitter=0.0):
        clock = VirtualClock(1e-3)
        return clock, TimerWheel(clock, random.Random(1), jitter_prob=jitter)

    def test_timer_fires_at_requested_tick(self):
        clock, wheel = self._wheel()
        fired = []
        wheel.schedule(3e-3, lambda: fired.append(clock.tick))
        for _ in range(5):
            for cb in wheel.due():
                cb()
            clock.advance()
        assert fired == [3]

    def test_timer_not_due_early(self):
        clock, wheel = self._wheel()
        wheel.schedule(2e-3, lambda: None)
        assert wheel.due() == []
        clock.advance()
        assert wheel.due() == []

    def test_multiple_timers_fifo_within_tick(self):
        clock, wheel = self._wheel()
        order = []
        wheel.schedule(1e-3, lambda: order.append("a"))
        wheel.schedule(1e-3, lambda: order.append("b"))
        clock.advance()
        for cb in wheel.due():
            cb()
        assert order == ["a", "b"]

    def test_due_pops_timers(self):
        clock, wheel = self._wheel()
        wheel.schedule(1e-3, lambda: None)
        clock.advance()
        assert len(wheel.due()) == 1
        assert wheel.due() == []

    def test_len_counts_pending(self):
        clock, wheel = self._wheel()
        wheel.schedule(1e-3, lambda: None)
        wheel.schedule(2e-3, lambda: None)
        assert len(wheel) == 2

    def test_clear_drops_all(self):
        clock, wheel = self._wheel()
        wheel.schedule(1e-3, lambda: None)
        wheel.clear()
        assert len(wheel) == 0

    def test_jitter_delays_by_at_most_one_tick(self):
        clock = VirtualClock(1e-3)
        wheel = TimerWheel(clock, random.Random(7), jitter_prob=1.0)
        fire_tick = wheel.schedule(5e-3, lambda: None)
        assert fire_tick == 6  # always one tick late at probability 1

    def test_no_jitter_when_probability_zero(self):
        clock, wheel = self._wheel(jitter=0.0)
        assert wheel.schedule(5e-3, lambda: None) == 5

    def test_jitter_statistics(self):
        clock = VirtualClock(1e-3)
        wheel = TimerWheel(clock, random.Random(3), jitter_prob=0.2)
        late = sum(
            1 for _ in range(1000) if wheel.schedule(5e-3, lambda: None) == 6
        )
        assert 120 < late < 280  # ~20%

    def test_jitter_deterministic_across_reschedules(self):
        # Two identically seeded wheels must draw the same jitter for
        # the same schedule sequence, even when timers fire and are
        # rescheduled from inside their own callbacks (the runtime's
        # periodic sampling pattern).
        def run(seed):
            clock = VirtualClock(1e-3)
            wheel = TimerWheel(clock, random.Random(seed), jitter_prob=0.5)
            fired = []

            def periodic():
                fired.append(clock.tick)
                wheel.schedule(4e-3, periodic)

            wheel.schedule(4e-3, periodic)
            for _ in range(100):
                for cb in wheel.due():
                    cb()
                clock.advance()
            return fired

        first = run(seed=9)
        assert len(first) > 10
        assert first == run(seed=9)
        assert any(b - a == 5 for a, b in zip(first, first[1:]))  # jittered
        assert any(b - a == 4 for a, b in zip(first, first[1:]))  # on time

    def test_next_deadline_peeks_earliest(self):
        clock, wheel = self._wheel()
        assert wheel.next_deadline() is None
        wheel.schedule(5e-3, lambda: None)
        wheel.schedule(2e-3, lambda: None)
        assert wheel.next_deadline() == 2
        assert len(wheel) == 2  # peek pops nothing
        clock.advance()
        clock.advance()
        wheel.due()
        assert wheel.next_deadline() == 5

    def test_pending_heap_is_stable(self):
        clock, wheel = self._wheel()
        heap = wheel.pending_heap()
        assert heap == []
        wheel.schedule(1e-3, lambda: None)
        assert len(heap) == 1  # same list object, mutated in place
        clock.advance()
        wheel.due()
        assert heap == []
        wheel.schedule(1e-3, lambda: None)
        wheel.clear()
        assert heap == []
        assert wheel.pending_heap() is heap


class TestDeriveRng:
    def test_deterministic(self):
        assert derive_rng(1, "a").random() == derive_rng(1, "a").random()

    def test_streams_independent(self):
        assert derive_rng(1, "a").random() != derive_rng(1, "b").random()

    def test_seeds_independent(self):
        assert derive_rng(1, "a").random() != derive_rng(2, "a").random()
