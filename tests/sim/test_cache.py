"""Unit tests for repro.sim.cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.sim.cache import SharedCache, contiguous_mask, full_mask
from repro.sim.config import MachineConfig


@pytest.fixture
def cache():
    return SharedCache(MachineConfig(seed=1))


class TestMasks:
    def test_full_mask(self):
        assert full_mask(4) == 0b1111

    def test_contiguous_mask(self):
        assert contiguous_mask(2, 3) == 0b11100

    def test_contiguous_mask_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            contiguous_mask(-1, 2)

    def test_default_masks_cover_all_ways(self, cache):
        for core in range(6):
            assert cache.mask_ways(core) == 20

    def test_set_mask(self, cache):
        cache.set_mask(0, 0b1111)
        assert cache.mask(0) == 0b1111
        assert cache.mask_ways(0) == 4

    def test_set_mask_rejects_empty(self, cache):
        with pytest.raises(ConfigurationError):
            cache.set_mask(0, 0)

    def test_set_mask_rejects_too_wide(self, cache):
        with pytest.raises(ConfigurationError):
            cache.set_mask(0, 1 << 20)

    def test_out_of_range_core(self, cache):
        with pytest.raises(SimulationError):
            cache.mask(6)


class TestPartitioning:
    def test_fg_partition_masks_disjoint(self, cache):
        cache.set_fg_partition([0], fg_ways=5)
        assert cache.mask(0) == contiguous_mask(0, 5)
        for core in range(1, 6):
            assert cache.mask(core) == contiguous_mask(5, 15)
            assert cache.mask(core) & cache.mask(0) == 0

    def test_fg_partition_multiple_fg_cores(self, cache):
        cache.set_fg_partition([0, 1, 2], fg_ways=8)
        assert cache.mask(1) == cache.mask(0)
        assert cache.mask(3) == contiguous_mask(8, 12)

    def test_fg_partition_bounds(self, cache):
        with pytest.raises(ConfigurationError):
            cache.set_fg_partition([0], fg_ways=0)
        with pytest.raises(ConfigurationError):
            cache.set_fg_partition([0], fg_ways=20)  # leaves nothing for BG

    def test_clear_partitions(self, cache):
        cache.set_fg_partition([0], fg_ways=5)
        cache.clear_partitions()
        for core in range(6):
            assert cache.mask_ways(core) == 20


class TestOccupancyTargets:
    def test_equal_weights_split_equally(self, cache):
        cache.set_weights([1.0] * 6)
        for core in range(6):
            assert cache.target_ways(core) == pytest.approx(20 / 6)

    def test_weights_proportional(self, cache):
        cache.set_weights([3.0, 1.0, 0, 0, 0, 0])
        assert cache.target_ways(0) == pytest.approx(15.0)
        assert cache.target_ways(1) == pytest.approx(5.0)

    def test_idle_cores_get_zero(self, cache):
        cache.set_weights([1.0, 0, 0, 0, 0, 0])
        assert cache.target_ways(0) == pytest.approx(20.0)
        assert cache.target_ways(1) == 0.0

    def test_partitioned_targets_respect_masks(self, cache):
        cache.set_fg_partition([0], fg_ways=5)
        cache.set_weights([1.0] * 6)
        assert cache.target_ways(0) == pytest.approx(5.0)
        for core in range(1, 6):
            assert cache.target_ways(core) == pytest.approx(3.0)

    def test_overlapping_distinct_masks_use_way_model(self, cache):
        # Core 0 can reach all 20 ways; core 1 only the low 10: in the low
        # ways they compete (half each), the top 10 belong to core 0 alone.
        cache.set_mask(0, full_mask(20))
        cache.set_mask(1, contiguous_mask(0, 10))
        cache.set_weights([1.0, 1.0, 0, 0, 0, 0])
        assert cache.target_ways(0) == pytest.approx(15.0)
        assert cache.target_ways(1) == pytest.approx(5.0)

    def test_weight_validation(self, cache):
        with pytest.raises(SimulationError):
            cache.set_weights([1.0] * 5)
        with pytest.raises(SimulationError):
            cache.set_weights([-1.0] + [1.0] * 5)

    def test_targets_conserve_capacity(self, cache):
        cache.set_weights([5.0, 1.0, 2.0, 0.5, 4.0, 3.0])
        assert sum(cache.target_ways(c) for c in range(6)) == pytest.approx(20.0)


class TestInertia:
    def test_step_moves_toward_target(self, cache):
        cache.set_weights([1.0, 0, 0, 0, 0, 0])
        before = cache.effective_ways(0)
        cache.step(0.01)
        after = cache.effective_ways(0)
        assert before < after < cache.target_ways(0)

    def test_settle_snaps_to_target(self, cache):
        cache.set_weights([1.0, 0, 0, 0, 0, 0])
        cache.settle()
        assert cache.effective_ways(0) == pytest.approx(20.0)

    def test_long_time_converges(self, cache):
        cache.set_weights([1.0, 1.0, 0, 0, 0, 0])
        for _ in range(3000):
            cache.step(1e-3)
        assert cache.effective_ways(0) == pytest.approx(10.0, rel=1e-3)

    def test_zero_tau_is_instant(self):
        cache = SharedCache(MachineConfig(seed=1, cache_inertia_tau_s=0.0))
        cache.set_weights([1.0, 0, 0, 0, 0, 0])
        cache.step(1e-3)
        assert cache.effective_ways(0) == pytest.approx(20.0)

    def test_negative_dt_rejected(self, cache):
        with pytest.raises(SimulationError):
            cache.step(-1.0)

    def test_repartition_effect_is_gradual(self, cache):
        cache.set_weights([1.0] * 6)
        cache.settle()
        cache.set_fg_partition([0], fg_ways=10)
        cache.step(1e-3)
        # One tick later core 0 has barely moved from 20/6 toward 10.
        assert cache.effective_ways(0) < 4.0


class TestOccupancyProperties:
    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=6, max_size=6
        ),
        fg_ways=st.integers(min_value=1, max_value=19),
    )
    @settings(max_examples=50, deadline=None)
    def test_targets_bounded_by_mask(self, weights, fg_ways):
        cache = SharedCache(MachineConfig(seed=1))
        cache.set_fg_partition([0, 1], fg_ways=fg_ways)
        cache.set_weights(weights)
        for core in range(6):
            limit = cache.mask_ways(core)
            assert 0.0 <= cache.target_ways(core) <= limit + 1e-9

    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=6, max_size=6
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_shared_targets_sum_to_capacity(self, weights):
        cache = SharedCache(MachineConfig(seed=1))
        cache.set_weights(weights)
        total = sum(cache.target_ways(c) for c in range(6))
        assert total == pytest.approx(20.0, rel=1e-9)
