"""Unit tests for repro.sim.memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.config import MachineConfig
from repro.sim.memory import MemorySystem


@pytest.fixture
def memory():
    return MemorySystem(MachineConfig(seed=1))


class TestPenalty:
    def test_unloaded_penalty_is_base(self, memory):
        assert memory.penalty_ns(0.0) == pytest.approx(80.0)

    def test_penalty_grows_with_rho(self, memory):
        assert memory.penalty_ns(0.5) > memory.penalty_ns(0.1)

    def test_penalty_capped_at_rho_cap(self, memory):
        assert memory.penalty_ns(0.99) == memory.penalty_ns(0.95)

    def test_penalty_formula(self, memory):
        cfg = MachineConfig()
        rho = 0.4
        expected = cfg.mem_base_latency_ns * (
            1 + cfg.mem_contention_scale * rho / (1 - rho)
        )
        assert memory.penalty_ns(rho) == pytest.approx(expected)

    def test_negative_rho_rejected(self, memory):
        with pytest.raises(SimulationError):
            memory.penalty_ns(-0.1)

    @given(st.floats(min_value=0.0, max_value=0.94))
    @settings(max_examples=50, deadline=None)
    def test_penalty_monotone(self, rho):
        memory = MemorySystem(MachineConfig(seed=1))
        assert memory.penalty_ns(rho + 0.01) >= memory.penalty_ns(rho)


class TestUtilization:
    def test_zero_misses_zero_rho(self, memory):
        assert memory.utilization_for(0.0) == 0.0

    def test_utilization_linear_in_misses(self, memory):
        low = memory.utilization_for(1e6)
        high = memory.utilization_for(2e6)
        assert high == pytest.approx(2 * low)

    def test_utilization_capped(self, memory):
        assert memory.utilization_for(1e12) == pytest.approx(0.95)

    def test_utilization_formula(self):
        cfg = MachineConfig(mem_peak_gbps=4.0, cache_line_bytes=64)
        memory = MemorySystem(cfg)
        # 1e7 misses/s * 64 B = 0.64 GB/s of 4 GB/s peak.
        assert memory.utilization_for(1e7) == pytest.approx(0.16)

    def test_negative_misses_rejected(self, memory):
        with pytest.raises(SimulationError):
            memory.utilization_for(-1.0)


class TestState:
    def test_update_records_rho(self, memory):
        memory.update(1e7)
        assert memory.rho == pytest.approx(memory.utilization_for(1e7))

    def test_update_returns_penalty(self, memory):
        penalty = memory.update(1e7)
        assert penalty == pytest.approx(memory.penalty_ns(memory.rho))

    def test_observe_records_capped_rho(self, memory):
        memory.observe(0.99)
        assert memory.rho == pytest.approx(0.95)

    def test_observe_rejects_negative(self, memory):
        with pytest.raises(SimulationError):
            memory.observe(-0.1)

    def test_accessors(self, memory):
        cfg = MachineConfig()
        assert memory.base_latency_ns == cfg.mem_base_latency_ns
        assert memory.contention_scale == cfg.mem_contention_scale
        assert memory.rho_cap == cfg.mem_rho_cap
        assert memory.seconds_per_miss_at_peak == pytest.approx(
            cfg.cache_line_bytes / (cfg.mem_peak_gbps * 1e9)
        )
