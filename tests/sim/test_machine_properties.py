"""Property-based invariants of the machine over generated workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.tracegen import WorkloadGenerator


def build_random_machine(seed, num_bg):
    config = MachineConfig(seed=seed)
    machine = Machine(config)
    gen = WorkloadGenerator(seed=seed)
    machine.spawn(gen.foreground(target_standalone_s=0.3), core=0)
    for core in range(1, 1 + num_bg):
        machine.spawn(gen.background(total_instructions=5e9), core=core)
    return machine


class TestMachineInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        num_bg=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_counters_monotone_and_consistent(self, seed, num_bg):
        machine = build_random_machine(seed, num_bg)
        previous = [machine.read_counters(c) for c in range(6)]
        for _ in range(10):
            machine.run_ticks(20)
            for core in range(6):
                snap = machine.read_counters(core)
                prev = previous[core]
                assert snap.instructions >= prev.instructions
                assert snap.llc_misses >= prev.llc_misses
                assert snap.llc_accesses >= snap.llc_misses - 1e-9
                assert snap.cycles >= prev.cycles
                previous[core] = snap

    @given(
        seed=st.integers(min_value=0, max_value=500),
        num_bg=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_rho_bounded(self, seed, num_bg):
        machine = build_random_machine(seed, num_bg)
        for _ in range(30):
            machine.tick()
            assert 0.0 <= machine.rho <= machine.config.mem_rho_cap + 1e-12

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_process_progress_matches_core_counters(self, seed):
        machine = build_random_machine(seed, num_bg=2)
        machine.run_ticks(300)
        for proc in machine.background_processes:
            snap = machine.read_counters(proc.core)
            assert snap.instructions == pytest.approx(proc.progress, rel=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=500),
        grade=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_cache_occupancy_bounded_by_capacity(self, seed, grade):
        machine = build_random_machine(seed, num_bg=4)
        machine.set_frequency_grade(1, grade)
        machine.set_fg_partition([0], fg_ways=6)
        for _ in range(20):
            machine.run_ticks(10)
            total = sum(
                machine.cache.effective_ways(c) for c in range(6)
            )
            assert total <= machine.config.llc_ways + 1e-6

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_completion_records_are_ordered_and_positive(self, seed):
        machine = build_random_machine(seed, num_bg=3)
        records = []
        machine.add_completion_listener(lambda p, r: records.append(r))
        machine.run_seconds(1.2)
        for earlier, later in zip(records, records[1:]):
            assert later.end_s >= earlier.end_s
        for record in records:
            assert record.duration_s > 0
            assert record.instructions > 0
