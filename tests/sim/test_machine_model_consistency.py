"""Consistency checks between the machine's inline fast path and the
reference performance model in repro.sim.perf."""

import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.memory import MemorySystem
from repro.sim.perf import PerfInput, solve_tick
from tests.conftest import make_bg, make_fg


class TestFastPathMatchesReferenceModel:
    def test_single_tick_instruction_counts(self):
        """The machine's inlined fixed point must agree with solve_tick."""
        config = MachineConfig(
            seed=3, os_jitter_sigma=0.0, timer_jitter_prob=0.0,
            cache_inertia_tau_s=0.0,
        )
        machine = Machine(config)
        fg = machine.spawn(make_fg(), core=0)
        bg = machine.spawn(make_bg(), core=1)
        machine.settle_cache()

        # Build the reference inputs exactly as the machine would.
        inputs = []
        for proc in (fg, bg):
            phase = proc.current_phase()
            inputs.append(
                PerfInput(
                    freq_ghz=2.0,
                    base_cpi=phase.base_cpi,
                    mpki=phase.mpki(machine.cache.effective_ways(proc.core)),
                    mem_sensitivity=phase.mem_sensitivity,
                    jitter=1.0,
                )
            )
        memory = MemorySystem(config)
        outputs, rho = solve_tick(inputs, memory, rho_hint=0.0, iterations=3)

        machine.tick()
        dt = config.tick_s
        # The machine's inline loop skips solve_tick's final
        # re-evaluation at the converged rho (a deliberate fast-path
        # economy), so agreement is to fixed-point tolerance, not ULPs.
        assert machine.read_counters(0).instructions == pytest.approx(
            outputs[0].ips * dt, rel=1e-3
        )
        assert machine.read_counters(1).instructions == pytest.approx(
            outputs[1].ips * dt, rel=1e-3
        )
        assert machine.rho == pytest.approx(rho, rel=1e-3)

    def test_miss_counts_match(self):
        config = MachineConfig(
            seed=3, os_jitter_sigma=0.0, timer_jitter_prob=0.0,
            cache_inertia_tau_s=0.0,
        )
        machine = Machine(config)
        proc = machine.spawn(make_bg(), core=2)
        machine.settle_cache()
        phase = proc.current_phase()
        mpki = phase.mpki(machine.cache.effective_ways(2))
        machine.tick()
        snap = machine.read_counters(2)
        assert snap.mpki == pytest.approx(mpki, rel=1e-6)

    def test_accesses_follow_apki(self):
        config = MachineConfig(seed=3, os_jitter_sigma=0.0)
        machine = Machine(config)
        proc = machine.spawn(make_fg(), core=0)
        machine.run_ticks(10)
        snap = machine.read_counters(0)
        phase = proc.spec.phases[0]
        assert snap.llc_accesses / snap.instructions * 1000 == pytest.approx(
            phase.apki, rel=1e-6
        )

    def test_energy_conservation_of_time(self):
        # cycles == frequency * busy time when no overhead is charged.
        config = MachineConfig(seed=3, os_jitter_sigma=0.0)
        machine = Machine(config)
        machine.spawn(make_fg(), core=0)
        machine.run_ticks(100)
        snap = machine.read_counters(0)
        assert snap.cycles == pytest.approx(2.0e9 * 0.1, rel=1e-9)
