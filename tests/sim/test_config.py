"""Unit tests for repro.sim.config."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import DEFAULT_FREQ_GRADES_GHZ, PAPER_MACHINE, MachineConfig


class TestDefaults:
    def test_paper_machine_has_six_cores(self):
        assert PAPER_MACHINE.num_cores == 6

    def test_paper_machine_grades_match_paper(self):
        assert PAPER_MACHINE.freq_grades_ghz == (1.2, 1.4, 1.6, 1.8, 2.0)

    def test_paper_machine_cache_geometry(self):
        assert PAPER_MACHINE.llc_ways == 20
        assert PAPER_MACHINE.llc_mb == 15.0

    def test_default_grades_constant_is_ascending(self):
        assert list(DEFAULT_FREQ_GRADES_GHZ) == sorted(DEFAULT_FREQ_GRADES_GHZ)


class TestProperties:
    def test_min_max_freq(self):
        cfg = MachineConfig()
        assert cfg.min_freq_ghz == 1.2
        assert cfg.max_freq_ghz == 2.0

    def test_num_grades(self):
        assert MachineConfig().num_grades == 5

    def test_grade_of_exact_frequency(self):
        cfg = MachineConfig()
        assert cfg.grade_of(1.2) == 0
        assert cfg.grade_of(2.0) == 4

    def test_grade_of_unknown_frequency_raises(self):
        with pytest.raises(ConfigurationError):
            MachineConfig().grade_of(1.5)

    def test_with_seed_changes_only_seed(self):
        cfg = MachineConfig(seed=1)
        other = cfg.with_seed(99)
        assert other.seed == 99
        assert other.num_cores == cfg.num_cores
        assert other.freq_grades_ghz == cfg.freq_grades_ghz

    def test_config_is_hashable(self):
        assert {MachineConfig(): 1}  # used as a cache key by the harness

    def test_equal_configs_hash_equal(self):
        assert hash(MachineConfig(seed=5)) == hash(MachineConfig(seed=5))


class TestValidation:
    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_cores=0)

    def test_empty_grades_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(freq_grades_ghz=())

    def test_negative_grade_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(freq_grades_ghz=(-1.0, 2.0))

    def test_unsorted_grades_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(freq_grades_ghz=(2.0, 1.2))

    def test_duplicate_grades_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(freq_grades_ghz=(1.2, 1.2, 2.0))

    def test_single_way_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(llc_ways=1)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(mem_peak_gbps=0.0)

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(mem_base_latency_ns=0.0)

    def test_rho_cap_bounds(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(mem_rho_cap=1.0)
        with pytest.raises(ConfigurationError):
            MachineConfig(mem_rho_cap=0.0)

    def test_nonpositive_tick_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(tick_s=0.0)

    def test_negative_inertia_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(cache_inertia_tau_s=-1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(os_jitter_sigma=-0.1)

    def test_timer_jitter_prob_bounds(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(timer_jitter_prob=1.5)
        with pytest.raises(ConfigurationError):
            MachineConfig(timer_jitter_prob=-0.1)


class TestEnvKnobAccessors:
    """The typed environment-knob funnel (read late, never at import)."""

    def test_default_executions_fallback(self, monkeypatch):
        from repro.sim.config import default_executions

        monkeypatch.delenv("REPRO_EXECUTIONS", raising=False)
        assert default_executions() == 40

    def test_default_executions_sees_late_env_change(self, monkeypatch):
        # The bug class this accessor replaced: a module constant read
        # os.environ at import, so changes after import were ignored.
        from repro.sim.config import default_executions

        monkeypatch.setenv("REPRO_EXECUTIONS", "7")
        assert default_executions() == 7
        monkeypatch.setenv("REPRO_EXECUTIONS", "11")
        assert default_executions() == 11

    def test_default_executions_rejects_garbage(self, monkeypatch):
        from repro.sim.config import default_executions

        monkeypatch.setenv("REPRO_EXECUTIONS", "many")
        with pytest.raises(ConfigurationError):
            default_executions()
        monkeypatch.setenv("REPRO_EXECUTIONS", "0")
        with pytest.raises(ConfigurationError):
            default_executions()

    def test_env_workers_lenient(self, monkeypatch):
        from repro.sim.config import env_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env_workers() is None
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert env_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "typo")
        assert env_workers() is None

    def test_span_compile_flag_off_values(self, monkeypatch):
        from repro.sim.config import span_compile_enabled

        monkeypatch.delenv("REPRO_SPAN_COMPILE", raising=False)
        assert span_compile_enabled() is True
        for off in ("0", "off", "FALSE"):
            monkeypatch.setenv("REPRO_SPAN_COMPILE", off)
            assert span_compile_enabled() is False
        monkeypatch.setenv("REPRO_SPAN_COMPILE", "1")
        assert span_compile_enabled() is True

    def test_harness_resolves_executions_at_call_time(self, monkeypatch):
        # End-to-end: the experiment harness observes the env change made
        # long after repro.experiments was imported.
        from repro.core.policies import BASELINE
        from repro.experiments.harness import PolicySession
        from repro.experiments.mixes import mix_by_name

        monkeypatch.setenv("REPRO_EXECUTIONS", "3")
        session = PolicySession(mix_by_name("ferret rs"), BASELINE,
                                warmup=0)
        assert session._executions == 3

    def test_knob_registry_accessors_exist_and_are_callable(self):
        import repro.sim.config as config

        for knob in config.KNOBS:
            accessor = getattr(config, knob.accessor)
            assert callable(accessor)
            assert knob.name.startswith("REPRO_")
            assert knob.doc

    def test_knob_registry_names_unique(self):
        from repro.sim.config import KNOBS

        names = [knob.name for knob in KNOBS]
        assert len(names) == len(set(names))
