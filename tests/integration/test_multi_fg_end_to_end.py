"""End-to-end checks for multi-FG mixes and the tradeoff sweep."""

import pytest

from repro.core.policies import BASELINE, DIRIGENT, DIRIGENT_FREQ
from repro.experiments.harness import (
    clear_caches,
    measure_baseline,
    measure_standalone,
    run_policy,
)
from repro.experiments.mixes import mix_by_name

EXECS = 18


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestMultiFgEndToEnd:
    def test_two_fg_copies_both_managed(self):
        mix = mix_by_name("fluidanimate x2 lbm+soplex")
        baseline = measure_baseline(mix, executions=EXECS)
        managed = run_policy(mix, DIRIGENT, executions=EXECS)
        # Both FG tasks improve their success ratio.
        for deadline, base_durs, managed_durs in zip(
            baseline.deadlines_s, baseline.durations_s, managed.durations_s
        ):
            base_met = sum(1 for d in base_durs if d <= deadline)
            managed_met = sum(1 for d in managed_durs if d <= deadline)
            assert managed_met >= base_met

    def test_partitioning_recovers_bg_throughput_multi_fg(self):
        mix = mix_by_name("fluidanimate x2 lbm+soplex")
        baseline = measure_baseline(mix, executions=EXECS)
        freq_only = run_policy(mix, DIRIGENT_FREQ, executions=EXECS)
        full = run_policy(mix, DIRIGENT, executions=EXECS)
        assert full.bg_instr_per_s > 0.95 * freq_only.bg_instr_per_s
        assert full.bg_instr_per_s > 0.7 * baseline.bg_instr_per_s


class TestDeadlineSweepEndToEnd:
    def test_looser_slo_buys_bg_throughput(self):
        mix = mix_by_name("raytrace bwaves")
        standalone = measure_standalone(mix.fg_name, executions=EXECS)
        baseline = measure_baseline(mix, executions=EXECS)
        tight = run_policy(
            mix, DIRIGENT,
            deadlines_s=(standalone.stats.mean_s * 1.06,),
            executions=EXECS, warmup=30,
        )
        loose = run_policy(
            mix, DIRIGENT,
            deadlines_s=(standalone.stats.mean_s * 1.18,),
            executions=EXECS, warmup=30,
        )
        assert loose.bg_instr_per_s > tight.bg_instr_per_s
        assert loose.fg_stats.mean_s > tight.fg_stats.mean_s - 0.02
        assert loose.fg_stats.mean_s < baseline.fg_stats.mean_s
