"""Telemetry-level checks of Dirigent's control dynamics."""

import pytest

from repro.core.policies import DIRIGENT
from repro.experiments.harness import PolicySession, clear_caches
from repro.experiments.mixes import mix_by_name
from repro.sim.trace import MachineTracer

EXECS = 20


@pytest.fixture(scope="module")
def traced_run():
    clear_caches()
    session = PolicySession(
        mix_by_name("streamcluster bwaves"), DIRIGENT, executions=EXECS
    )
    tracer = MachineTracer(session.machine, period_s=10e-3)
    tracer.start()
    while not session.done:
        session.tick()
    result = session.result()
    yield tracer, result
    clear_caches()


class TestControlDynamics:
    def test_fg_partition_grows_over_the_run(self, traced_run):
        tracer, result = traced_run
        ways = tracer.series("ways", core=0)
        early = sum(ways[:20]) / 20
        late = sum(ways[-20:]) / 20
        assert late > early + 0.5

    def test_bg_frequency_recovers_after_convergence(self, traced_run):
        tracer, result = traced_run
        freqs = tracer.series("frequency", core=1)
        third = len(freqs) // 3
        early = sum(freqs[:third]) / third
        late = sum(freqs[-third:]) / third
        assert late > early

    def test_pauses_concentrated_early(self, traced_run):
        tracer, result = traced_run
        paused = tracer.series("paused")
        half = len(paused) // 2
        assert sum(paused[:half]) >= sum(paused[half:])

    def test_utilization_stays_bounded(self, traced_run):
        tracer, result = traced_run
        rho = tracer.series("rho")
        assert all(0.0 <= r <= 0.95 for r in rho)

    def test_run_met_most_deadlines(self, traced_run):
        # The measurement window opens while the coarse controller is
        # still converging on this slow mix, so require most-deadlines
        # overall and improvement from the first half to the second.
        __, result = traced_run
        assert result.fg_success_ratio > 0.7
        deadline = result.deadlines_s[0]
        durations = result.durations_s[0]
        half = len(durations) // 2
        early_met = sum(1 for d in durations[:half] if d <= deadline)
        late_met = sum(1 for d in durations[half:] if d <= deadline)
        assert late_met >= early_met
