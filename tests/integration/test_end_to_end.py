"""End-to-end tests: the paper's qualitative claims on one mix.

These run the full pipeline (profiling, baseline, managed policies) with
a modest execution count; the benchmarks assert the same shapes over the
full mix matrix.
"""

import pytest

from repro.core.policies import (
    BASELINE,
    DIRIGENT,
    DIRIGENT_FREQ,
    STATIC_BOTH,
    STATIC_FREQ,
)
from repro.experiments.harness import (
    clear_caches,
    measure_baseline,
    run_policy,
)
from repro.experiments.mixes import mix_by_name

EXECS = 25


@pytest.fixture(scope="module")
def results():
    clear_caches()
    mix = mix_by_name("ferret rs")
    baseline = measure_baseline(mix, executions=EXECS)
    managed = {
        policy.name: run_policy(mix, policy, executions=EXECS)
        for policy in (STATIC_FREQ, STATIC_BOTH, DIRIGENT_FREQ, DIRIGENT)
    }
    managed["Baseline"] = baseline
    yield managed
    clear_caches()


class TestPaperClaims:
    def test_baseline_success_poor(self, results):
        # "While BG performance is high with Baseline, the FG success rate
        # is very poor, averaging just under 60%."
        assert results["Baseline"].fg_success_ratio < 0.8

    def test_dirigent_reduces_variation_sharply(self, results):
        base_std = results["Baseline"].fg_stats.std_s
        dirigent_std = results["Dirigent"].fg_stats.std_s
        assert dirigent_std < 0.35 * base_std  # paper: 85% reduction

    def test_dirigent_freq_reduces_variation(self, results):
        base_std = results["Baseline"].fg_stats.std_s
        df_std = results["DirigentFreq"].fg_stats.std_s
        assert df_std < 0.6 * base_std  # paper: 70% reduction

    def test_dirigent_meets_deadlines(self, results):
        assert results["Dirigent"].fg_success_ratio >= 0.9

    def test_static_both_meets_deadlines_at_high_bg_cost(self, results):
        base_bg = results["Baseline"].bg_instr_per_s
        static = results["StaticBoth"]
        assert static.fg_success_ratio >= 0.9
        assert static.bg_instr_per_s < 0.8 * base_bg

    def test_dirigent_beats_static_on_bg_throughput(self, results):
        # The headline: ~30% better BG throughput than coarse schemes.
        assert (
            results["Dirigent"].bg_instr_per_s
            > 1.1 * results["StaticBoth"].bg_instr_per_s
        )

    def test_dirigent_bg_close_to_baseline(self, results):
        base_bg = results["Baseline"].bg_instr_per_s
        assert results["Dirigent"].bg_instr_per_s > 0.75 * base_bg

    def test_static_freq_costs_bg_throughput(self, results):
        base_bg = results["Baseline"].bg_instr_per_s
        assert results["StaticFreq"].bg_instr_per_s < 0.8 * base_bg

    def test_managed_means_stay_below_deadline(self, results):
        deadline = results["Dirigent"].deadlines_s[0]
        assert results["Dirigent"].fg_stats.mean_s < deadline

    def test_dirigent_stretches_fg_toward_deadline(self, results):
        # Dirigent trades FG slack for BG throughput: mean completion is
        # slower than StaticBoth's over-provisioned configuration.
        assert (
            results["Dirigent"].fg_stats.mean_s
            > results["StaticBoth"].fg_stats.mean_s
        )

    def test_predictions_recorded_under_dirigent(self, results):
        log = results["Dirigent"].prediction_logs[0]
        assert len(log) >= EXECS // 2
        errors = [r.relative_error for r in log]
        assert sum(errors) / len(errors) < 0.15

    def test_coarse_controller_picked_nontrivial_partition(self, results):
        history = results["Dirigent"].partition_history
        assert history[0] == 2
        assert history[-1] >= 2
