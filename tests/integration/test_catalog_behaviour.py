"""Catalog-wide behavioural checks (Figure 4/5 preconditions).

These validate that every catalog entry behaves the way the evaluation
assumes: FG standalone times span the paper's range, and every BG
workload produces measurable interference.
"""

import pytest

from repro.experiments.harness import (
    clear_caches,
    measure_baseline,
    measure_standalone,
)
from repro.experiments.mixes import Mix, mix_by_name
from repro.workloads.catalog import (
    foreground_names,
    rotate_pair_names,
    single_bg_names,
)

EXECS = 5
WARMUP = 2


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestForegroundCatalogBehaviour:
    @pytest.mark.parametrize("fg", foreground_names())
    def test_standalone_time_in_paper_range(self, fg):
        alone = measure_standalone(fg, executions=EXECS, warmup=WARMUP)
        assert 0.35 < alone.stats.mean_s < 2.0

    @pytest.mark.parametrize("fg", foreground_names())
    def test_standalone_variation_is_small(self, fg):
        alone = measure_standalone(fg, executions=EXECS, warmup=WARMUP)
        assert alone.stats.normalized_std < 0.03

    def test_standalone_times_span_a_range(self):
        means = [
            measure_standalone(fg, executions=EXECS, warmup=WARMUP).stats.mean_s
            for fg in foreground_names()
        ]
        assert max(means) / min(means) > 2.0


class TestBackgroundCatalogBehaviour:
    @pytest.mark.parametrize("bg", single_bg_names())
    def test_every_single_bg_slows_ferret(self, bg):
        alone = measure_standalone("ferret", executions=EXECS, warmup=WARMUP)
        mix = mix_by_name("ferret %s" % bg)
        contended = measure_baseline(mix, executions=EXECS, warmup=WARMUP)
        assert contended.fg_stats.mean_s > 1.1 * alone.stats.mean_s

    @pytest.mark.parametrize("pair", rotate_pair_names())
    def test_every_rotate_pair_slows_ferret(self, pair):
        alone = measure_standalone("ferret", executions=EXECS, warmup=WARMUP)
        mix = mix_by_name("ferret %s" % pair)
        contended = measure_baseline(mix, executions=EXECS, warmup=WARMUP)
        assert contended.fg_stats.mean_s > 1.1 * alone.stats.mean_s

    @pytest.mark.parametrize("bg", single_bg_names())
    def test_contention_raises_fg_mpki(self, bg):
        alone = measure_standalone("ferret", executions=EXECS, warmup=WARMUP)
        mix = mix_by_name("ferret %s" % bg)
        contended = measure_baseline(mix, executions=EXECS, warmup=WARMUP)
        assert contended.fg_mpki > alone.mpki
