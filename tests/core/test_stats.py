"""Unit tests for repro.core.stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    ExponentialMovingAverage,
    harmonic_mean,
    mean,
    pearson_correlation,
    stddev,
)
from repro.errors import ControlError


class TestEMA:
    def test_first_sample_initializes(self):
        ema = ExponentialMovingAverage(0.2)
        assert not ema.initialized
        assert ema.update(10.0) == 10.0
        assert ema.initialized

    def test_paper_update_rule(self):
        ema = ExponentialMovingAverage(0.2)
        ema.update(10.0)
        assert ema.update(20.0) == pytest.approx(0.2 * 20 + 0.8 * 10)

    def test_reset(self):
        ema = ExponentialMovingAverage(0.2)
        ema.update(5.0)
        ema.reset()
        assert ema.value is None

    def test_weight_one_tracks_last_sample(self):
        ema = ExponentialMovingAverage(1.0)
        ema.update(1.0)
        assert ema.update(7.0) == 7.0

    def test_invalid_weight_rejected(self):
        with pytest.raises(ControlError):
            ExponentialMovingAverage(0.0)
        with pytest.raises(ControlError):
            ExponentialMovingAverage(1.5)

    @given(
        samples=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=1, max_size=30
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_ema_stays_within_sample_range(self, samples):
        ema = ExponentialMovingAverage(0.2)
        for sample in samples:
            ema.update(sample)
        assert min(samples) - 1e-9 <= ema.value <= max(samples) + 1e-9


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ControlError):
            mean([])

    def test_stddev_population(self):
        assert stddev([2.0, 4.0]) == pytest.approx(1.0)

    def test_stddev_constant_is_zero(self):
        assert stddev([3.0, 3.0, 3.0]) == 0.0

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 0.5]) == pytest.approx(2 / 3)

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ControlError):
            harmonic_mean([1.0, 0.0])

    def test_harmonic_below_arithmetic(self):
        values = [0.3, 0.9, 0.5]
        assert harmonic_mean(values) <= mean(values)


class TestCorrelation:
    def test_perfect_positive(self):
        xs = [1, 2, 3, 4]
        ys = [2, 4, 6, 8]
        assert pearson_correlation(xs, ys) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_gives_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_short_series_gives_zero(self):
        assert pearson_correlation([1], [2]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ControlError):
            pearson_correlation([1, 2], [1])

    @given(
        xs=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=30
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_correlation_bounded(self, xs):
        ys = [x * 0.5 + 3 for x in xs]
        value = pearson_correlation(xs, ys)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9
