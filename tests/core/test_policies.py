"""Unit tests for the evaluation policies."""

import pytest

from repro.core.policies import (
    BASELINE,
    COARSE_ONLY,
    DIRIGENT,
    DIRIGENT_FREQ,
    PAPER_POLICIES,
    STATIC_BOTH,
    STATIC_FREQ,
    Policy,
    policy_by_name,
)
from repro.errors import ConfigurationError


class TestPaperPolicies:
    def test_five_configurations_in_paper_order(self):
        assert [p.name for p in PAPER_POLICIES] == [
            "Baseline", "StaticFreq", "StaticBoth", "DirigentFreq", "Dirigent",
        ]

    def test_baseline_is_unmanaged(self):
        assert not BASELINE.uses_runtime
        assert BASELINE.static_bg_grade is None
        assert not BASELINE.static_partition

    def test_static_freq_pins_bg_to_min(self):
        assert STATIC_FREQ.static_bg_grade == 0
        assert not STATIC_FREQ.static_partition

    def test_static_both_adds_partition(self):
        assert STATIC_BOTH.static_bg_grade == 0
        assert STATIC_BOTH.static_partition
        assert not STATIC_BOTH.uses_runtime

    def test_dirigent_freq_is_fine_only(self):
        assert DIRIGENT_FREQ.fine_control
        assert not DIRIGENT_FREQ.coarse_control
        assert DIRIGENT_FREQ.uses_runtime

    def test_dirigent_is_full_system(self):
        assert DIRIGENT.fine_control
        assert DIRIGENT.coarse_control

    def test_coarse_only_ablation(self):
        assert COARSE_ONLY.static_partition
        assert not COARSE_ONLY.fine_control


class TestValidation:
    def test_coarse_and_static_partition_conflict(self):
        with pytest.raises(ConfigurationError):
            Policy(name="x", coarse_control=True, static_partition=True)

    def test_initial_ways_positive(self):
        with pytest.raises(ConfigurationError):
            Policy(name="x", initial_fg_ways=0)


class TestLookup:
    def test_lookup_case_insensitive(self):
        assert policy_by_name("dirigent") is DIRIGENT
        assert policy_by_name("STATICBOTH") is STATIC_BOTH

    def test_lookup_includes_ablation(self):
        assert policy_by_name("CoarseOnly") is COARSE_ONLY

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            policy_by_name("nope")
