"""Runtime tests for multi-FG coordination and degenerate setups."""

import pytest

from repro.core.profile import ExecutionProfile, ProfileSegment
from repro.core.runtime import DirigentRuntime, ManagedTask, RuntimeOptions
from tests.core.fakes import FakeSystem


def profile(segments=10, duration=0.005, progress=1e7):
    return ExecutionProfile(
        "synthetic",
        duration,
        tuple(ProfileSegment(duration, progress) for _ in range(segments)),
    )


def build_two_fg(**opt_kwargs):
    # FG tasks on cores 0 and 1; BG tasks (pids 21, 22) on cores 2 and 3.
    system = FakeSystem(pid_to_core={1: 0, 2: 1, 21: 2, 22: 3})
    tasks = [
        ManagedTask(pid=1, core=0, profile=profile(), deadline_s=0.08,
                    ema_weight=0.2),
        ManagedTask(pid=2, core=1, profile=profile(), deadline_s=0.08,
                    ema_weight=0.2),
    ]
    options = RuntimeOptions(
        enable_fine=True, enable_coarse=False, decision_every=1,
        **opt_kwargs,
    )
    runtime = DirigentRuntime(system, tasks, [21, 22], options=options)
    return system, tasks, runtime


class TestMultiFgCoordination:
    def test_both_ahead_throttles_both_fg(self):
        system, tasks, runtime = build_two_fg()
        runtime.start()
        for i in range(1, 4):
            system.set_counters(0, instructions=2.2e7 * i)
            system.set_counters(1, instructions=2.1e7 * i)
            system.fire_next_wakeup()
        assert system.grades[0] < 4
        assert system.grades[1] < 4

    def test_one_behind_drives_bg_and_throttles_other(self):
        system, tasks, runtime = build_two_fg()
        runtime.start()
        for i in range(1, 4):
            system.set_counters(0, instructions=0.5e7 * i)  # behind
            system.set_counters(1, instructions=2.5e7 * i)  # well ahead
            system.fire_next_wakeup()
        # BG cores clamped for the lagging task.
        assert system.grades[2] == 0
        assert system.grades[3] == 0
        # The comfortably-ahead FG yielded some frequency.
        assert system.grades[1] < 4
        # The lagging FG was never throttled.
        assert system.grades[0] == 4

    def test_completion_of_one_task_keeps_other_tracking(self):
        system, tasks, runtime = build_two_fg()
        runtime.start()
        system.set_counters(0, instructions=6e7)
        system.set_counters(1, instructions=4e7)
        system.fire_next_wakeup()
        runtime.on_fg_completion(
            pid=1, end_s=system.now(), duration_s=0.06,
            instructions=1e8, llc_misses=0.0,
        )
        assert tasks[0].execution_index == 1
        assert tasks[1].execution_index == 0
        assert tasks[1].predictor.in_execution


class TestDegenerateSetups:
    def test_runtime_without_bg_tasks(self):
        system = FakeSystem(pid_to_core={1: 0})
        task = ManagedTask(pid=1, core=0, profile=profile(),
                           deadline_s=0.08, ema_weight=0.2)
        runtime = DirigentRuntime(
            system, [task], [],
            options=RuntimeOptions(enable_fine=True, enable_coarse=False,
                                   decision_every=1),
        )
        runtime.start()
        # With no BG to manage, behind-pressure can only raise the FG.
        system.grades[0] = 2
        for i in range(1, 4):
            system.set_counters(0, instructions=0.5e7 * i)
            system.fire_next_wakeup()
        assert system.grades[0] == 4
        assert runtime.bg_grade_histogram == {}

    def test_observe_only_never_touches_frequencies(self):
        system = FakeSystem(pid_to_core={1: 0, 21: 1})
        task = ManagedTask(pid=1, core=0, profile=profile(),
                           deadline_s=0.08, ema_weight=0.2)
        runtime = DirigentRuntime(
            system, [task], [21],
            options=RuntimeOptions(enable_fine=False, enable_coarse=False),
        )
        runtime.start()
        for i in range(1, 6):
            system.set_counters(0, instructions=0.4e7 * i)
            system.fire_next_wakeup()
        assert system.actions == []

    def test_overhead_zero_supported(self):
        system = FakeSystem(pid_to_core={1: 0, 21: 1})
        task = ManagedTask(pid=1, core=0, profile=profile(),
                           deadline_s=0.08, ema_weight=0.2)
        runtime = DirigentRuntime(
            system, [task], [21],
            options=RuntimeOptions(invocation_overhead_s=0.0),
        )
        runtime.start()
        system.fire_next_wakeup()
        assert system.overhead == [(1, 0.0)]

    def test_progress_fn_takes_precedence_over_counters(self):
        system = FakeSystem(pid_to_core={1: 0, 21: 1})
        state = {"progress": 0.0}
        task = ManagedTask(
            pid=1, core=0, profile=profile(), deadline_s=0.08,
            ema_weight=0.2, progress_fn=lambda: state["progress"],
        )
        runtime = DirigentRuntime(
            system, [task], [21],
            options=RuntimeOptions(enable_fine=False, enable_coarse=False),
        )
        runtime.start()
        system.set_counters(0, instructions=9e7)  # would be 9 segments
        state["progress"] = 2.5e7                 # but heartbeats say 2.5
        system.fire_next_wakeup()
        assert task.predictor.segments_completed == 2
