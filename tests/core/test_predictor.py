"""Unit tests for the completion-time predictor (Equations 1 and 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictor import ALPHA_CLAMP, CompletionTimePredictor
from repro.core.profile import ExecutionProfile, ProfileSegment
from repro.errors import ProfileError


def uniform_profile(segments=10, duration=0.005, progress=1e7):
    return ExecutionProfile(
        workload_name="synthetic",
        sampling_period_s=duration,
        segments=tuple(
            ProfileSegment(duration_s=duration, progress=progress)
            for _ in range(segments)
        ),
    )


def drive(predictor, slowdown=1.0, sample_period=0.005, rate=None):
    """Simulate one full execution at a uniform slowdown; returns end time.

    Mirrors production semantics: samples are observed strictly before
    completion and the in-flight tail is closed by finish_execution.
    """
    profile = predictor.profile
    total = profile.total_progress
    base_rate = profile.segments[0].rate
    actual_rate = (base_rate / slowdown) if rate is None else rate
    end = total / actual_rate
    predictor.start_execution(0.0)
    t = sample_period
    while t < end:
        predictor.observe(t, actual_rate * t)
        t += sample_period
    predictor.finish_execution(end)
    return end


class TestTracking:
    def test_uncontended_prediction_matches_profile(self):
        predictor = CompletionTimePredictor(uniform_profile())
        predictor.start_execution(0.0)
        rate = predictor.profile.segments[0].rate
        predictor.observe(0.005, rate * 0.005)
        predicted = predictor.predict(0.005)
        assert predicted == pytest.approx(0.05, rel=0.01)

    def test_uniform_slowdown_predicted_first_execution(self):
        # Execution runs 1.5x slower than the profile throughout; after a
        # few segments the predictor should forecast ~1.5x total time.
        predictor = CompletionTimePredictor(uniform_profile())
        predictor.start_execution(0.0)
        rate = predictor.profile.segments[0].rate / 1.5
        t = 0.0
        for _ in range(6):
            t += 0.005
            predictor.observe(t, rate * t)
        assert predictor.predict(t) == pytest.approx(0.075, rel=0.05)

    def test_progress_fraction(self):
        predictor = CompletionTimePredictor(uniform_profile())
        predictor.start_execution(0.0)
        predictor.observe(0.01, predictor.profile.total_progress / 2)
        assert predictor.progress_fraction == pytest.approx(0.5)

    def test_segments_completed_counts_crossings(self):
        predictor = CompletionTimePredictor(uniform_profile(segments=4))
        predictor.start_execution(0.0)
        predictor.observe(0.01, 2.5e7)  # crosses 2 boundaries
        assert predictor.segments_completed == 2


class TestPenaltyLearning:
    def test_penalties_learned_after_one_execution(self):
        predictor = CompletionTimePredictor(uniform_profile())
        drive(predictor, slowdown=2.0)
        penalties = predictor.expected_penalties()
        # Each 5ms profiled segment took 10ms => penalty ~5ms (Equation 1).
        for penalty in penalties:
            assert penalty == pytest.approx(0.005, rel=0.1)

    def test_penalty_ema_weight(self):
        predictor = CompletionTimePredictor(uniform_profile(), ema_weight=0.2)
        drive(predictor, slowdown=2.0)
        first = predictor.expected_penalties()[2]
        drive(predictor, slowdown=1.0)
        second = predictor.expected_penalties()[2]
        # new = 0.2*0 + 0.8*first
        assert second == pytest.approx(0.8 * first, rel=0.15)

    def test_second_execution_prediction_uses_history(self):
        predictor = CompletionTimePredictor(uniform_profile())
        drive(predictor, slowdown=1.6)
        predictor.start_execution(0.0)
        rate = predictor.profile.segments[0].rate / 1.6
        t = 0.0
        for _ in range(3):
            t += 0.005
            predictor.observe(t, rate * t)
        assert predictor.predict(t) == pytest.approx(0.08, rel=0.05)

    def test_speedup_is_also_tracked(self):
        predictor = CompletionTimePredictor(uniform_profile())
        drive(predictor, slowdown=0.8)  # faster than profile
        penalties = predictor.expected_penalties()
        assert all(p < 0 for p in penalties if p is not None)


class TestScalingModes:
    def test_penalty_ratio_converges_at_steady_contention(self):
        predictor = CompletionTimePredictor(
            uniform_profile(), scaling="penalty-ratio"
        )
        for _ in range(4):
            end = drive(predictor, slowdown=1.5)
        predictor.start_execution(0.0)
        rate = predictor.profile.segments[0].rate / 1.5
        t = 0.0
        for _ in range(5):
            t += 0.005
            predictor.observe(t, rate * t)
        assert predictor.predict(t) == pytest.approx(end, rel=0.03)

    def test_alpha_mode_overshoots_at_steady_contention(self):
        # The literal Equation 2 scales the *absolute* penalties by the
        # absolute rate factor, double-counting steady contention; this is
        # the documented reason penalty-ratio is the default.
        predictor = CompletionTimePredictor(uniform_profile(), scaling="alpha")
        for _ in range(4):
            end = drive(predictor, slowdown=1.5)
        predictor.start_execution(0.0)
        rate = predictor.profile.segments[0].rate / 1.5
        t = 0.0
        for _ in range(5):
            t += 0.005
            predictor.observe(t, rate * t)
        predicted = predictor.predict(t)
        assert end < predicted < end * 1.25

    def test_penalty_ratio_handles_contention_shift(self):
        # History at 2.0x slowdown; current execution at 1.0x: the
        # penalty-ratio mode scales typical durations down.
        predictor = CompletionTimePredictor(
            uniform_profile(), scaling="penalty-ratio"
        )
        for _ in range(3):
            drive(predictor, slowdown=2.0)
        predictor.start_execution(0.0)
        rate = predictor.profile.segments[0].rate
        t = 0.0
        for _ in range(5):
            t += 0.005
            predictor.observe(t, rate * t)
        predicted = predictor.predict(t)
        assert predicted < 0.075  # much less than the historical 0.1

    def test_invalid_scaling_rejected(self):
        with pytest.raises(ProfileError):
            CompletionTimePredictor(uniform_profile(), scaling="bogus")


class TestEdgeCases:
    def test_observe_outside_execution_rejected(self):
        predictor = CompletionTimePredictor(uniform_profile())
        with pytest.raises(ProfileError):
            predictor.observe(0.0, 0.0)

    def test_predict_outside_execution_rejected(self):
        predictor = CompletionTimePredictor(uniform_profile())
        with pytest.raises(ProfileError):
            predictor.predict(0.0)

    def test_finish_outside_execution_rejected(self):
        predictor = CompletionTimePredictor(uniform_profile())
        with pytest.raises(ProfileError):
            predictor.finish_execution(0.0)

    def test_stale_sample_ignored(self):
        predictor = CompletionTimePredictor(uniform_profile())
        predictor.start_execution(0.0)
        predictor.observe(0.01, 2e7)
        predictor.observe(0.005, 1e7)  # stale; must not corrupt state
        assert predictor.segments_completed == 2

    def test_zero_progress_sample_ignored(self):
        predictor = CompletionTimePredictor(uniform_profile())
        predictor.start_execution(0.0)
        predictor.observe(0.005, 0.0)
        assert predictor.segments_completed == 0

    def test_progress_past_profile_predicts_elapsed(self):
        predictor = CompletionTimePredictor(uniform_profile(segments=3))
        predictor.start_execution(0.0)
        predictor.observe(0.02, predictor.profile.total_progress * 1.1)
        assert predictor.predict(0.02) == pytest.approx(0.02)

    def test_multiple_boundaries_in_one_sample(self):
        predictor = CompletionTimePredictor(uniform_profile(segments=10))
        predictor.start_execution(0.0)
        predictor.observe(0.01, 4.5e7)  # 4 boundaries at once
        assert predictor.segments_completed == 4

    def test_alpha_clamped(self):
        predictor = CompletionTimePredictor(uniform_profile())
        # This test deliberately feeds a physically impossible rate to
        # exercise the alpha clamp, so bypass the outlier rejection that
        # would otherwise discard the sample before it reaches the clamp.
        predictor.reject_outliers = False
        predictor.start_execution(0.0)
        # Absurdly fast: crosses all boundaries almost instantly.
        predictor.observe(1e-7, predictor.profile.total_progress * 0.99)
        predictor.observe(2e-7, predictor.profile.total_progress)
        predictor.finish_execution(2e-7)
        for penalty in predictor.expected_penalties():
            if penalty is not None:
                implied_alpha = (penalty + 0.005) / 0.005
                assert implied_alpha >= ALPHA_CLAMP[0] - 1e-9

    def test_in_execution_flag(self):
        predictor = CompletionTimePredictor(uniform_profile())
        assert not predictor.in_execution
        predictor.start_execution(0.0)
        assert predictor.in_execution
        drive_end = drive  # silence lint: reuse helper below
        predictor.observe(0.005, 1e7)
        predictor.finish_execution(0.05)
        assert not predictor.in_execution


class TestPropertyBased:
    @given(slowdown=st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=30, deadline=None)
    def test_learned_penalty_matches_slowdown(self, slowdown):
        predictor = CompletionTimePredictor(uniform_profile(segments=6))
        drive(predictor, slowdown=slowdown)
        for penalty in predictor.expected_penalties()[:5]:
            assert penalty == pytest.approx((slowdown - 1.0) * 0.005, abs=5e-4)

    @given(
        slowdowns=st.lists(
            st.floats(min_value=0.8, max_value=3.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_prediction_positive_and_finite(self, slowdowns):
        predictor = CompletionTimePredictor(uniform_profile(segments=6))
        for slowdown in slowdowns:
            drive(predictor, slowdown=slowdown)
        predictor.start_execution(0.0)
        predictor.observe(0.005, 1.2e7)
        predicted = predictor.predict(0.005)
        assert 0.0 < predicted < 10.0


class TestSamplingArtifacts:
    def test_same_timestamp_progress_jump(self):
        # Two samples in the same tick (timer coalescing): progress moves
        # but time does not; crossings are assigned to the sample time.
        predictor = CompletionTimePredictor(uniform_profile())
        predictor.start_execution(0.0)
        predictor.observe(0.005, 0.6e7)
        predictor.observe(0.005, 1.4e7)
        assert predictor.segments_completed == 1
        assert predictor.predict(0.005) > 0

    def test_jittered_sample_spacing(self):
        # 5ms nominal period with occasional 6ms gaps (timer lateness):
        # for an on-profile execution the prediction stays at the
        # profiled total regardless of when the samples landed.
        predictor = CompletionTimePredictor(uniform_profile())
        predictor.start_execution(0.0)
        rate = predictor.profile.segments[0].rate
        t = 0.0
        gaps = [0.005, 0.005, 0.005, 0.006]
        i = 0
        while t + gaps[i % 4] < 0.05:
            t += gaps[i % 4]
            i += 1
            predictor.observe(t, rate * t)
        assert predictor.predict(t) == pytest.approx(0.05, rel=0.03)

    def test_progress_regression_ignored(self):
        # A counter glitch reporting lower progress must not corrupt state.
        predictor = CompletionTimePredictor(uniform_profile())
        predictor.start_execution(0.0)
        predictor.observe(0.005, 1.2e7)
        predictor.observe(0.010, 0.9e7)  # regression: ignored
        assert predictor.segments_completed == 1
        predictor.observe(0.015, 2.4e7)
        assert predictor.segments_completed == 2
