"""Tests for the online (in-place) profiler."""

import pytest

from repro.core.online_profile import OnlineProfiler
from repro.core.profile import OfflineProfiler
from repro.errors import ProfileError
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from tests.conftest import make_bg, make_fg


@pytest.fixture
def config():
    return MachineConfig(seed=17, os_jitter_sigma=0.0, timer_jitter_prob=0.0)


def build_node(config):
    machine = Machine(config)
    fg = machine.spawn(make_fg(), core=0, nice=-5)
    bg = [machine.spawn(make_bg(), core=c, nice=5) for c in range(1, 6)]
    return machine, fg, bg


def run_online(machine, fg, profiler, guard_s=60.0):
    machine.add_completion_listener(
        lambda proc, record: profiler.on_fg_completion(
            record.end_s, record.duration_s, record.instructions
        )
    )
    profiler.start()
    ticks = 0
    guard = int(guard_s / machine.config.tick_s)
    while not profiler.done:
        machine.tick()
        ticks += 1
        assert ticks < guard


class TestOnlineProfiler:
    def test_bg_paused_during_and_resumed_after(self, config):
        machine, fg, bg = build_node(config)
        profiler = OnlineProfiler(
            machine, fg_core=0, bg_pids=[p.pid for p in bg]
        )
        machine.add_completion_listener(
            lambda proc, record: profiler.on_fg_completion(
                record.end_s, record.duration_s, record.instructions
            )
        )
        profiler.start()
        machine.run_ticks(20)
        assert all(machine.is_paused(p.pid) for p in bg)
        while not profiler.done:
            machine.tick()
        assert all(not machine.is_paused(p.pid) for p in bg)

    def test_profile_matches_offline_profile(self, config):
        spec = make_fg()
        offline = OfflineProfiler(config).profile(spec)

        machine, fg, bg = build_node(config)
        profiler = OnlineProfiler(
            machine, fg_core=0, bg_pids=[p.pid for p in bg],
            workload_name=spec.name,
        )
        run_online(machine, fg, profiler)
        online = profiler.profile
        assert online.workload_name == spec.name
        # Totals agree within a few percent: BG tasks are paused, so the
        # profiled execution is effectively uncontended.
        assert online.total_progress == pytest.approx(
            offline.total_progress, rel=0.02
        )
        assert online.total_duration_s == pytest.approx(
            offline.total_duration_s, rel=0.10
        )

    def test_already_paused_bg_not_resumed(self, config):
        machine, fg, bg = build_node(config)
        machine.pause(bg[0].pid)
        profiler = OnlineProfiler(
            machine, fg_core=0, bg_pids=[p.pid for p in bg]
        )
        run_online(machine, fg, profiler)
        assert machine.is_paused(bg[0].pid)  # left as found
        assert all(not machine.is_paused(p.pid) for p in bg[1:])

    def test_ready_callback_invoked(self, config):
        machine, fg, bg = build_node(config)
        received = []
        profiler = OnlineProfiler(
            machine, fg_core=0, bg_pids=[p.pid for p in bg],
            on_ready=received.append,
        )
        run_online(machine, fg, profiler)
        assert received == [profiler.profile]

    def test_warmup_executions_skipped(self, config):
        machine, fg, bg = build_node(config)
        profiler = OnlineProfiler(
            machine, fg_core=0, bg_pids=[p.pid for p in bg],
            warmup_executions=2,
        )
        completions = []
        machine.add_completion_listener(
            lambda proc, record: completions.append(record)
        )
        run_online(machine, fg, profiler)
        assert len(completions) == 3  # 2 warmup + 1 recorded

    def test_double_start_rejected(self, config):
        machine, fg, bg = build_node(config)
        profiler = OnlineProfiler(machine, fg_core=0, bg_pids=[])
        profiler.start()
        with pytest.raises(ProfileError):
            profiler.start()

    def test_validation(self, config):
        machine, fg, bg = build_node(config)
        with pytest.raises(ProfileError):
            OnlineProfiler(machine, 0, [], sampling_period_s=0.0)
        with pytest.raises(ProfileError):
            OnlineProfiler(machine, 0, [], warmup_executions=-1)

    def test_completion_before_start_ignored(self, config):
        machine, fg, bg = build_node(config)
        profiler = OnlineProfiler(machine, fg_core=0, bg_pids=[])
        profiler.on_fg_completion(1.0, 0.5, 1e8)
        assert not profiler.done
