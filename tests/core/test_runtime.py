"""Unit tests for the Dirigent runtime loop (on the FakeSystem)."""

import pytest

from repro.core.profile import ExecutionProfile, ProfileSegment
from repro.core.runtime import DirigentRuntime, ManagedTask, RuntimeOptions
from repro.errors import ControlError
from tests.core.fakes import FakeSystem


def profile(segments=10, duration=0.005, progress=1e7):
    return ExecutionProfile(
        "synthetic",
        duration,
        tuple(ProfileSegment(duration, progress) for _ in range(segments)),
    )


def build(enable_fine=True, enable_coarse=False, **opt_kwargs):
    system = FakeSystem(pid_to_core={1: 0, 11: 1, 12: 2})
    task = ManagedTask(
        pid=1, core=0, profile=profile(), deadline_s=0.08, ema_weight=0.2
    )
    options = RuntimeOptions(
        enable_fine=enable_fine,
        enable_coarse=enable_coarse,
        **opt_kwargs,
    )
    runtime = DirigentRuntime(system, [task], [11, 12], options=options)
    return system, task, runtime


class TestOptionsValidation:
    def test_invalid_sampling_period(self):
        with pytest.raises(ControlError):
            RuntimeOptions(sampling_period_s=0.0)

    def test_invalid_decision_every(self):
        with pytest.raises(ControlError):
            RuntimeOptions(decision_every=0)

    def test_invalid_overhead(self):
        with pytest.raises(ControlError):
            RuntimeOptions(invocation_overhead_s=-1.0)

    def test_managed_task_needs_positive_deadline(self):
        with pytest.raises(ControlError):
            ManagedTask(pid=1, core=0, profile=profile(), deadline_s=0.0,
                        ema_weight=0.2)

    def test_runtime_needs_tasks(self):
        system = FakeSystem(pid_to_core={11: 1})
        with pytest.raises(ControlError):
            DirigentRuntime(system, [], [11])


class TestSamplingLoop:
    def test_start_schedules_wakeup(self):
        system, task, runtime = build()
        runtime.start()
        assert len(system.wakeups) == 1

    def test_start_twice_rejected(self):
        system, task, runtime = build()
        runtime.start()
        with pytest.raises(ControlError):
            runtime.start()

    def test_wakeup_reschedules_itself(self):
        system, task, runtime = build()
        runtime.start()
        system.fire_next_wakeup()
        assert len(system.wakeups) == 1
        assert runtime.invocations == 1

    def test_stop_halts_rescheduling(self):
        system, task, runtime = build()
        runtime.start()
        runtime.stop()
        system.fire_next_wakeup()
        assert len(system.wakeups) == 0

    def test_overhead_charged_to_bg_core(self):
        system, task, runtime = build(invocation_overhead_s=100e-6)
        runtime.start()
        system.fire_next_wakeup()
        assert system.overhead == [(1, 100e-6)]  # core of pid 11

    def test_progress_feeds_predictor(self):
        system, task, runtime = build()
        runtime.start()
        system.set_counters(0, instructions=2.5e7)
        system.fire_next_wakeup()
        assert task.predictor.segments_completed == 2

    def test_midpoint_prediction_recorded(self):
        system, task, runtime = build()
        runtime.start()
        # Reach 60% of the profile over two samples (a single-sample
        # jump would exceed the predictor's physical-rate band).
        system.set_counters(0, instructions=3e7)
        system.fire_next_wakeup()
        system.set_counters(0, instructions=6e7)
        system.fire_next_wakeup()
        assert task.midpoint_prediction is not None

    def test_no_midpoint_before_half(self):
        system, task, runtime = build()
        runtime.start()
        system.set_counters(0, instructions=2e7)
        system.fire_next_wakeup()
        assert task.midpoint_prediction is None

    def test_grade_histogram_samples_bg_cores(self):
        system, task, runtime = build()
        runtime.start()
        system.grades[1] = 2
        system.fire_next_wakeup()
        system.fire_next_wakeup()
        assert runtime.bg_grade_histogram[2] == 2  # pid 11's core twice
        assert runtime.bg_grade_histogram[4] == 2  # pid 12's core twice

    def test_paused_bg_excluded_from_histogram(self):
        system, task, runtime = build()
        runtime.start()
        system.pause(11)
        system.fire_next_wakeup()
        assert sum(runtime.bg_grade_histogram.values()) == 1


class TestFineDecisions:
    def test_decision_every_n_samples(self):
        system, task, runtime = build(decision_every=3)
        runtime.start()
        for i in range(1, 7):
            system.set_counters(0, instructions=1.1e7 * i)
            system.fire_next_wakeup()
        assert len(runtime.fine_controller.decisions) == 2

    def test_no_fine_controller_when_disabled(self):
        system, task, runtime = build(enable_fine=False)
        assert runtime.fine_controller is None

    def test_behind_task_triggers_bg_throttle(self):
        # Deadline 0.08 but profile takes 0.05 => running at half speed
        # the predictor forecasts ~0.1 > 0.08: FG at max => clamp BG.
        system, task, runtime = build(decision_every=1)
        runtime.start()
        for i in range(1, 4):
            system.set_counters(0, instructions=0.5e7 * i)
            system.fire_next_wakeup()
        assert system.grades[1] == 0
        assert system.grades[2] == 0

    def test_ahead_task_releases_resources(self):
        system, task, runtime = build(decision_every=1)
        system.grades[1] = 0
        runtime.start()
        for i in range(1, 4):
            system.set_counters(0, instructions=2.0e7 * i)  # 2x faster
            system.fire_next_wakeup()
        assert system.grades[1] > 0


class TestCompletionHandling:
    def test_completion_finalizes_and_restarts(self):
        system, task, runtime = build()
        runtime.start()
        system.set_counters(0, instructions=3e7)
        system.fire_next_wakeup()
        system.set_counters(0, instructions=6e7)
        system.fire_next_wakeup()
        runtime.on_fg_completion(
            pid=1, end_s=0.06, duration_s=0.06, instructions=1e8,
            llc_misses=5e5,
        )
        assert task.execution_index == 1
        assert task.instruction_base == 1e8
        assert task.predictor.in_execution  # restarted
        assert len(task.prediction_log) == 1
        assert task.prediction_log[0].actual_total_s == 0.06

    def test_unknown_pid_ignored(self):
        system, task, runtime = build()
        runtime.start()
        runtime.on_fg_completion(
            pid=99, end_s=0.06, duration_s=0.06, instructions=1e8,
            llc_misses=0.0,
        )
        assert task.execution_index == 0

    def test_coarse_controller_fed_on_completion(self):
        system, task, runtime = build(
            enable_coarse=True, coarse_decision_every=2, coarse_window=4,
            initial_fg_ways=3,
        )
        runtime.start()
        assert system.partition == ((0,), 3)
        for i in range(4):
            runtime.on_fg_completion(
                pid=1, end_s=0.06 * (i + 1), duration_s=0.06,
                instructions=1e8, llc_misses=1e5,
            )
        # Two coarse decisions happened (every 2 executions).
        assert len(runtime.coarse_controller.partition_history) >= 3

    def test_prediction_error_property(self):
        system, task, runtime = build()
        runtime.start()
        system.set_counters(0, instructions=3e7)
        system.fire_next_wakeup()
        system.set_counters(0, instructions=6e7)
        system.fire_next_wakeup()
        runtime.on_fg_completion(
            pid=1, end_s=0.1, duration_s=0.1, instructions=1e8, llc_misses=0.0
        )
        record = task.prediction_log[0]
        assert record.relative_error == pytest.approx(
            abs(record.predicted_total_s - 0.1) / 0.1
        )

    def test_stopped_runtime_does_not_restart_predictor(self):
        system, task, runtime = build()
        runtime.start()
        runtime.stop()
        runtime.on_fg_completion(
            pid=1, end_s=0.06, duration_s=0.06, instructions=1e8,
            llc_misses=0.0,
        )
        assert not task.predictor.in_execution
