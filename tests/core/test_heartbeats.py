"""Tests for the Application Heartbeats-style progress source."""

import pytest

from repro.core.heartbeats import HeartbeatCounter, ProcessHeartbeatBridge
from repro.core.predictor import CompletionTimePredictor
from repro.core.profile import ExecutionProfile, ProfileSegment
from repro.errors import ControlError


class TestHeartbeatCounter:
    def test_starts_at_zero(self):
        assert HeartbeatCounter().beats == 0

    def test_emit_accumulates(self):
        counter = HeartbeatCounter()
        counter.emit()
        counter.emit(3)
        assert counter.beats == 4

    def test_emit_rejects_negative(self):
        with pytest.raises(ControlError):
            HeartbeatCounter().emit(-1)

    def test_reset(self):
        counter = HeartbeatCounter()
        counter.emit(5)
        counter.reset()
        assert counter.beats == 0


class TestBridge:
    def test_progress_quantized_to_beats(self):
        state = {"progress": 0.0}
        bridge = ProcessHeartbeatBridge(
            lambda: state["progress"], beat_instructions=1e6
        )
        state["progress"] = 2.7e6
        assert bridge.progress() == pytest.approx(2e6)
        assert bridge.counter.beats == 2

    def test_poll_returns_new_beats(self):
        state = {"progress": 0.0}
        bridge = ProcessHeartbeatBridge(lambda: state["progress"], 1e6)
        state["progress"] = 3.2e6
        assert bridge.poll() == 3
        assert bridge.poll() == 0

    def test_completion_resets(self):
        state = {"progress": 5e6}
        bridge = ProcessHeartbeatBridge(lambda: state["progress"], 1e6)
        bridge.poll()
        bridge.on_execution_complete()
        state["progress"] = 0.0
        assert bridge.counter.beats == 0
        assert bridge.progress() == 0.0

    def test_invalid_beat_size_rejected(self):
        with pytest.raises(ControlError):
            ProcessHeartbeatBridge(lambda: 0.0, 0.0)


class TestPredictorWithHeartbeats:
    def test_quantized_progress_still_predicts(self):
        # Beats of one quarter-segment granularity keep the predictor
        # close to its counter-based accuracy.
        profile = ExecutionProfile(
            "hb", 0.005,
            tuple(ProfileSegment(0.005, 1e7) for _ in range(10)),
        )
        predictor = CompletionTimePredictor(profile)
        state = {"progress": 0.0}
        bridge = ProcessHeartbeatBridge(lambda: state["progress"], 2.5e6)
        predictor.start_execution(0.0)
        rate = 1e7 / 0.005 / 1.5  # 1.5x slowdown
        t = 0.0
        for _ in range(8):
            t += 0.005
            state["progress"] = rate * t
            predictor.observe(t, bridge.progress())
        predicted = predictor.predict(t)
        assert predicted == pytest.approx(0.075, rel=0.12)

    def test_coarse_beats_degrade_gracefully(self):
        profile = ExecutionProfile(
            "hb", 0.005,
            tuple(ProfileSegment(0.005, 1e7) for _ in range(10)),
        )

        def error_with_beat(beat):
            predictor = CompletionTimePredictor(profile)
            state = {"progress": 0.0}
            bridge = ProcessHeartbeatBridge(lambda: state["progress"], beat)
            predictor.start_execution(0.0)
            rate = 1e7 / 0.005 / 1.5
            t = 0.0
            for _ in range(8):
                t += 0.005
                state["progress"] = rate * t
                predictor.observe(t, bridge.progress())
            return abs(predictor.predict(t) - 0.075) / 0.075

        fine = error_with_beat(1e6)
        coarse = error_with_beat(2e7)
        assert fine <= coarse + 0.02
