"""Unit tests for the coarse time scale cache-partition controller."""

import pytest

from repro.core.coarse import CoarseGrainController, ExecutionSample
from repro.core.fine import Decision
from repro.errors import ControlError
from tests.core.fakes import FakeSystem


def sample(duration=1.0, misses=1e6, instructions=1e9, missed=False):
    return ExecutionSample(
        duration_s=duration,
        llc_misses=misses,
        instructions=instructions,
        missed_deadline=missed,
    )


def decision(paused=0, grades=None):
    return Decision(
        time_s=0.0,
        action="x",
        worst_ratio=1.0,
        bg_grades=grades or {1: 4, 2: 4},
        bg_paused=paused,
    )


def make_controller(**kwargs):
    system = FakeSystem()
    kwargs.setdefault("initial_fg_ways", 4)
    kwargs.setdefault("window", 6)
    kwargs.setdefault("decision_every", 3)
    controller = CoarseGrainController(system, fg_cores=[0], **kwargs)
    return system, controller


class TestSetup:
    def test_initial_partition_applied(self):
        system, controller = make_controller(initial_fg_ways=5)
        assert system.partition == ((0,), 5)
        assert controller.fg_ways == 5

    def test_invalid_initial_ways_rejected(self):
        system = FakeSystem()
        with pytest.raises(ControlError):
            CoarseGrainController(system, fg_cores=[0], initial_fg_ways=0)
        with pytest.raises(ControlError):
            CoarseGrainController(system, fg_cores=[0], initial_fg_ways=20)

    def test_invalid_window_rejected(self):
        system = FakeSystem()
        with pytest.raises(ControlError):
            CoarseGrainController(system, fg_cores=[0], window=1)

    def test_sample_mpki(self):
        assert sample(misses=2e6, instructions=1e9).mpki == pytest.approx(2.0)
        assert sample(misses=1.0, instructions=0.0).mpki == 0.0


class TestDecisionCadence:
    def test_no_action_between_boundaries(self):
        _, controller = make_controller(decision_every=3)
        assert controller.on_execution(sample()) is None
        assert controller.on_execution(sample()) is None
        assert controller.on_execution(sample()) is not None


class TestHeuristic1Correlation:
    def test_grows_on_strong_correlation_with_misses(self):
        system, controller = make_controller()
        # Duration tracks misses perfectly and deadlines are missed.
        data = [
            sample(duration=1.0 + 0.1 * i, misses=1e6 * (1 + i), missed=True)
            for i in range(6)
        ]
        actions = [controller.on_execution(s) for s in data]
        assert "grow" in [a for a in actions if a]
        # (A later window may legitimately shrink back if misses keep
        # rising; heuristic 2 has its own tests.)

    def test_no_growth_without_missed_deadlines(self):
        system, controller = make_controller()
        data = [
            sample(duration=1.0 + 0.1 * i, misses=1e6 * (1 + i), missed=False)
            for i in range(6)
        ]
        actions = [controller.on_execution(s) for s in data]
        assert all(a in (None, "hold", "shrink") for a in actions)
        assert controller.fg_ways == 4

    def test_no_growth_on_weak_correlation(self):
        system, controller = make_controller()
        durations = [1.0, 1.5, 0.9, 1.4, 1.0, 1.3]
        misses = [5e6, 1e6, 5e6, 1e6, 5e6, 1e6]  # anti-correlated
        for d, m in zip(durations, misses):
            controller.on_execution(sample(duration=d, misses=m, missed=True))
        assert controller.fg_ways == 4


class TestHeuristic2ShrinkBack:
    def test_shrinks_when_grow_does_not_reduce_misses(self):
        system, controller = make_controller(decision_every=3, window=6)
        # Force a grow: perfectly correlated, missing deadlines.
        for i in range(3):
            controller.on_execution(
                sample(duration=1.0 + 0.2 * i, misses=1e6 * (1 + i), missed=True)
            )
        assert controller.fg_ways == 5
        # Next window: misses did NOT improve => shrink back.
        for i in range(3):
            action = controller.on_execution(
                sample(duration=1.0 + 0.2 * i, misses=1e6 * (2 + i), missed=False)
            )
        assert action == "shrink"
        assert controller.fg_ways == 4

    def test_keeps_grow_when_misses_improve(self):
        system, controller = make_controller(decision_every=3, window=3)
        for i in range(3):
            controller.on_execution(
                sample(duration=1.0 + 0.2 * i, misses=4e6 * (1 + i), missed=True)
            )
        assert controller.fg_ways == 5
        for i in range(3):
            action = controller.on_execution(
                sample(duration=1.0, misses=1e5, missed=False)
            )
        assert action != "shrink"
        assert controller.fg_ways >= 5


class TestHeuristic3ThrottlePressure:
    def test_grows_under_heavy_bg_throttling(self):
        system, controller = make_controller(decision_every=3)
        pressured = [decision(grades={1: 0, 2: 0})] * 4
        actions = []
        for _ in range(3):
            actions.append(
                controller.on_execution(
                    sample(missed=False), recent_decisions=pressured
                )
            )
        assert actions[-1] == "grow"

    def test_grows_when_bg_paused_often(self):
        system, controller = make_controller(decision_every=3)
        pressured = [decision(paused=2)] * 4
        for _ in range(3):
            action = controller.on_execution(
                sample(missed=False), recent_decisions=pressured
            )
        assert action == "grow"

    def test_no_growth_under_light_pressure(self):
        system, controller = make_controller(decision_every=3)
        light = [decision(grades={1: 4, 2: 3})] * 4
        for _ in range(3):
            action = controller.on_execution(
                sample(missed=False), recent_decisions=light
            )
        assert action == "hold"


class TestBounds:
    def test_never_exceeds_ways_minus_one(self):
        system, controller = make_controller(
            initial_fg_ways=18, decision_every=1, window=2
        )
        for i in range(8):
            controller.on_execution(
                sample(duration=1.0 + 0.2 * (i % 3),
                       misses=1e6 * (1 + (i % 3)), missed=True)
            )
        assert controller.fg_ways <= 19

    def test_partition_history_recorded(self):
        system, controller = make_controller()
        for i in range(6):
            controller.on_execution(
                sample(duration=1.0 + 0.1 * i, misses=1e6 * (1 + i), missed=True)
            )
        assert controller.partition_history[0] == 4
        assert len(controller.partition_history) >= 2
