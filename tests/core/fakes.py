"""A fake SystemInterface for controller unit tests."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.counters import CounterSnapshot


class FakeSystem:
    """In-memory SystemInterface double recording every action."""

    def __init__(
        self,
        num_cores: int = 6,
        num_grades: int = 5,
        llc_ways: int = 20,
        pid_to_core: Optional[Dict[int, int]] = None,
    ) -> None:
        self._num_cores = num_cores
        self._num_grades = num_grades
        self._llc_ways = llc_ways
        self.time_s = 0.0
        self.grades = {core: num_grades - 1 for core in range(num_cores)}
        self.paused: Dict[int, bool] = {}
        self.pid_to_core = dict(pid_to_core or {})
        self.partition: Optional[Tuple[Tuple[int, ...], int]] = None
        self.partition_calls: List[int] = []
        self.cleared = 0
        self.counters: Dict[int, CounterSnapshot] = {}
        self.wakeups: List[Tuple[float, Callable[[], None]]] = []
        self.overhead: List[Tuple[int, float]] = []
        self.actions: List[str] = []

    # -- time / counters ------------------------------------------------

    def now(self) -> float:
        return self.time_s

    def set_counters(self, core: int, **kwargs) -> None:
        defaults = dict(
            time_s=self.time_s, instructions=0.0, cycles=0.0,
            llc_accesses=0.0, llc_misses=0.0,
        )
        defaults.update(kwargs)
        defaults["time_s"] = self.time_s
        self.counters[core] = CounterSnapshot(**defaults)

    def read_counters(self, core: int) -> CounterSnapshot:
        stored = self.counters.get(core)
        if stored is None:
            return CounterSnapshot(self.time_s, 0.0, 0.0, 0.0, 0.0)
        # Counters are read "now", regardless of when the test staged them.
        return CounterSnapshot(
            self.time_s,
            stored.instructions,
            stored.cycles,
            stored.llc_accesses,
            stored.llc_misses,
        )

    # -- frequency ------------------------------------------------------

    def num_frequency_grades(self) -> int:
        return self._num_grades

    def frequency_grade(self, core: int) -> int:
        return self.grades[core]

    def set_frequency_grade(self, core: int, grade: int) -> None:
        assert 0 <= grade < self._num_grades
        self.grades[core] = grade
        self.actions.append("set-grade:%d:%d" % (core, grade))

    def step_frequency(self, core: int, direction: int) -> bool:
        target = self.grades[core] + direction
        if not 0 <= target < self._num_grades:
            return False
        self.grades[core] = target
        self.actions.append("step:%d:%+d" % (core, direction))
        return True

    # -- process control --------------------------------------------------

    def pause(self, pid: int) -> None:
        self.paused[pid] = True
        self.actions.append("pause:%d" % pid)

    def resume(self, pid: int) -> None:
        self.paused[pid] = False
        self.actions.append("resume:%d" % pid)

    def is_paused(self, pid: int) -> bool:
        return self.paused.get(pid, False)

    def core_of(self, pid: int) -> int:
        return self.pid_to_core[pid]

    # -- cache ------------------------------------------------------------

    def llc_ways(self) -> int:
        return self._llc_ways

    def set_fg_partition(self, fg_cores: Iterable[int], fg_ways: int) -> None:
        self.partition = (tuple(fg_cores), fg_ways)
        self.partition_calls.append(fg_ways)
        self.actions.append("partition:%d" % fg_ways)

    def clear_partitions(self) -> None:
        self.partition = None
        self.cleared += 1

    def partition_ways(self, core: int) -> int:
        if self.partition is None:
            return self._llc_ways
        fg_cores, fg_ways = self.partition
        if core in fg_cores:
            return fg_ways
        return self._llc_ways - fg_ways

    # -- timers -----------------------------------------------------------

    def schedule_wakeup(self, delay_s: float, callback) -> None:
        self.wakeups.append((self.time_s + delay_s, callback))

    def charge_overhead(self, core: int, seconds: float) -> None:
        self.overhead.append((core, seconds))

    # -- test helpers -------------------------------------------------------

    def fire_next_wakeup(self) -> None:
        """Advance time to the earliest wakeup and run it."""
        assert self.wakeups, "no pending wakeups"
        self.wakeups.sort(key=lambda item: item[0])
        when, callback = self.wakeups.pop(0)
        self.time_s = when
        callback()
