"""Unit tests for the offline profiler and ExecutionProfile."""

import pytest

from repro.core.profile import (
    ExecutionProfile,
    OfflineProfiler,
    ProfileSegment,
)
from repro.errors import ProfileError
from repro.sim.config import MachineConfig
from tests.conftest import make_bg, make_fg


class TestProfileSegment:
    def test_rate(self):
        seg = ProfileSegment(duration_s=0.005, progress=1e7)
        assert seg.rate == pytest.approx(2e9)

    def test_validation(self):
        with pytest.raises(ProfileError):
            ProfileSegment(duration_s=0.0, progress=1.0)
        with pytest.raises(ProfileError):
            ProfileSegment(duration_s=0.005, progress=0.0)


class TestExecutionProfile:
    def _profile(self):
        segments = (
            ProfileSegment(0.005, 1e7),
            ProfileSegment(0.005, 2e7),
            ProfileSegment(0.006, 1.5e7),
        )
        return ExecutionProfile("x", 0.005, segments)

    def test_totals(self):
        profile = self._profile()
        assert profile.num_segments == 3
        assert profile.total_progress == pytest.approx(4.5e7)
        assert profile.total_duration_s == pytest.approx(0.016)

    def test_boundaries(self):
        assert self._profile().boundaries() == (1e7, 3e7, 4.5e7)

    def test_empty_profile_rejected(self):
        with pytest.raises(ProfileError):
            ExecutionProfile("x", 0.005, ())


class TestOfflineProfiler:
    @pytest.fixture
    def profiler_config(self):
        return MachineConfig(seed=11, os_jitter_sigma=0.0, timer_jitter_prob=0.0)

    def test_profile_total_progress_matches_workload(self, profiler_config):
        spec = make_fg()
        profile = OfflineProfiler(profiler_config).profile(spec)
        assert profile.total_progress == pytest.approx(
            spec.total_instructions, rel=0.01
        )

    def test_profile_duration_close_to_standalone(self, profiler_config):
        spec = make_fg()
        profile = OfflineProfiler(profiler_config).profile(spec)
        # tiny FG runs ~0.15s standalone at ~2.7GHz effective.
        assert 0.05 < profile.total_duration_s < 0.5

    def test_segment_count_matches_sampling_period(self, profiler_config):
        spec = make_fg()
        profile = OfflineProfiler(
            profiler_config, sampling_period_s=5e-3
        ).profile(spec)
        expected = profile.total_duration_s / 5e-3
        assert abs(profile.num_segments - expected) <= 2

    def test_progress_varies_between_segments(self, profiler_config):
        # The two phases of the tiny FG progress at different rates, so
        # profiled progress per segment must not be constant (Figure 3a).
        profile = OfflineProfiler(profiler_config).profile(make_fg())
        rates = [seg.rate for seg in profile.segments]
        assert max(rates) / min(rates) > 1.1

    def test_coarser_sampling_fewer_segments(self, profiler_config):
        spec = make_fg()
        fine = OfflineProfiler(profiler_config, sampling_period_s=2e-3).profile(spec)
        coarse = OfflineProfiler(profiler_config, sampling_period_s=10e-3).profile(spec)
        assert fine.num_segments > coarse.num_segments

    def test_bg_workload_rejected(self, profiler_config):
        with pytest.raises(ProfileError):
            OfflineProfiler(profiler_config).profile(make_bg())

    def test_invalid_options_rejected(self):
        with pytest.raises(ProfileError):
            OfflineProfiler(sampling_period_s=0.0)
        with pytest.raises(ProfileError):
            OfflineProfiler(warmup_executions=-1)

    def test_profile_deterministic(self, profiler_config):
        spec = make_fg()
        one = OfflineProfiler(profiler_config).profile(spec)
        two = OfflineProfiler(profiler_config).profile(spec)
        assert [s.progress for s in one.segments] == [
            s.progress for s in two.segments
        ]

    def test_profile_with_timer_jitter_still_consistent(self):
        config = MachineConfig(seed=11, os_jitter_sigma=0.0, timer_jitter_prob=0.5)
        spec = make_fg()
        profile = OfflineProfiler(config).profile(spec)
        # Durations differ (jitter) but total progress is preserved.
        assert profile.total_progress == pytest.approx(
            spec.total_instructions, rel=0.01
        )
        durations = {round(s.duration_s, 6) for s in profile.segments}
        assert len(durations) > 1


class TestPersistence:
    def _profile(self):
        segments = (
            ProfileSegment(0.005, 1e7),
            ProfileSegment(0.006, 2e7),
        )
        return ExecutionProfile("saved", 0.005, segments)

    def test_round_trip_dict(self):
        profile = self._profile()
        clone = ExecutionProfile.from_dict(profile.to_dict())
        assert clone.workload_name == "saved"
        assert clone.boundaries() == profile.boundaries()
        assert clone.total_duration_s == profile.total_duration_s

    def test_round_trip_file(self, tmp_path):
        profile = self._profile()
        path = tmp_path / "profile.json"
        profile.save(path)
        clone = ExecutionProfile.load(path)
        assert clone.to_dict() == profile.to_dict()

    def test_malformed_dict_rejected(self):
        with pytest.raises(ProfileError):
            ExecutionProfile.from_dict({"workload_name": "x"})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ProfileError):
            ExecutionProfile.load(tmp_path / "nope.json")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ProfileError):
            ExecutionProfile.load(path)
