"""Unit tests for the fine time scale controller policy."""

import pytest

from repro.core.fine import FgStatus, FineGrainController
from repro.errors import ControlError
from tests.core.fakes import FakeSystem

#: FG on core 0; five BG tasks (pids 11-15) on cores 1-5.
BG_PIDS = (11, 12, 13, 14, 15)
PID_TO_CORE = {pid: core for core, pid in enumerate(BG_PIDS, start=1)}


def make_controller(**kwargs):
    system = FakeSystem(pid_to_core=dict(PID_TO_CORE))
    controller = FineGrainController(system, BG_PIDS, **kwargs)
    return system, controller


def status(ratio, pid=1, core=0, deadline=1.0):
    return FgStatus(
        pid=pid, core=core, predicted_total_s=ratio * deadline,
        deadline_s=deadline,
    )


class TestFgStatus:
    def test_ratio(self):
        assert status(1.2).ratio == pytest.approx(1.2)

    def test_zero_deadline_rejected(self):
        with pytest.raises(ControlError):
            FgStatus(pid=1, core=0, predicted_total_s=1.0, deadline_s=0.0).ratio


class TestAheadBranch:
    def test_resume_paused_bg_first(self):
        system, controller = make_controller()
        system.pause(11)
        system.pause(12)
        decision = controller.decide([status(0.5)])
        assert decision.action == "bg-resume"
        assert not system.is_paused(11)
        assert not system.is_paused(12)

    def test_speed_up_throttled_bg_second(self):
        system, controller = make_controller()
        system.grades[1] = 2
        system.grades[2] = 0
        decision = controller.decide([status(0.5)])
        assert decision.action == "bg-speedup"
        assert system.grades[1] == 3
        assert system.grades[2] == 1
        assert system.grades[3] == 4  # untouched, already max

    def test_throttle_fg_when_bg_unconstrained(self):
        system, controller = make_controller()
        decision = controller.decide([status(0.5)])
        assert decision.action == "fg-throttle"
        assert system.grades[0] == 3

    def test_fg_at_min_cannot_throttle_further(self):
        system, controller = make_controller()
        system.grades[0] = 0
        decision = controller.decide([status(0.5)])
        assert decision.action == "none"

    def test_one_grade_per_decision_on_release(self):
        system, controller = make_controller()
        system.grades[1] = 0
        controller.decide([status(0.5)])
        assert system.grades[1] == 1  # gradual release


class TestDeadband:
    def test_no_action_near_target(self):
        system, controller = make_controller(
            ahead_margin=0.02, deadline_guard=0.05
        )
        # target ratio = 0.95; deadband is (0.93, 0.95).
        decision = controller.decide([status(0.94)])
        assert decision.action == "none"
        assert system.actions == []

    def test_slightly_past_target_is_behind(self):
        system, controller = make_controller(
            ahead_margin=0.02, deadline_guard=0.05
        )
        system.grades[0] = 2
        decision = controller.decide([status(0.96)])
        assert decision.action == "fg-max"


class TestBehindBranch:
    def test_fg_raised_to_max_first(self):
        system, controller = make_controller()
        system.grades[0] = 1
        decision = controller.decide([status(1.2)])
        assert decision.action == "fg-max"
        assert system.grades[0] == 4

    def test_bg_clamped_to_min_second(self):
        system, controller = make_controller()
        decision = controller.decide([status(1.02)])
        assert decision.action == "bg-throttle"
        assert all(system.grades[core] == 0 for core in range(1, 6))

    def test_pause_requires_large_lag(self):
        system, controller = make_controller(
            pause_margin=0.08, deadline_guard=0.05
        )
        for core in range(1, 6):
            system.grades[core] = 0
        decision = controller.decide([status(1.02)])
        assert decision.action == "none"  # 1.02 < 0.95 + 0.08

    def test_pause_most_intrusive_bg(self):
        system, controller = make_controller(
            pause_margin=0.08, deadline_guard=0.05
        )
        for core in range(1, 6):
            system.grades[core] = 0
        intrusiveness = {11: 10.0, 12: 500.0, 13: 50.0, 14: 1.0, 15: 0.0}
        decision = controller.decide([status(1.2)], intrusiveness)
        assert decision.action == "bg-pause"
        assert system.is_paused(12)
        assert not system.is_paused(13)

    def test_paused_tasks_not_paused_again(self):
        system, controller = make_controller(
            pause_margin=0.08, deadline_guard=0.05
        )
        for core in range(1, 6):
            system.grades[core] = 0
        for pid in BG_PIDS[:4]:
            system.pause(pid)
        controller.decide([status(1.5)], {pid: 1.0 for pid in BG_PIDS})
        assert system.is_paused(15)

    def test_all_paused_nothing_to_do(self):
        system, controller = make_controller()
        for core in range(1, 6):
            system.grades[core] = 0
        for pid in BG_PIDS:
            system.pause(pid)
        decision = controller.decide([status(1.5)])
        assert decision.action == "none"


class TestMultiFg:
    def test_all_same_tendency_uses_single_policy(self):
        system, controller = make_controller()
        decision = controller.decide([status(0.5), status(0.6, pid=2, core=1)])
        assert decision.action == "fg-throttle"
        assert system.grades[0] == 3
        assert system.grades[1] == 3

    def test_mixed_tendency_drives_bg_by_slowest(self):
        system, controller = make_controller()
        ahead = status(0.5, pid=1, core=0)
        behind = status(1.2, pid=2, core=1)
        decision = controller.decide([ahead, behind])
        # Slowest FG is already at max => BG throttled; the ahead FG is
        # individually throttled one grade.
        assert decision.action.startswith("bg-throttle")
        assert "+fg-throttle" in decision.action
        assert system.grades[0] == 3  # ahead FG yielded
        assert all(system.grades[core] == 0 for core in range(2, 6))

    def test_empty_statuses_rejected(self):
        _, controller = make_controller()
        with pytest.raises(ControlError):
            controller.decide([])


class TestDecisionRecords:
    def test_decisions_accumulate(self):
        system, controller = make_controller()
        controller.decide([status(0.5)])
        controller.decide([status(1.2)])
        assert len(controller.decisions) == 2

    def test_record_contents(self):
        system, controller = make_controller()
        system.pause(11)
        system.time_s = 3.5
        decision = controller.decide([status(1.2)])
        assert decision.time_s == 3.5
        assert decision.worst_ratio == pytest.approx(1.2)
        assert decision.bg_paused == 1
        assert set(decision.bg_grades) == set(range(1, 6))

    def test_validation(self):
        with pytest.raises(ControlError):
            make_controller(ahead_margin=1.5)
        with pytest.raises(ControlError):
            make_controller(pause_margin=-0.1)
        with pytest.raises(ControlError):
            make_controller(deadline_guard=1.0)


class TestFakeSystemConformance:
    def test_fake_satisfies_protocol(self):
        from repro.sim.osal import SystemInterface

        system = FakeSystem(pid_to_core=dict(PID_TO_CORE))
        assert isinstance(system, SystemInterface)
