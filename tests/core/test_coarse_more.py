"""Additional coarse-controller scenarios."""

import pytest

from repro.core.coarse import CoarseGrainController, ExecutionSample
from tests.core.fakes import FakeSystem
from tests.core.test_coarse import decision, sample


class TestConvergenceScenario:
    def test_grows_stepwise_toward_need_then_holds(self):
        """Mimics Figure 8's convergence: misses correlate with time while
        deadlines fail; once deadlines pass, the partition holds."""
        system = FakeSystem()
        controller = CoarseGrainController(
            system, fg_cores=[0], initial_fg_ways=2, window=4,
            decision_every=2,
        )
        # Phase 1: correlated misses + missed deadlines -> grow.  The
        # synthetic miss level drops as the partition grows (more ways =>
        # fewer misses), so heuristic 2 keeps each grow.
        i = 0
        while controller.fg_ways < 5 and i < 40:
            scale = 4e6 / controller.fg_ways
            controller.on_execution(
                sample(duration=1.0 + 0.1 * (i % 4),
                       misses=scale * (1 + 0.2 * (i % 4)),
                       missed=True)
            )
            i += 1
        assert controller.fg_ways >= 4
        grown = controller.fg_ways
        # Phase 2: deadlines now met and misses drop -> no more growth.
        for j in range(8):
            controller.on_execution(
                sample(duration=1.0, misses=1e5, missed=False)
            )
        assert controller.fg_ways <= grown

    def test_multi_fg_partition_covers_all_cores(self):
        system = FakeSystem()
        CoarseGrainController(
            system, fg_cores=[0, 1, 2], initial_fg_ways=6,
        )
        assert system.partition == ((0, 1, 2), 6)

    def test_history_records_every_decision(self):
        system = FakeSystem()
        controller = CoarseGrainController(
            system, fg_cores=[0], initial_fg_ways=3, window=4,
            decision_every=2,
        )
        for i in range(8):
            controller.on_execution(sample())
        # initial + one entry per decision boundary.
        assert len(controller.partition_history) == 1 + 4
