"""Tests for the reservation-based admission layer (Figure 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.sched.reservation import (
    ReservationScheduler,
    TaskStream,
    max_streams,
    packing_gain,
    percentile,
    reservation_for,
)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_interpolation(self):
        assert percentile([0.0, 1.0], 0.25) == pytest.approx(0.25)

    def test_single_value(self):
        assert percentile([7.0], 0.9) == 7.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            percentile([], 0.5)
        with pytest.raises(ExperimentError):
            percentile([1.0], 1.5)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_extremes(self, values, q):
        assert min(values) <= percentile(values, q) <= max(values)


class TestReservation:
    def test_reservation_is_tail_quantile(self):
        durations = list(range(1, 101))  # 1..100
        assert reservation_for(durations, 0.95) == pytest.approx(95.05)

    def test_low_variance_needs_smaller_reservation(self):
        tight = [1.0, 1.01, 0.99, 1.02, 0.98]
        loose = [0.6, 1.4, 0.8, 1.2, 1.0]
        assert reservation_for(tight) < reservation_for(loose)


class TestTaskStream:
    def test_utilization(self):
        stream = TaskStream("s", period_s=2.0, reservation_s=0.5)
        assert stream.utilization == 0.25

    def test_validation(self):
        with pytest.raises(ExperimentError):
            TaskStream("s", period_s=0.0, reservation_s=0.5)
        with pytest.raises(ExperimentError):
            TaskStream("s", period_s=1.0, reservation_s=0.0)


class TestScheduler:
    def test_admission_up_to_capacity(self):
        scheduler = ReservationScheduler(capacity_cores=1.0)
        stream = TaskStream("s", period_s=1.0, reservation_s=0.3)
        assert scheduler.admit_max(stream) == 3
        assert scheduler.reserved_utilization == pytest.approx(0.9)
        assert not scheduler.try_admit(stream)

    def test_headroom(self):
        scheduler = ReservationScheduler(capacity_cores=2.0)
        scheduler.try_admit(TaskStream("s", 1.0, 0.5))
        assert scheduler.headroom == pytest.approx(1.5)

    def test_exact_fit_admitted(self):
        scheduler = ReservationScheduler(capacity_cores=1.0)
        assert scheduler.try_admit(TaskStream("s", 1.0, 1.0))

    def test_capacity_validation(self):
        with pytest.raises(ExperimentError):
            ReservationScheduler(capacity_cores=0.0)


class TestPacking:
    def test_max_streams(self):
        durations = [0.5] * 20
        assert max_streams(durations, period_s=1.0, capacity_cores=1.0) == 2

    def test_zero_when_reservation_exceeds_period(self):
        durations = [2.0] * 10
        assert max_streams(durations, period_s=1.0) == 0

    def test_figure2_low_variance_packs_denser(self):
        # Type B (low variance) and type A (high variance) with the same
        # mean: B admits more streams at the same percentile guarantee.
        type_b = [1.0 + 0.02 * ((i % 5) - 2) for i in range(50)]
        type_a = [1.0 + 0.5 * ((i % 5) - 2) / 2 for i in range(50)]
        gain = packing_gain(type_b, type_a, period_s=2.0)
        assert gain > 1.2

    def test_packing_gain_error_when_high_variance_unschedulable(self):
        with pytest.raises(ExperimentError):
            packing_gain([0.1] * 5, [5.0] * 5, period_s=1.0)
