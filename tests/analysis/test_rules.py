"""Per-rule unit tests for the determinism & invariant analyzer.

Each rule gets (at least) one seeded-violation fixture asserting the
finding fires, and a suppressed twin asserting the inline
``# repro-lint: disable=RULE`` comment silences exactly it.
"""

import textwrap

import pytest

from repro.analysis.core import analyze_paths, default_rules


def lint_source(tmp_path, source, relpath="mod.py", select=None):
    """Write ``source`` under ``tmp_path`` and lint it.

    Returns the finding list; ``relpath`` may carry directories (used
    to place fixtures inside rule scopes such as ``sim/``).
    """
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    rules = default_rules()
    if select is not None:
        rules = [rule for rule in rules if rule.id in select]
    return analyze_paths([tmp_path], rules=rules, root=tmp_path)


def rule_ids(findings):
    return [finding.rule for finding in findings]


class TestDet001ImportTimeNondeterminism:
    def test_flags_import_time_clock_read(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import time
            START = time.time()
        """, select={"DET001"})
        assert rule_ids(findings) == ["DET001"]
        assert findings[0].line == 2

    def test_flags_argument_default(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import time

            def f(now=time.time()):
                return now
        """, select={"DET001"})
        assert rule_ids(findings) == ["DET001"]

    def test_call_inside_function_body_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import time

            def f():
                return time.time()
        """, select={"DET001"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import time
            START = time.time()  # repro-lint: disable=DET001
        """, select={"DET001"})
        assert findings == []


class TestDet002SharedOrUnseededRng:
    def test_flags_global_rng_anywhere(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def draw():
                return random.gauss(0.0, 1.0)
        """, select={"DET002"})
        assert rule_ids(findings) == ["DET002"]

    def test_flags_unseeded_random(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def make_rng():
                return random.Random()
        """, select={"DET002"})
        assert rule_ids(findings) == ["DET002"]

    def test_seeded_random_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def make_rng(seed):
                return random.Random(seed)
        """, select={"DET002"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def make_rng():
                return random.Random()  # repro-lint: disable=DET002
        """, select={"DET002"})
        assert findings == []


class TestDet003SetIterationInHotPath:
    SOURCE = """\
        def total(values):
            acc = 0.0
            for v in set(values):
                acc += v
            return acc
    """

    def test_flags_inside_sim_scope(self, tmp_path):
        findings = lint_source(tmp_path, self.SOURCE,
                               relpath="sim/hot.py", select={"DET003"})
        assert rule_ids(findings) == ["DET003"]

    def test_flags_comprehension_over_set_literal(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def f():
                return [x for x in {1.0, 2.0}]
        """, relpath="sim/hot.py", select={"DET003"})
        assert rule_ids(findings) == ["DET003"]

    def test_outside_sim_scope_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, self.SOURCE,
                               relpath="report.py", select={"DET003"})
        assert findings == []

    def test_sorted_set_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def total(values):
                acc = 0.0
                for v in sorted(set(values)):
                    acc += v
                return acc
        """, relpath="sim/hot.py", select={"DET003"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def total(values):
                acc = 0.0
                for v in set(values):  # repro-lint: disable=DET003
                    acc += v
                return acc
        """, relpath="sim/hot.py", select={"DET003"})
        assert findings == []


class TestDet004SumOverSet:
    def test_flags_sum_of_set_call(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def f(values):
                return sum(set(values))
        """, select={"DET004"})
        assert rule_ids(findings) == ["DET004"]

    def test_flags_generator_over_set_literal(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def f():
                return sum(x * x for x in {1.0, 2.0})
        """, select={"DET004"})
        assert rule_ids(findings) == ["DET004"]

    def test_sum_of_list_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def f(values):
                return sum(sorted(set(values)))
        """, select={"DET004"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def f(values):
                return sum(set(values))  # repro-lint: disable=DET004
        """, select={"DET004"})
        assert findings == []


class TestEnv001EnvironReadOutsideConfig:
    def test_flags_environ_get(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import os

            def workers():
                return os.environ.get("REPRO_WORKERS")
        """, select={"ENV001"})
        assert rule_ids(findings) == ["ENV001"]

    def test_flags_getenv_and_subscript(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import os

            def f():
                return os.getenv("A"), os.environ["B"]
        """, select={"ENV001"})
        assert rule_ids(findings) == ["ENV001", "ENV001"]

    def test_write_is_allowed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import os

            def export(value):
                os.environ["REPRO_SIM_BACKEND"] = value
        """, select={"ENV001"})
        assert findings == []

    def test_config_module_is_exempt(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import os

            def knob():
                return os.environ.get("REPRO_X")
        """, relpath="repro/sim/config.py", select={"ENV001"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import os

            def f():
                return os.getenv("A")  # repro-lint: disable=ENV001
        """, select={"ENV001"})
        assert findings == []


class TestEnv002ImportTimeEnvRead:
    def test_flags_module_constant(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import os

            LIMIT = int(os.environ.get("REPRO_LIMIT", "4"))
        """, select={"ENV002"})
        assert rule_ids(findings) == ["ENV002"]

    def test_flags_import_time_accessor_call(self, tmp_path):
        # Knob accessors from repro.sim.config.KNOBS are recognized by
        # name; calling one at import time freezes the knob per process.
        findings = lint_source(tmp_path, """\
            from repro.sim.config import default_executions

            EXECUTIONS = default_executions()
        """, select={"ENV002"})
        assert rule_ids(findings) == ["ENV002"]

    def test_call_time_read_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from repro.sim.config import default_executions

            def executions():
                return default_executions()
        """, select={"ENV002"})
        assert findings == []

    def test_applies_even_in_config_module(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import os

            CACHED = os.environ.get("REPRO_X")
        """, relpath="repro/sim/config.py", select={"ENV002"})
        assert rule_ids(findings) == ["ENV002"]

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import os

            LIMIT = os.environ.get("L")  # repro-lint: disable=ENV001,ENV002
        """, select={"ENV002"})
        assert findings == []


class TestEnv003CacheKeyCrossCheck:
    HARNESS_MISSING_KNOBS = """\
        def run_policy_cached(cache, fg_name, config, warmup, seed):
            key = (fg_name, config, warmup, seed)
            return cache.get("policy", key)
    """

    def test_flags_harness_missing_cache_relevant_knobs(self, tmp_path):
        findings = lint_source(
            tmp_path, self.HARNESS_MISSING_KNOBS,
            relpath="repro/experiments/harness.py", select={"ENV003"},
        )
        assert rule_ids(findings) == ["ENV003", "ENV003"]
        messages = " ".join(finding.message for finding in findings)
        assert "REPRO_EXECUTIONS" in messages
        assert "REPRO_SIM_BACKEND" in messages

    def test_passes_when_symbols_present(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from repro.sim.batch import resolve_backend

            def run_policy_cached(cache, fg_name, config, executions,
                                  warmup, seed):
                key = (fg_name, config, executions, warmup, seed,
                       resolve_backend())
                return cache.get("policy", key)
        """, relpath="repro/experiments/harness.py", select={"ENV003"})
        assert findings == []

    def test_skipped_when_harness_not_analyzed(self, tmp_path):
        findings = lint_source(tmp_path, "x = 1\n", select={"ENV003"})
        assert findings == []


class TestPar001WorkerMustBeImportable:
    def test_flags_lambda_and_nested_function(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            def run(cells):
                def helper(c):
                    return c
                with ProcessPoolExecutor() as pool:
                    pool.submit(lambda c: c, 1)
                    pool.map(helper, cells)
        """, select={"PAR001"})
        assert rule_ids(findings) == ["PAR001", "PAR001"]

    def test_module_level_worker_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            def worker(c):
                return c

            def run(cells):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(worker, cells))
        """, select={"PAR001"})
        assert findings == []

    def test_no_pool_no_findings(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def run(cells):
                return list(map(lambda c: c, cells))
        """, select={"PAR001"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            def run(cells):
                with ProcessPoolExecutor() as pool:
                    pool.submit(lambda c: c, 1)  # repro-lint: disable=PAR001
        """, select={"PAR001"})
        assert findings == []


class TestPar002WorkerMustNotMutateModuleState:
    def test_flags_mutating_method_and_global(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            RESULTS = []
            COUNT = 0

            def worker(cell):
                global COUNT
                COUNT += 1
                RESULTS.append(cell)
                return cell

            def run(cells):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(worker, cells))
        """, select={"PAR002"})
        assert rule_ids(findings) == ["PAR002", "PAR002"]

    def test_flags_subscript_store(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            STATE = {}

            def worker(cell):
                STATE[cell] = 1
                return cell

            def run(cells):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(worker, cells))
        """, select={"PAR002"})
        assert rule_ids(findings) == ["PAR002"]

    def test_local_shadow_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            STATE = {}

            def worker(cell):
                STATE = {}
                STATE[cell] = 1
                return STATE

            def run(cells):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(worker, cells))
        """, select={"PAR002"})
        assert findings == []

    def test_pure_worker_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            def worker(cell):
                out = []
                out.append(cell)
                return out

            def run(cells):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(worker, cells))
        """, select={"PAR002"})
        assert findings == []


class TestPar003PoolInitializerMustBePure:
    def test_flags_lambda_initializer(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            def run(cells):
                pool = ProcessPoolExecutor(initializer=lambda: None)
                return pool
        """, select={"PAR003"})
        assert rule_ids(findings) == ["PAR003"]

    def test_flags_nested_initializer(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            def run(cells):
                def warm():
                    pass
                pool = ProcessPoolExecutor(initializer=warm)
                return pool
        """, select={"PAR003"})
        assert rule_ids(findings) == ["PAR003"]

    def test_flags_initializer_mutating_module_state(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            WARMED = []

            def warm():
                WARMED.append(1)

            def run(cells):
                pool = ProcessPoolExecutor(initializer=warm)
                return pool
        """, select={"PAR003"})
        assert rule_ids(findings) == ["PAR003"]

    def test_pure_module_level_initializer_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            def warm(payload):
                shapes, config = payload
                return len(shapes)

            def run(cells, payload):
                pool = ProcessPoolExecutor(
                    max_workers=2, initializer=warm, initargs=(payload,)
                )
                return pool
        """, select={"PAR003"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor

            def run(cells):
                pool = ProcessPoolExecutor(initializer=lambda: None)  # repro-lint: disable=PAR003
                return pool
        """, select={"PAR003"})
        assert findings == []


class TestGen001ExecHygiene:
    def test_flags_exec_without_namespace(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def compile_kernel(src):
                exec(src)
        """, select={"GEN001"})
        assert len(findings) == 2  # missing namespace + missing entry points
        assert {finding.rule for finding in findings} == {"GEN001"}

    def test_exec_with_namespace_and_entry_points_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def template_shapes():
                return ()

            def generate_kernel_source(shape):
                return ""

            def compile_kernel(src):
                namespace = {"__builtins__": {}}
                exec(src, namespace)
                return namespace
        """, select={"GEN001"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def compile_kernel(src):
                exec(src)  # repro-lint: disable=GEN001
        """, select={"GEN001"})
        assert findings == []


def lint_tree(tmp_path, files, select=None):
    """Write a {relpath: source} tree under ``tmp_path`` and lint it."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    rules = default_rules()
    if select is not None:
        rules = [rule for rule in rules if rule.id in select]
    return analyze_paths([tmp_path], rules=rules, root=tmp_path)


COV_MACHINE = """\
    SCALAR_ONLY_STATE = frozenset({"_scratch"})


    class Machine:
        def tick(self, dt):
            self._rho = 1.0
            self._scratch = 0
            self.governor.tick(dt)
            for core, proc in enumerate(self._procs_by_core):
                proc.advance(dt)
"""

COV_VECTOR = """\
    CELL_COLUMNS = {
        "_rho": "per-cell utilization column",
        "governor": "governor sub-state",
        "process.advance()": "progress advance",
    }
"""


class TestCov001VectorColumnCoverage:
    def test_mirrored_state_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/sim/machine.py": COV_MACHINE,
            "repro/sim/vector.py": COV_VECTOR,
        }, select={"COV001"})
        assert findings == []

    def test_flags_unmirrored_hot_state(self, tmp_path):
        machine = COV_MACHINE.replace(
            "self._rho = 1.0", "self._rho = 1.0\n            self._leak = dt"
        )
        findings = lint_tree(tmp_path, {
            "repro/sim/machine.py": machine,
            "repro/sim/vector.py": COV_VECTOR,
        }, select={"COV001"})
        assert rule_ids(findings) == ["COV001"]
        assert "'_leak'" in findings[0].message
        assert findings[0].path.endswith("machine.py")

    def test_flags_mutation_through_alias(self, tmp_path):
        machine = COV_MACHINE.replace(
            "self._rho = 1.0",
            "self._rho = 1.0\n"
            "            stash = self._leaky\n"
            "            stash[0] = dt",
        )
        findings = lint_tree(tmp_path, {
            "repro/sim/machine.py": machine,
            "repro/sim/vector.py": COV_VECTOR,
        }, select={"COV001"})
        assert rule_ids(findings) == ["COV001"]
        assert "'_leaky'" in findings[0].message

    def test_flags_stale_registry_entry(self, tmp_path):
        vector = COV_VECTOR.replace(
            '"_rho": "per-cell utilization column",',
            '"_rho": "per-cell utilization column",\n'
            '        "ghost": "column with no scalar counterpart",',
        )
        findings = lint_tree(tmp_path, {
            "repro/sim/machine.py": COV_MACHINE,
            "repro/sim/vector.py": vector,
        }, select={"COV001"})
        assert rule_ids(findings) == ["COV001"]
        assert "'ghost'" in findings[0].message
        assert findings[0].path.endswith("vector.py")

    def test_flags_stale_allowlist_entry(self, tmp_path):
        machine = COV_MACHINE.replace(
            'frozenset({"_scratch"})',
            'frozenset({"_scratch", "_gone"})',
        )
        findings = lint_tree(tmp_path, {
            "repro/sim/machine.py": machine,
            "repro/sim/vector.py": COV_VECTOR,
        }, select={"COV001"})
        assert rule_ids(findings) == ["COV001"]
        assert "'_gone'" in findings[0].message

    def test_suppressed(self, tmp_path):
        machine = COV_MACHINE.replace(
            'SCALAR_ONLY_STATE = frozenset({"_scratch"})',
            'SCALAR_ONLY_STATE = frozenset({"_scratch"})'
            '  # repro-lint: disable=COV001',
        ).replace(
            "self._rho = 1.0", "self._rho = 1.0\n            self._leak = dt"
        )
        findings = lint_tree(tmp_path, {
            "repro/sim/machine.py": machine,
            "repro/sim/vector.py": COV_VECTOR,
        }, select={"COV001"})
        assert findings == []


class TestCov002KernelStateCoverage:
    SPANPLAN = """\
        KERNEL_STATE = {
            "_rho": "utilization",
            "governor": "governor",
            "process.advance()": "progress advance",
        }
    """

    def test_mirrored_state_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/sim/machine.py": COV_MACHINE.replace(
                '"_scratch"', '"_scratch"'),
            "repro/sim/spanplan.py": self.SPANPLAN,
        }, select={"COV002"})
        assert findings == []

    def test_flags_unmirrored_hot_state(self, tmp_path):
        machine = COV_MACHINE.replace(
            "self._rho = 1.0", "self._rho = 1.0\n            self._leak = dt"
        )
        findings = lint_tree(tmp_path, {
            "repro/sim/machine.py": machine,
            "repro/sim/spanplan.py": self.SPANPLAN,
        }, select={"COV002"})
        assert rule_ids(findings) == ["COV002"]
        assert "'_leak'" in findings[0].message

    def test_suppressed(self, tmp_path):
        machine = COV_MACHINE.replace(
            'SCALAR_ONLY_STATE = frozenset({"_scratch"})',
            'SCALAR_ONLY_STATE = frozenset({"_scratch"})'
            '  # repro-lint: disable=COV002',
        ).replace(
            "self._rho = 1.0", "self._rho = 1.0\n            self._leak = dt"
        )
        findings = lint_tree(tmp_path, {
            "repro/sim/machine.py": machine,
            "repro/sim/spanplan.py": self.SPANPLAN,
        }, select={"COV002"})
        assert findings == []


class TestCov003CacheKeyFieldCoverage:
    HARNESS = """\
        CACHE_KEY_FIELDS = {
            "run": ("mix", "seed"),
        }


        def run_cached(disk, mix, seed):
            key = (mix, seed)
            hit = disk.get("run", key)
            if hit is None:
                disk.put("run", key, mix)
            return hit
    """

    def test_declared_fields_are_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/experiments/harness.py": self.HARNESS,
        }, select={"COV003"})
        assert findings == []

    def test_flags_undeclared_namespace(self, tmp_path):
        harness = self.HARNESS.replace('disk.get("run", key)',
                                       'disk.get("rogue", key)')
        findings = lint_tree(tmp_path, {
            "repro/experiments/harness.py": harness,
        }, select={"COV003"})
        assert "'rogue'" in findings[0].message
        assert any("not declared" in f.message for f in findings)

    def test_flags_missing_key_field(self, tmp_path):
        harness = self.HARNESS.replace("key = (mix, seed)",
                                       "key = (mix,)")
        findings = lint_tree(tmp_path, {
            "repro/experiments/harness.py": harness,
        }, select={"COV003"})
        assert len(findings) == 2  # both the get and the put site
        assert all("seed" in f.message for f in findings)
        assert findings[0].line > 1  # anchored at the call site

    def test_flags_stale_namespace_row(self, tmp_path):
        harness = self.HARNESS.replace(
            '"run": ("mix", "seed"),',
            '"run": ("mix", "seed"),\n            "orphan": ("mix",),',
        )
        findings = lint_tree(tmp_path, {
            "repro/experiments/harness.py": harness,
        }, select={"COV003"})
        assert rule_ids(findings) == ["COV003"]
        assert "'orphan'" in findings[0].message

    def test_missing_registry_is_an_error(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/experiments/harness.py": """\
                def run_cached(disk, mix):
                    return disk.get("run", (mix,))
            """,
        }, select={"COV003"})
        assert rule_ids(findings) == ["COV003"]
        assert "CACHE_KEY_FIELDS" in findings[0].message

    def test_suppressed(self, tmp_path):
        harness = self.HARNESS.replace(
            'hit = disk.get("run", key)',
            'hit = disk.get("rogue", key)  # repro-lint: disable=COV003',
        ).replace('disk.put("run", key, mix)',
                  'disk.put("rogue", key, mix)'
                  '  # repro-lint: disable=COV003')
        # The declared "run" row is now unused; silence that at the
        # registry line too.
        harness = harness.replace(
            "CACHE_KEY_FIELDS = {",
            "CACHE_KEY_FIELDS = {  # repro-lint: disable=COV003",
        )
        findings = lint_tree(tmp_path, {
            "repro/experiments/harness.py": harness,
        }, select={"COV003"})
        assert findings == []


class TestFlo001SeedProvenance:
    def test_flags_wall_clock_seed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random
            import time

            def make_rng():
                seed = int(time.time())
                return random.Random(seed)
        """, select={"FLO001"})
        assert rule_ids(findings) == ["FLO001"]
        assert "time.time" in findings[0].message

    def test_flags_reseed_from_global_rng(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def shuffle_stream(rng):
                rng.seed(random.random())
        """, select={"FLO001"})
        assert rule_ids(findings) == ["FLO001"]

    def test_config_seed_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def make_rng(config, stream):
                seed = "%d/%s" % (config.seed, stream)
                return random.Random(seed)
        """, select={"FLO001"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random
            import time

            def make_rng():
                return random.Random(int(time.time()))  # repro-lint: disable=FLO001
        """, select={"FLO001"})
        assert findings == []


class TestFlo002SharedRngInstance:
    def test_flags_import_time_rng(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            RNG = random.Random(7)
        """, select={"FLO002"})
        assert rule_ids(findings) == ["FLO002"]
        assert "import time" in findings[0].message

    def test_flags_duplicate_constant_streams(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def surface_a():
                return random.Random(7)

            def surface_b():
                return random.Random(7)
        """, select={"FLO002"})
        assert rule_ids(findings) == ["FLO002"]
        assert findings[0].line == 7  # the second construction

    def test_distinct_constant_streams_are_clean(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def surface_a():
                return random.Random(7)

            def surface_b():
                return random.Random(8)
        """, select={"FLO002"})
        assert findings == []

    def test_derived_streams_are_clean(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def make_rng(seed, stream):
                return random.Random("%d/%s" % (seed, stream))
        """, select={"FLO002"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            RNG = random.Random(7)  # repro-lint: disable=FLO002
        """, select={"FLO002"})
        assert findings == []


class TestFlo003ReseedInLoop:
    def test_flags_construction_in_sim_loop(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def run(seeds):
                out = []
                for s in seeds:
                    rng = random.Random(s)
                    out.append(rng.random())
                return out
        """, relpath="sim/hot.py", select={"FLO003"})
        assert rule_ids(findings) == ["FLO003"]

    def test_flags_reseed_in_while_loop(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def run(rng, n):
                while n > 0:
                    rng.seed(n)
                    n -= 1
        """, relpath="sim/hot.py", select={"FLO003"})
        assert rule_ids(findings) == ["FLO003"]

    def test_comprehension_hoist_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def make_lanes(seeds):
                return [random.Random(s) for s in seeds]
        """, relpath="sim/hot.py", select={"FLO003"})
        assert findings == []

    def test_outside_sim_scope_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def run(seeds):
                out = []
                for s in seeds:
                    out.append(random.Random(s))
                return out
        """, select={"FLO003"})
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import random

            def run(seeds):
                out = []
                for s in seeds:
                    out.append(random.Random(s))  # repro-lint: disable=FLO003
                return out
        """, relpath="sim/hot.py", select={"FLO003"})
        assert findings == []


class TestBlanketSuppression:
    def test_disable_without_rule_list_silences_everything(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import time
            START = time.time()  # repro-lint: disable
        """)
        assert findings == []


class TestParseErrors:
    def test_unparsable_file_yields_parse_finding(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert rule_ids(findings) == ["PARSE"]
        assert findings[0].severity == "error"


class TestRegistry:
    def test_all_families_registered(self):
        ids = {rule.id for rule in default_rules()}
        for family in ("DET", "ENV", "PAR", "GEN", "COV", "FLO"):
            assert any(rule_id.startswith(family) for rule_id in ids), (
                "no %s rules registered" % family
            )

    def test_rules_have_metadata(self):
        for rule in default_rules():
            assert rule.id
            assert rule.severity in ("error", "warning")
            assert rule.description


@pytest.mark.parametrize("family",
                         ["DET", "ENV", "PAR", "GEN", "COV", "FLO"])
def test_each_family_fails_lint_on_seeded_fixture(tmp_path, family):
    """Acceptance: one seeded violation per family exits non-zero."""
    from repro.analysis.cli import run_lint

    fixtures = {
        "DET": ("mod.py", "import time\nSTART = time.time()\n"),
        "ENV": ("mod.py",
                "import os\nLIMIT = os.environ.get('REPRO_LIMIT')\n"),
        "PAR": ("mod.py", (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(cells):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(lambda c: c, 1)\n"
        )),
        "GEN": ("mod.py", "def f(src):\n    exec(src)\n"),
        "COV": ("repro/sim/machine.py", (
            "class Machine:\n"
            "    def tick(self, dt):\n"
            "        self._leak = dt\n"
        )),
        "FLO": ("mod.py", "import random\nRNG = random.Random(7)\n"),
    }
    relpath, source = fixtures[family]
    (tmp_path / relpath).parent.mkdir(parents=True, exist_ok=True)
    (tmp_path / relpath).write_text(source)
    exit_code = run_lint([str(tmp_path), "--select", family,
                          "--root", str(tmp_path)])
    assert exit_code == 1
