"""GEN audit over real generated span kernels.

Two layers:

* the kernel *templates* (the representative shape matrix
  :func:`repro.sim.spanplan.template_shapes` exports for the analyzer)
  all generate contract-clean source, and that source actually
  ``exec``-compiles under the empty-``__builtins__`` namespace the
  runtime uses;
* the shapes a *live* batch-backend simulation compiles — whatever ends
  up in ``spanplan._KERNEL_CODE_CACHE`` after driving a contended
  machine — audit clean too, so the audit surface cannot silently
  drift from what production spans really run.

Plus negative coverage: doctored kernel sources violating each clause
of the contract are caught.
"""

from __future__ import annotations

import pytest

from repro.analysis.rules_gen import audit_kernel_source
from repro.sim import spanplan
from repro.sim.batch import BACKEND_BATCH
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from tests.conftest import make_bg, make_fg


def _violation_messages(source):
    return [violation.message
            for violation in audit_kernel_source(source)]


def _shape_id(shape):
    """Readable test id for both machine-span and cell-axis shapes."""
    if shape[0] == "cell":
        return "cell-lanes%d-snap%d-g%d" % (
            len(shape[2]), shape[5], len(shape[7])
        )
    dedup = shape[10] != tuple(range(len(shape[1])))
    return "lanes%d-j%d-s%d-e%d-st%d-d%d" % (
        len(shape[1]), shape[4], shape[5], shape[8], shape[9], dedup
    )


def _machine_shapes():
    return [s for s in spanplan.template_shapes() if s[0] != "cell"]


def _cell_shapes():
    return [s for s in spanplan.template_shapes() if s[0] == "cell"]


class TestTemplatesConform:
    @pytest.mark.parametrize(
        "shape", spanplan.template_shapes(), ids=_shape_id,
    )
    def test_template_generates_clean_source(self, shape):
        source = spanplan.generate_kernel_source(shape)
        assert audit_kernel_source(source) == []

    @pytest.mark.parametrize(
        "shape", spanplan.template_shapes(), ids=_shape_id,
    )
    def test_template_compiles_without_builtins(self, shape):
        source = spanplan.generate_kernel_source(shape)
        namespace = {"__builtins__": {}}
        exec(compile(source, "<test>", "exec"), namespace)
        assert callable(namespace["_factory"])

    def test_templates_cover_both_memo_modes(self):
        jitters = {shape[4] for shape in _machine_shapes()}
        assert jitters == {True, False}

    def test_templates_cover_stolen_and_energy(self):
        shapes = _machine_shapes()
        assert {shape[9] for shape in shapes} == {True, False}
        assert {shape[8] for shape in shapes} == {True, False}

    def test_templates_cover_clone_dedup_kernels(self):
        # The clone-lane dedup variants (classes mapping several lanes
        # to one representative) must be in the audited matrix, plain
        # and stolen/snap alike, alongside the identity-class shapes.
        dedup = [
            shape for shape in _machine_shapes()
            if shape[10] != tuple(range(len(shape[1])))
        ]
        assert dedup, "template matrix must include dedup shapes"
        assert {shape[9] for shape in dedup} == {True, False}
        for shape in dedup:
            assert not shape[4], "dedup kernels are jitter-free"

    def test_cell_templates_cover_snap_and_guard_modes(self):
        shapes = _cell_shapes()
        assert shapes, "template matrix must include cell-axis shapes"
        assert {shape[5] for shape in shapes} == {True, False}
        assert any(shape[7] for shape in shapes)
        assert any(not shape[7] for shape in shapes)

    def test_cell_templates_never_carry_entropy_axes(self):
        # Cell-axis kernels are jitter-free, energy-free, stolen-free
        # by construction: their shape tuple has no such axes at all,
        # and the generated source must not draw randomness.
        for shape in _cell_shapes():
            source = spanplan.generate_kernel_source(shape)
            assert "rnd_" not in source
            assert "acc_e" not in source


class TestLiveKernelsConform:
    def test_compiled_shapes_from_live_run_audit_clean(self):
        config = MachineConfig(
            seed=5, os_jitter_sigma=0.015, cache_inertia_tau_s=0.15,
            timer_jitter_prob=0.0,
        )
        machine = Machine(config, backend=BACKEND_BATCH)
        machine.spawn(make_fg(input_noise=0.05), core=0, nice=-5)
        for core in range(1, config.num_cores):
            machine.spawn(make_bg(heavy=core % 2 == 0), core=core, nice=5)
        machine.settle_cache()
        machine.run_ticks(2_000)
        stats = machine.backend_stats()
        assert stats["compiled_ticks"] > 0

        audited = 0
        for shape in spanplan._KERNEL_CODE_CACHE:
            source = spanplan.generate_kernel_source(shape)
            assert audit_kernel_source(source) == [], (
                "live shape %r generated non-conforming code" % (shape,)
            )
            audited += 1
        assert audited >= 1


class TestDoctoredSourcesCaught:
    def test_global_name_resolution_caught(self):
        messages = _violation_messages(
            "def _factory(plan, e_):\n"
            "    def run(span):\n"
            "        return math.exp(span)\n"
            "    return run\n"
        )
        assert any("resolves to a global" in message
                   for message in messages)

    def test_non_allowlisted_call_caught(self):
        messages = _violation_messages(
            "def _factory(plan, e_):\n"
            "    p = plan.printer\n"
            "    def run(span):\n"
            "        p(span)\n"
            "        return span\n"
            "    return run\n"
        )
        assert any("non-allowlisted name 'p'" in message
                   for message in messages)

    def test_in_loop_attribute_caught(self):
        messages = _violation_messages(
            "def _factory(plan, e_):\n"
            "    m = plan.machine\n"
            "    def run(span):\n"
            "        executed = 0\n"
            "        while executed < span:\n"
            "            executed = executed + m.rho\n"
            "        return executed\n"
            "    return run\n"
        )
        assert any("inside a lane loop" in message
                   for message in messages)

    def test_import_in_generated_code_caught(self):
        messages = _violation_messages(
            "import math\n"
            "def _factory(plan, e_):\n"
            "    def run(span):\n"
            "        return span\n"
            "    return run\n"
        )
        assert any("must not import" in message for message in messages)
        assert any("exactly one factory function" in message
                   for message in messages)

    def test_unparsable_source_caught(self):
        messages = _violation_messages("def _factory(:\n")
        assert any("does not parse" in message for message in messages)
