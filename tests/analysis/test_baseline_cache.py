"""Tests for the analyzer's plumbing added with the COV/FLO families:

* findings baseline (filtering, update, staleness accounting),
* the content-hash incremental cache (module and project reuse,
  invalidation on edits),
* overlapping-path dedupe,
* decorator-expression finding anchoring,
* the git-aware ``--changed`` mode.
"""

import json
import subprocess
import textwrap
from pathlib import Path

from repro.analysis.baseline import (
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    save_baseline,
)
from repro.analysis.cache import LintCache
from repro.analysis.cli import run_lint
from repro.analysis.core import (
    Finding,
    analyze_paths,
    default_rules,
    run_analysis,
)


def write_tree(tmp_path, files):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def det_rules():
    return [r for r in default_rules() if r.id.startswith("DET")]


BAD_SOURCE = "import time\nSTART = time.time()\n"


class TestBaseline:
    def test_round_trip_filters_known_findings(self, tmp_path):
        tree = write_tree(tmp_path / "src", {"mod.py": BAD_SOURCE})
        findings = analyze_paths([tree], rules=det_rules(), root=tree)
        assert len(findings) == 1
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, findings, tree)
        entries = load_baseline(baseline)
        surviving, baselined, stale = apply_baseline(
            findings, entries, tree)
        assert surviving == []
        assert baselined == 1
        assert stale == []

    def test_new_findings_survive_the_baseline(self, tmp_path):
        tree = write_tree(tmp_path / "src", {"mod.py": BAD_SOURCE})
        findings = analyze_paths([tree], rules=det_rules(), root=tree)
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, findings, tree)
        (tree / "fresh.py").write_text(BAD_SOURCE)
        findings = analyze_paths([tree], rules=det_rules(), root=tree)
        surviving, baselined, stale = apply_baseline(
            findings, load_baseline(baseline), tree)
        assert [f.path for f in surviving] == [str(tree / "fresh.py")]
        assert baselined == 1
        assert stale == []

    def test_fixed_findings_become_stale_entries(self, tmp_path):
        tree = write_tree(tmp_path / "src", {"mod.py": BAD_SOURCE})
        findings = analyze_paths([tree], rules=det_rules(), root=tree)
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, findings, tree)
        (tree / "mod.py").write_text("START = 0.0\n")
        surviving, baselined, stale = apply_baseline(
            analyze_paths([tree], rules=det_rules(), root=tree),
            load_baseline(baseline), tree)
        assert surviving == []
        assert baselined == 0
        assert len(stale) == 1

    def test_multiplicity_respected(self, tmp_path):
        finding = Finding(rule="DET001", severity="error",
                          path="mod.py", line=2, col=0, message="dup")
        twin = Finding(rule="DET001", severity="error",
                       path="mod.py", line=9, col=0, message="dup")
        one_entry = [finding_fingerprint(finding, None)]
        surviving, baselined, _ = apply_baseline(
            [finding, twin], one_entry, None)
        assert baselined == 1
        assert len(surviving) == 1

    def test_cli_gate_with_baseline(self, tmp_path, capsys):
        tree = write_tree(tmp_path / "src", {"mod.py": BAD_SOURCE})
        baseline = tmp_path / "baseline.json"
        # Without a baseline the tree fails the gate ...
        assert run_lint([str(tree), "--root", str(tree),
                         "--select", "DET"]) == 1
        # ... --update-baseline freezes the findings ...
        assert run_lint([str(tree), "--root", str(tree),
                         "--select", "DET", "--baseline", str(baseline),
                         "--update-baseline"]) == 0
        # ... and the gate passes with them baselined.
        assert run_lint([str(tree), "--root", str(tree),
                         "--select", "DET", "--baseline", str(baseline),
                         "--format", "json"]) == 0
        capsys.readouterr()

    def test_missing_baseline_fails_loudly(self, tmp_path):
        tree = write_tree(tmp_path / "src", {"mod.py": "X = 1\n"})
        try:
            run_lint([str(tree), "--root", str(tree),
                      "--baseline", str(tmp_path / "nope.json")])
        except SystemExit as exc:
            assert "does not exist" in str(exc)
        else:
            raise AssertionError("expected SystemExit")


class TestIncrementalCache:
    def test_warm_run_reuses_everything(self, tmp_path):
        tree = write_tree(tmp_path / "src", {
            "a.py": BAD_SOURCE, "b.py": "X = 1\n",
        })
        cold = run_analysis([tree], rules=det_rules(), root=tree,
                            cache=LintCache(tree))
        assert cold.cache_stats["files_reused"] == 0
        assert cold.cache_stats["files_analyzed"] == 2
        warm = run_analysis([tree], rules=det_rules(), root=tree,
                            cache=LintCache(tree))
        assert warm.cache_stats["files_reused"] == 2
        assert warm.cache_stats["files_analyzed"] == 0
        assert warm.findings == cold.findings
        assert warm.rule_stats["DET001"].findings == 1

    def test_edited_file_invalidates_only_itself(self, tmp_path):
        tree = write_tree(tmp_path / "src", {
            "a.py": BAD_SOURCE, "b.py": "X = 1\n",
        })
        run_analysis([tree], rules=det_rules(), root=tree,
                     cache=LintCache(tree))
        (tree / "b.py").write_text("X = 2\n")
        result = run_analysis([tree], rules=det_rules(), root=tree,
                              cache=LintCache(tree))
        assert result.cache_stats["files_reused"] == 1
        assert result.cache_stats["files_analyzed"] == 1

    def test_suppressed_counts_survive_cache_replay(self, tmp_path):
        tree = write_tree(tmp_path / "src", {
            "a.py": "import time\n"
                    "START = time.time()  # repro-lint: disable=DET001\n",
        })
        cold = run_analysis([tree], rules=det_rules(), root=tree,
                            cache=LintCache(tree))
        assert cold.suppressed == 1
        warm = run_analysis([tree], rules=det_rules(), root=tree,
                            cache=LintCache(tree))
        assert warm.cache_stats["files_reused"] == 1
        assert warm.suppressed == 1

    def test_project_pass_reuses_and_invalidates(self, tmp_path):
        tree = write_tree(tmp_path / "src", {
            "repro/experiments/harness.py": """\
                CACHE_KEY_FIELDS = {
                    "run": ("mix", "seed"),
                }


                def run_cached(disk, mix, seed):
                    return disk.get("run", (mix, seed))
            """,
        })
        rules = [r for r in default_rules() if r.id == "COV003"]
        cold = run_analysis([tree], rules=rules, root=tree,
                            cache=LintCache(tree))
        assert cold.cache_stats["project_reused"] is False
        warm = run_analysis([tree], rules=rules, root=tree,
                            cache=LintCache(tree))
        assert warm.cache_stats["project_reused"] is True
        assert warm.findings == cold.findings == []
        # Editing the harness invalidates the project entry and the
        # re-run sees the new violation.
        path = tree / "repro" / "experiments" / "harness.py"
        path.write_text(path.read_text().replace(
            'disk.get("run", (mix, seed))',
            'disk.get("rogue", (mix, seed))',
        ))
        edited = run_analysis([tree], rules=rules, root=tree,
                              cache=LintCache(tree))
        assert edited.cache_stats["project_reused"] is False
        # Two findings: the undeclared "rogue" namespace, and the
        # now-unused declared "run" row.
        assert [f.rule for f in edited.findings] == ["COV003", "COV003"]

    def test_cli_cache_flag_reports_stats(self, tmp_path, capsys):
        tree = write_tree(tmp_path / "src", {"a.py": "X = 1\n"})
        cache_dir = tmp_path / "lintcache"
        for expected_reused in (0, 1):
            assert run_lint([str(tree), "--root", str(tree),
                             "--cache", "--cache-dir", str(cache_dir),
                             "--format", "json"]) == 0
            document = json.loads(capsys.readouterr().out)
            assert document["cache"]["enabled"] is True
            assert document["cache"]["files_reused"] == expected_reused


class TestOverlappingPathDedupe:
    def test_nested_paths_report_once(self, tmp_path):
        tree = write_tree(tmp_path, {"pkg/mod.py": BAD_SOURCE})
        findings = analyze_paths([tree, tree / "pkg",
                                  tree / "pkg" / "mod.py"],
                                 rules=det_rules(), root=tree)
        assert len(findings) == 1


class TestDecoratorAnchoring:
    SOURCE = """\
        import time


        def deco(stamp):
            def wrap(fn):
                return fn
            return wrap


        @deco(time.time())
        def handler():
            return 1
    """

    def test_finding_anchors_at_the_def_line(self, tmp_path):
        tree = write_tree(tmp_path, {"mod.py": self.SOURCE})
        findings = analyze_paths([tree], rules=det_rules(), root=tree)
        assert [f.rule for f in findings] == ["DET001"]
        # Line 11 is `def handler():`, not line 10 (the decorator).
        assert findings[0].line == 11

    def test_suppression_on_the_def_line_works(self, tmp_path):
        source = self.SOURCE.replace(
            "def handler():",
            "def handler():  # repro-lint: disable=DET001",
        )
        tree = write_tree(tmp_path, {"mod.py": source})
        assert analyze_paths([tree], rules=det_rules(),
                             root=tree) == []


class TestChangedMode:
    def _git(self, cwd, *args):
        subprocess.run(["git", "-C", str(cwd), *args], check=True,
                       capture_output=True)

    def _init_repo(self, tmp_path):
        tree = write_tree(tmp_path, {
            "clean.py": BAD_SOURCE,      # committed: excluded from --changed
            "untouched.py": "X = 1\n",
        })
        self._git(tree, "init", "-q")
        self._git(tree, "-c", "user.email=t@example.invalid",
                  "-c", "user.name=t", "add", ".")
        self._git(tree, "-c", "user.email=t@example.invalid",
                  "-c", "user.name=t", "commit", "-q", "-m", "seed")
        return tree

    def test_only_changed_files_are_linted(self, tmp_path, capsys):
        tree = self._init_repo(tmp_path)
        (tree / "fresh.py").write_text(BAD_SOURCE)
        exit_code = run_lint([str(tree), "--root", str(tree),
                              "--select", "DET", "--changed",
                              "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert document["summary"]["checked_files"] == 1
        assert [Path(f["path"]).name
                for f in document["findings"]] == ["fresh.py"]

    def test_clean_worktree_lints_nothing(self, tmp_path, capsys):
        tree = self._init_repo(tmp_path)
        exit_code = run_lint([str(tree), "--root", str(tree),
                              "--select", "DET", "--changed",
                              "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert document["summary"]["checked_files"] == 0

    def test_outside_git_fails_loudly(self, tmp_path):
        tree = write_tree(tmp_path, {"mod.py": "X = 1\n"})
        try:
            run_lint([str(tree), "--root", str(tree), "--changed"])
        except SystemExit as exc:
            assert "git" in str(exc)
        else:
            raise AssertionError("expected SystemExit")
