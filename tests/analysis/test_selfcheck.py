"""Self-check: the shipped ``repro`` package is lint-clean.

This is the analyzer's own acceptance gate — the same invocation CI
runs.  If a change to ``src/repro`` trips a rule, this test fails with
the findings in the assertion message; either fix the violation or (for
a reviewed false positive) add an inline
``# repro-lint: disable=RULE`` with a justification comment.
"""

import json
from pathlib import Path

import repro
from repro.__main__ import main
from repro.analysis.core import analyze_paths


PACKAGE_DIR = Path(repro.__file__).resolve().parent
REPO_ROOT = PACKAGE_DIR.parent.parent


class TestShippedTreeIsClean:
    def test_analyzer_reports_no_findings(self):
        findings = analyze_paths([PACKAGE_DIR],
                                 root=PACKAGE_DIR.parent)
        assert findings == [], "\n".join(
            "%s: %s %s" % (finding.location(), finding.rule,
                           finding.message)
            for finding in findings
        )

    def test_cli_lint_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out

    def test_cli_lint_json_document(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 2
        assert document["findings"] == []
        assert document["summary"]["errors"] == 0
        assert document["summary"]["checked_files"] > 40
        assert document["summary"]["suppressed"] == 0
        # Per-rule stats cover every registered rule, with timings.
        stats = document["rule_stats"]
        for rule_id in ("DET001", "COV001", "FLO001", "GEN003"):
            assert rule_id in stats
            assert stats[rule_id]["findings"] == 0
            assert stats[rule_id]["time_s"] >= 0.0

    def test_shipped_tree_is_clean_against_committed_baseline(self,
                                                              capsys):
        """The CI gate invocation: zero un-baselined findings.

        The committed baseline is empty (the tree lints clean), so this
        both validates the gate wiring and pins the tree-is-clean
        property; a finding can only land by being fixed, suppressed
        inline, or explicitly baselined in review.
        """
        baseline = REPO_ROOT / ".repro-lint-baseline.json"
        assert baseline.exists(), "committed baseline file is missing"
        document = json.loads(baseline.read_text())
        assert document["findings"] == [], (
            "the committed baseline should be empty while the tree "
            "lints clean"
        )
        assert main(["lint", "--baseline", str(baseline),
                     "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["errors"] == 0
        assert report["summary"]["baselined"] == 0
        assert report["summary"]["stale_baseline_entries"] == 0

    def test_list_rules_marks_project_rules(self, capsys):
        assert main(["lint", "--list-rules", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        kinds = {row["id"]: row["kind"] for row in document["rules"]}
        for rule_id in ("COV001", "COV002", "COV003", "GEN002", "GEN003",
                        "ENV003"):
            assert kinds[rule_id] == "project"
        for rule_id in ("DET001", "FLO001", "FLO002", "FLO003"):
            assert kinds[rule_id] == "module"


class TestCliSurface:
    def test_lint_fails_on_fixture_violation(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\nSTART = time.time()\n"
        )
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_lint_json_findings_parse(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\nSTART = time.time()\n"
        )
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] >= 1
        rules = {finding["rule"] for finding in document["findings"]}
        assert "DET001" in rules

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "ENV001", "PAR001", "GEN001"):
            assert rule_id in out

    def test_select_unknown_rule_errors(self, tmp_path):
        try:
            main(["lint", str(tmp_path), "--select", "NOPE"])
        except SystemExit as exc:
            assert "unknown rule selector" in str(exc)
        else:
            raise AssertionError("expected SystemExit")

    def test_select_family_filters(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import os\nimport time\n"
            "START = time.time()\n"
            "LIMIT = os.environ.get('REPRO_LIMIT')\n"
        )
        assert main(["lint", str(tmp_path), "--select", "ENV"]) == 1
        out = capsys.readouterr().out
        assert "ENV" in out
        assert "DET001" not in out
