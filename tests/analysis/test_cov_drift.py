"""Doctored-drift self-check for the COV state-coverage rules.

The acceptance property of the COV family is *sensitivity on the real
code*: take the shipped scalar kernel verbatim, inject one fake
hot-state mutation, and the analyzer must flag it against both backend
registries.  A fixture-only test could pass with an extractor that
never understands the real ``Machine.tick``; this one cannot.
"""

from pathlib import Path

import repro
from repro.analysis.core import analyze_paths, default_rules
from repro.analysis.rules_cov import extract_hot_state
from repro.sim.spanplan import KERNEL_STATE
from repro.sim.vector import CELL_COLUMNS


PACKAGE_DIR = Path(repro.__file__).resolve().parent
MACHINE_SOURCE = PACKAGE_DIR / "sim" / "machine.py"

#: The mutation injected into the copied kernel; deliberately named so
#: it can never collide with real state.
PROBE = "_drift_probe"


def _cov_rules():
    return [rule for rule in default_rules()
            if rule.id in ("COV001", "COV002")]


def _doctored_tree(tmp_path, extra_line):
    """Copy the real machine module with one injected tick statement."""
    text = MACHINE_SOURCE.read_text(encoding="utf-8")
    anchor = "        self._rho = rho"
    assert anchor in text, (
        "machine.py no longer contains the tick anchor statement this "
        "test splices after; update the anchor"
    )
    doctored = text.replace(anchor, anchor + "\n" + extra_line, 1)
    target = tmp_path / "repro" / "sim" / "machine.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(doctored, encoding="utf-8")
    return tmp_path


class TestDoctoredDrift:
    def test_fake_hot_state_attribute_is_flagged(self, tmp_path):
        tree = _doctored_tree(
            tmp_path, "        self.%s = rho" % PROBE)
        findings = analyze_paths([tree], rules=_cov_rules(), root=tree)
        assert sorted(f.rule for f in findings) == ["COV001", "COV002"]
        for finding in findings:
            assert "'%s'" % PROBE in finding.message
            assert finding.severity == "error"

    def test_fake_process_mutation_is_flagged(self, tmp_path):
        tree = _doctored_tree(
            tmp_path, "        proc.%s = rho" % PROBE)
        findings = analyze_paths([tree], rules=_cov_rules(), root=tree)
        assert sorted(f.rule for f in findings) == ["COV001", "COV002"]
        assert all("'process.%s'" % PROBE in f.message for f in findings)

    def test_undoctored_copy_is_clean(self, tmp_path):
        text = MACHINE_SOURCE.read_text(encoding="utf-8")
        target = tmp_path / "repro" / "sim" / "machine.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
        findings = analyze_paths([tmp_path], rules=_cov_rules(),
                                 root=tmp_path)
        assert findings == [], "\n".join(f.message for f in findings)


class TestExtractionMatchesRegistries:
    """The extraction, registries, and allowlist agree exactly.

    This is the same invariant COV001/COV002 enforce, asserted directly
    so a failure names the exact sets instead of a finding list.
    """

    def test_registries_are_identical(self):
        assert set(CELL_COLUMNS) == set(KERNEL_STATE)

    def test_extraction_covers_registry_and_allowlist(self):
        import ast

        from repro.analysis.core import SourceModule
        from repro.analysis.rules_cov import parse_scalar_only

        text = MACHINE_SOURCE.read_text(encoding="utf-8")
        module = SourceModule(MACHINE_SOURCE, "repro/sim/machine.py",
                              text, ast.parse(text))
        extracted = extract_hot_state(module)
        scalar_only = parse_scalar_only(module)
        assert extracted is not None
        assert scalar_only, "SCALAR_ONLY_STATE should not be empty"
        assert extracted == set(CELL_COLUMNS) | scalar_only
