"""SARIF 2.1.0 reporter tests.

Structural assertions always run; full schema validation runs when the
``jsonschema`` package is importable (it is not installed in every CI
leg) against the trimmed 2.1.0 schema shipped next to this test.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.core import Finding, default_rules
from repro.analysis.reporters import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
)


SCHEMA_PATH = Path(__file__).with_name("sarif-2.1.0-subset.schema.json")

FINDINGS = [
    Finding(rule="DET001", severity="error", path="/work/repro/sim/hot.py",
            line=12, col=4, message="wall clock read at import time"),
    Finding(rule="COV001", severity="error", path="/work/repro/sim/machine.py",
            line=1, col=0, message="hot-state mutation '_leak' uncovered"),
    Finding(rule="DET003", severity="warning", path="outside/of/root.py",
            line=3, col=0, message="set iteration in hot path"),
]


def _log(findings=FINDINGS, root=Path("/work")):
    return json.loads(render_sarif(findings, rules=default_rules(),
                                   root=root))


class TestSarifStructure:
    def test_log_skeleton(self):
        log = _log()
        assert log["$schema"] == SARIF_SCHEMA_URI
        assert log["version"] == SARIF_VERSION
        assert len(log["runs"]) == 1
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == len(FINDINGS)

    def test_rules_metadata_covers_registry(self):
        log = _log()
        rows = log["runs"][0]["tool"]["driver"]["rules"]
        ids = {row["id"] for row in rows}
        assert {"DET001", "COV001", "FLO001", "GEN003"} <= ids
        for row in rows:
            assert row["shortDescription"]["text"]
            assert row["defaultConfiguration"]["level"] in ("error",
                                                            "warning")
            assert row["properties"]["kind"] in ("module", "project")

    def test_result_fields_and_levels(self):
        results = _log()["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        assert by_rule["DET001"]["level"] == "error"
        assert by_rule["DET003"]["level"] == "warning"
        assert by_rule["DET001"]["message"]["text"] == (
            "wall clock read at import time"
        )

    def test_locations_relativized_and_one_based(self):
        results = _log()["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        loc = by_rule["DET001"]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "repro/sim/hot.py"
        assert loc["region"]["startLine"] == 12
        assert loc["region"]["startColumn"] == 5  # col 4, SARIF 1-based
        # A path outside the root stays as given rather than escaping
        # it with ".." segments.
        outside = by_rule["DET003"]["locations"][0]["physicalLocation"]
        assert outside["artifactLocation"]["uri"] == "outside/of/root.py"

    def test_empty_run_is_valid_shape(self):
        log = _log(findings=[])
        assert log["runs"][0]["results"] == []


class TestSarifSchemaValidation:
    def test_log_validates_against_sarif_2_1_0_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
        jsonschema.validate(_log(), schema)
        jsonschema.validate(_log(findings=[]), schema)

    def test_doctored_log_fails_validation(self):
        """The schema subset actually constrains — it is not vacuous."""
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
        log = _log()
        log["version"] = "9.9.9"
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate(log, schema)
        log = _log()
        log["runs"][0]["results"][0]["level"] = "fatal"
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate(log, schema)
