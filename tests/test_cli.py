"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main
from repro.experiments.figures import FIGURES


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_figure_command_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "nope"])

    def test_figure_options(self):
        args = build_parser().parse_args(
            ["figure", "fig4", "--executions", "7", "--seed", "3",
             "--max-rows", "2"]
        )
        assert args.name == "fig4"
        assert args.executions == 7
        assert args.seed == 3
        assert args.max_rows == 2

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.profile is None
        assert args.skip_floors is False

    def test_bench_profile_flag(self):
        args = build_parser().parse_args(["bench", "--profile"])
        assert args.profile == "bench_profile.pstats"
        args = build_parser().parse_args(
            ["bench", "--profile", "out.pstats", "--skip-floors"]
        )
        assert args.profile == "out.pstats"
        assert args.skip_floors is True


class TestMain:
    def test_list_prints_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(FIGURES)

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "bodytrack" in out
        assert "Rotate BG" in out

    def test_figure_runs_driver(self, capsys):
        assert main(["figure", "fig6", "--executions", "8"]) == 0
        out = capsys.readouterr().out
        assert "Prediction Trace" in out

    def test_figure_max_rows_truncates(self, capsys):
        assert main(
            ["figure", "fig6", "--executions", "8", "--max-rows", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "more rows" in out

    def test_bench_loads_harness_module(self):
        from repro.__main__ import _load_bench_module

        bench = _load_bench_module()
        assert callable(bench.run_benchmark)
        assert callable(bench.check_floors)
        # The floor checker accepts the artifact shape run_benchmark
        # emits; a wrong artifact must raise, not pass silently.
        with pytest.raises((AssertionError, KeyError, TypeError)):
            bench.check_floors({})
