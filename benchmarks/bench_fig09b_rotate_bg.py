"""Figure 9b: FG success and BG throughput, 20 rotate-BG mixes x 5 policies.

Paper shape: same ordering as the single-BG mixes under context-switch
style interference.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig9b_rotate_bg(benchmark, executions):
    result = run_once(benchmark, figures.fig9b, executions=executions)
    assert len(result.rows) == 20 * 5
    table = {}
    for mix, policy, success, bg, mean, std in result.rows:
        table.setdefault(policy, []).append((success, bg))

    def avg(policy, idx):
        rows = table[policy]
        return sum(r[idx] for r in rows) / len(rows)

    assert avg("Baseline", 0) < 0.8
    assert avg("Dirigent", 0) > 0.93
    assert avg("Dirigent", 1) > avg("StaticBoth", 1)
    assert avg("DirigentFreq", 0) > avg("Baseline", 0)
