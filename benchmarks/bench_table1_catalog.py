"""Table 1: benchmark inventory."""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_table1(benchmark):
    result = run_once(benchmark, figures.table1)
    kinds = [row[0] for row in result.rows]
    assert kinds.count("FG") == 5
    assert kinds.count("Single BG") == 3
    assert kinds.count("Rotate BG") == 4
