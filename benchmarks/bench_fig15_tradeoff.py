"""Figure 15: FG-throughput / BG-performance tradeoff, raytrace + bwaves.

Paper shape: Dirigent tracks the target completion time across the sweep
(at 1.00x standalone there is no collocation slack, so BG throughput
collapses and deadlines are missed) and converts every grant of FG slack
into BG throughput.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig15_tradeoff(benchmark, executions):
    result = run_once(benchmark, figures.fig15, executions=executions)
    targets = [float(row[0][:-1]) for row in result.rows]
    fg_means = [row[1] for row in result.rows]
    bg = [row[3] for row in result.rows]
    success = [row[4] for row in result.rows]

    # FG completion stays at or below the target across the sweep and
    # stretches upward as the target loosens.
    for target, mean in zip(targets[1:], fg_means[1:]):
        assert mean < target + 0.02
    assert fg_means[-1] > fg_means[0] + 0.03

    # Looser targets buy BG throughput, monotonically in trend.
    assert bg[0] < 0.2            # no slack at standalone-speed target
    assert bg[-1] > 0.6
    assert bg[-1] > bg[1] + 0.3

    # High success once the target is feasible for collocation.
    assert all(s > 0.9 for s in success[3:])
