"""Figure 3: the predictor's worked example (Equations 1-2)."""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig3_worked_example(benchmark):
    result = run_once(benchmark, figures.fig3)
    assert len(result.rows) == 3
    for row in result.rows:
        __, profiled, measured, alpha, penalty = row
        assert measured > profiled          # contended run is slower
        assert alpha == round(measured / profiled, 3)
        assert penalty == round(measured - profiled, 4)  # Equation 1
    note = result.notes[0]
    predicted = float(note.split(":")[1].strip().split()[0])
    actual = float(note.split(":")[2].strip().split()[0])
    assert abs(predicted - actual) / actual < 0.10
