"""Figure 9a: FG success and BG throughput, 15 single-BG mixes x 5 policies.

Paper shape per mix: Baseline has full BG throughput but poor FG success;
the static schemes fix FG at a steep BG cost; Dirigent simultaneously
reaches near-perfect FG success and the best managed BG throughput.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def _by_policy(result):
    table = {}
    for mix, policy, success, bg, mean, std in result.rows:
        table.setdefault(policy, []).append((mix, success, bg, mean, std))
    return table


def test_fig9a_single_bg(benchmark, executions):
    result = run_once(benchmark, figures.fig9a, executions=executions)
    assert len(result.rows) == 15 * 5
    table = _by_policy(result)

    def avg(policy, idx):
        rows = table[policy]
        return sum(r[idx] for r in rows) / len(rows)

    assert avg("Baseline", 1) < 0.8              # poor FG success
    assert avg("Baseline", 2) == 1.0             # BG reference
    assert avg("StaticBoth", 1) > 0.95           # static partition fixes FG
    assert avg("StaticBoth", 2) < 0.8            # ... at heavy BG cost
    assert avg("Dirigent", 1) > 0.93
    assert avg("Dirigent", 2) > avg("StaticBoth", 2) + 0.1
    assert avg("Dirigent", 2) > avg("DirigentFreq", 2)
