"""Figure 10: summary over all 35 single-FG mixes.

Paper values: Baseline ~0.59 FG / 1.00 BG; StaticFreq ~0.87/0.60;
StaticBoth ~0.99/0.61; DirigentFreq ~0.95/0.85; Dirigent ~0.99/0.92.
The reproduction asserts the ordering and rough factors.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig10_summary(benchmark, executions):
    result = run_once(benchmark, figures.fig10, executions=executions)
    rows = {row[0]: row for row in result.rows}

    baseline = rows["Baseline"]
    static_freq = rows["StaticFreq"]
    static_both = rows["StaticBoth"]
    dirigent_freq = rows["DirigentFreq"]
    dirigent = rows["Dirigent"]

    # FG success ordering: Baseline worst; Dirigent and StaticBoth best.
    assert baseline[1] < 0.75
    assert static_freq[1] > baseline[1]
    assert static_both[1] > 0.95
    assert dirigent_freq[1] > 0.88
    assert dirigent[1] > 0.95

    # BG throughput ordering: Baseline is the reference; static schemes
    # pay heavily; Dirigent keeps most of it.
    assert baseline[2] == 1.0
    assert static_freq[2] < 0.8
    assert static_both[2] < 0.8
    assert dirigent[2] > 0.85
    assert dirigent[2] > dirigent_freq[2] > static_both[2]

    # Headline: ~30% better BG throughput than the coarse scheme.
    assert dirigent[2] / static_both[2] > 1.15
