"""Figure 8: exhaustive cache-partition sweep, streamcluster with PCA.

Paper shape: FG performance improves as its partition grows, with a knee
(5 ways on the paper's machine); Dirigent's coarse controller converges
to a partition near the knee within a few tens of executions.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig8_partition_sweep(benchmark):
    result = run_once(
        benchmark, figures.fig8, executions=10, dirigent_executions=60
    )
    ways = [row[0] for row in result.rows]
    means = [row[1] for row in result.rows]
    assert ways[0] == 2 and ways[-1] == 18

    # Growing the FG partition helps overall.
    assert means[-1] < means[0] * 0.9

    # Knee: most of the total improvement arrives by mid-sweep.
    best = min(means)
    knee_idx = next(
        i for i, m in enumerate(means) if m <= best * 1.07
    )
    assert ways[knee_idx] <= 10

    # The coarse controller converged to a nontrivial partition within
    # the sweep's useful range.
    converged = next(
        int(note.split(":")[1]) for note in result.notes
        if note.startswith("Converged")
    )
    assert 2 <= converged <= ways[knee_idx] + 3
