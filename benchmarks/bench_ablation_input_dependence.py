"""Ablation: predictor accuracy under input-dependent execution time.

Section 7's second stated limitation: Dirigent was evaluated on variation
caused by external interference; "accurate predictions of execution times
in the presence of strong input dependence may require interfaces that
extend Application Heartbeats".  This ablation raises the FG workload's
input-size noise and verifies the midpoint prediction error grows with it
— the per-segment penalty model cannot see input size, exactly as the
paper anticipates.
"""

from dataclasses import replace

from repro.core.policies import BASELINE
from repro.core.runtime import DirigentRuntime, ManagedTask, RuntimeOptions
from repro.experiments.harness import get_profile
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.parsec import FERRET
from benchmarks.conftest import run_once


def _mean_error(executions, input_noise, seed=31):
    config = MachineConfig(seed=seed)
    spec = replace(FERRET, input_noise=input_noise)
    machine = Machine(config)
    fg = machine.spawn(spec, core=0, nice=-5)
    profile = get_profile("ferret", config)
    task = ManagedTask(
        pid=fg.pid, core=fg.core, profile=profile, deadline_s=10.0,
        ema_weight=0.2,
    )
    runtime = DirigentRuntime(
        machine, [task], [],
        options=RuntimeOptions(enable_fine=False, enable_coarse=False),
    )
    machine.add_completion_listener(
        lambda proc, record: runtime.on_fg_completion(
            proc.pid, record.end_s, record.duration_s,
            record.instructions, record.llc_misses,
        )
    )
    runtime.start()
    while len(task.prediction_log) < executions:
        machine.tick()
    errors = [r.relative_error for r in task.prediction_log[3:]]
    return sum(errors) / len(errors)


def test_input_dependence(benchmark, executions):
    def run():
        return {
            noise: _mean_error(executions, noise)
            for noise in (0.005, 0.05, 0.15)
        }

    errors = run_once(benchmark, run)
    # Near-constant inputs: the predictor is extremely accurate alone.
    assert errors[0.005] < 0.02
    # Strong input dependence degrades accuracy, roughly tracking the
    # injected input-size noise (a midpoint prediction cannot know the
    # input-dependent remainder).
    assert errors[0.15] > errors[0.05] > errors[0.005]
    assert errors[0.15] > 0.04
