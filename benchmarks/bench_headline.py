"""Headline claims of the paper's abstract and conclusion.

Paper: Dirigent achieves an 85% reduction in FG completion-time sigma at
a 9% BG performance cost (DirigentFreq: 70% at 15%), and ~30% better BG
throughput than coarse time scale schemes.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_headline(benchmark, executions):
    result = run_once(benchmark, figures.headline, executions=executions)
    rows = {row[0]: row for row in result.rows}

    dirigent_red, dirigent_cost = rows["Dirigent"][1], rows["Dirigent"][2]
    freq_red, freq_cost = rows["DirigentFreq"][1], rows["DirigentFreq"][2]

    assert dirigent_red > 0.75          # paper: 85%
    assert dirigent_cost < 0.20         # paper: 9%
    assert freq_red > 0.6               # paper: 70%
    assert dirigent_cost < freq_cost    # partitioning recovers BG loss
    assert dirigent_red >= freq_red - 0.03

    gain = float(
        [n for n in result.notes if "StaticBoth" in n][0].split(":")[1]
        .strip().rstrip("x")
    )
    assert gain > 1.15                  # paper: ~1.3x
