"""Figure 4: FG workload overview — exec time and MPKI, alone vs contended.

Paper shape: standalone completion times span roughly 0.5-1.6 s; running
against five bwaves tasks inflates both execution time and MPKI for every
FG benchmark, with streamcluster degraded the most.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig4_fg_overview(benchmark, executions):
    result = run_once(benchmark, figures.fig4, executions=executions)
    rows = {row[0]: row for row in result.rows}
    assert len(rows) == 5

    alone_times = [row[1] for row in rows.values()]
    assert 0.3 < min(alone_times) < 0.7
    assert 1.0 < max(alone_times) < 2.0

    for name, row in rows.items():
        __, alone, contended, mpki_alone, mpki_contended = row
        assert contended > alone, name
        assert mpki_contended > mpki_alone, name

    slowdown = {n: r[2] / r[1] for n, r in rows.items()}
    assert slowdown["streamcluster"] == max(slowdown.values())
    assert slowdown["streamcluster"] > 1.4
