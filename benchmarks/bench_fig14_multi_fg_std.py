"""Figure 14: normalized sigma of the multi-FG mixes per configuration.

Paper shape: because all FG copies share one cache partition, adding FG
tasks increases their variation (the paper calls this out explicitly),
yet both Dirigent configurations still reduce sigma far below Baseline
and below the static frequency scheme.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig14_multi_fg_std(benchmark, executions):
    result = run_once(benchmark, figures.fig14, executions=executions)
    table = {}
    for mix, policy, ratio in result.rows:
        table.setdefault(policy, []).append((mix, ratio))

    def avg(policy):
        rows = table[policy]
        return sum(r for _, r in rows) / len(rows)

    assert avg("Baseline") == 1.0
    assert avg("Dirigent") < 0.5
    assert avg("DirigentFreq") < 0.55
    assert avg("StaticFreq") > avg("DirigentFreq")
    assert avg("StaticFreq") > avg("Dirigent")

    # The paper's multi-FG caveat: with more FG copies sharing the
    # partition, Dirigent's normalized sigma tends upward (x1 -> x3).
    x1 = [r for m, r in table["Dirigent"] if " x1 " in m]
    x3 = [r for m, r in table["Dirigent"] if " x3 " in m]
    assert sum(x3) / len(x3) > sum(x1) / len(x1) - 0.1
