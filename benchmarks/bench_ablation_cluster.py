"""Ablation: cluster-level consolidation with per-node Dirigent.

The paper's integration claim: cluster schedulers handle placement;
Dirigent manages each node.  A reservation-based dispatcher packs
latency-critical task streams using measured completion-time
distributions — Dirigent's tighter distributions admit more streams onto
the same rack, and a mixed lockstep cluster shows the per-node benefits
survive aggregation.
"""

from repro.cluster import (
    Cluster,
    ClusterNode,
    ReservationDispatcher,
    StreamRequest,
)
from repro.core.policies import BASELINE, DIRIGENT
from repro.experiments.harness import measure_baseline, run_policy
from repro.experiments.mixes import mix_by_name
from repro.sched.reservation import reservation_for
from benchmarks.conftest import run_once

NODES = 4


def test_cluster_consolidation(benchmark, executions):
    mix = mix_by_name("ferret rs")

    def run():
        baseline = measure_baseline(mix, executions=executions)
        dirigent = run_policy(mix, DIRIGENT, executions=executions)
        period = reservation_for(baseline.all_durations, 0.95) * 1.1

        def admitted(durations):
            dispatcher = ReservationDispatcher(
                num_nodes=NODES, capacity_cores=3.0
            )
            requests = [
                StreamRequest("s%d" % i, period, tuple(durations))
                for i in range(6 * NODES)
            ]
            return dispatcher.place_all(requests)

        cluster = Cluster(
            [
                ClusterNode("unmanaged", mix, BASELINE,
                            executions=executions),
                ClusterNode("managed", mix, DIRIGENT,
                            executions=executions, seed=1),
            ]
        )
        outcome = cluster.run()
        return {
            "baseline_streams": admitted(baseline.all_durations),
            "dirigent_streams": admitted(dirigent.all_durations),
            "unmanaged": outcome.node_results["unmanaged"],
            "managed": outcome.node_results["managed"],
        }

    rows = run_once(benchmark, run)
    # Denser packing with managed distributions (paper: ~30% utilization).
    assert rows["dirigent_streams"] > rows["baseline_streams"]
    # Per-node benefits survive cluster aggregation.
    assert (
        rows["managed"].fg_success_ratio
        > rows["unmanaged"].fg_success_ratio
    )
    assert rows["managed"].fg_stats.std_s < rows["unmanaged"].fg_stats.std_s
