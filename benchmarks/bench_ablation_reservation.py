"""Ablation: reservation-based packing density (Figure 2 in numbers).

Section 3.1's scheduling argument: with a 95%-latency guarantee, a
reservation-based scheduler must reserve the distribution's tail per
task, so Dirigent's low-variance completion times let more task streams
be packed onto the same capacity than Baseline's high-variance ones.
"""

from repro.core.policies import DIRIGENT
from repro.experiments.harness import measure_baseline, run_policy
from repro.experiments.mixes import mix_by_name
from repro.sched.reservation import max_streams, reservation_for
from benchmarks.conftest import run_once


def test_reservation_packing(benchmark, executions):
    mix = mix_by_name("ferret rs")

    def run():
        baseline = measure_baseline(mix, executions=executions)
        dirigent = run_policy(mix, DIRIGENT, executions=executions)
        period = reservation_for(baseline.all_durations, 0.95) * 1.05
        return {
            "baseline_reservation": reservation_for(
                baseline.all_durations, 0.95
            ),
            "dirigent_reservation": reservation_for(
                dirigent.all_durations, 0.95
            ),
            "baseline_streams": max_streams(
                baseline.all_durations, period, capacity_cores=8.0
            ),
            "dirigent_streams": max_streams(
                dirigent.all_durations, period, capacity_cores=8.0
            ),
        }

    rows = run_once(benchmark, run)
    # Lower variance => smaller tail reservation => denser packing.
    assert rows["dirigent_reservation"] < rows["baseline_reservation"]
    assert rows["dirigent_streams"] >= rows["baseline_streams"]
