"""Figure 7: predictor accuracy over all 35 single-FG mixes.

Paper shape: overall average midpoint error of a few percent; every
high-error mix has streamcluster as the FG (worst: rs); the completion
time standard deviation is much larger than the prediction error.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig7_prediction_accuracy(benchmark, executions):
    result = run_once(benchmark, figures.fig7, executions=executions)
    assert len(result.rows) == 35
    by_mix = {row[0]: row for row in result.rows}

    overall = sum(row[1] for row in result.rows) / 35
    assert overall < 0.08  # paper: 2.4%

    high_error = [row[0] for row in result.rows if row[1] > 0.08]
    assert all("streamcluster" in name for name in high_error)

    # streamcluster+rs is the hardest combination (paper: 12.5%).
    sc_errors = {
        name: row[1] for name, row in by_mix.items() if "streamcluster" in name
    }
    assert max(sc_errors, key=sc_errors.get) == "streamcluster rs"

    # Variation dwarfs prediction error for the volatile mixes.
    volatile = [row for row in result.rows if row[2] > 0.10]
    assert volatile, "expected some high-variation mixes"
    assert all(row[2] > 1.5 * row[1] for row in volatile)
