"""Figure 2: reservation-based scheduler efficiency vs. task variance.

Paper shape: high-variance (type A) task streams force larger per-task
reservations, so fewer of them fit on the same capacity than low-variance
(type B) streams.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig2_reservation(benchmark, executions):
    result = run_once(benchmark, figures.fig2, executions=executions)
    rows = {row[0]: row for row in result.rows}
    type_a = rows["TypeA(Baseline)"]
    type_b = rows["TypeB(Dirigent)"]
    assert type_b[1] < type_a[1]      # smaller reservation
    assert type_b[2] > type_a[2]      # more streams admitted
