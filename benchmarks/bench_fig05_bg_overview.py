"""Figure 5: BG workload overview — total L3 misses per kilo-FG-instruction.

Paper shape: the seven BG workloads cover a wide spectrum of contention
pressure, and the FG share of total misses shrinks as BG pressure grows.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig5_bg_overview(benchmark, executions):
    result = run_once(benchmark, figures.fig5, executions=executions)
    assert len(result.rows) == 7

    totals = [row[1] for row in result.rows]
    shares = [row[2] for row in result.rows]
    # Wide spectrum of BG pressure (paper: ~3 to ~13 MPK-FG-I; the
    # synthetic catalog spans a somewhat narrower but still clearly
    # differentiated range).
    assert max(totals) / min(totals) > 1.5
    assert max(totals) > 10.0
    assert min(totals) < 8.0
    # FG generates only a minority of misses under heavy BG pressure.
    assert min(shares) < 0.3
    assert all(0.0 < s < 1.0 for s in shares)
    # Heavier BG pressure leaves the FG a smaller share of the misses:
    # the heaviest mix must have a smaller FG share than the lightest.
    assert result.rows[-1][2] < result.rows[0][2]
