"""Ablation: heartbeat-based progress vs. hardware counters.

The paper measures progress with retired-instruction counters but notes
"more abstract metrics can also be used" (Application Heartbeats).  This
ablation drives the predictor from a heartbeat bridge at two beat
granularities and verifies accuracy degrades gracefully with coarser
beats.
"""

from repro.core.heartbeats import ProcessHeartbeatBridge
from repro.core.policies import BASELINE
from repro.core.runtime import DirigentRuntime, ManagedTask, RuntimeOptions
from repro.experiments.harness import build_machine, get_profile
from repro.experiments.mixes import mix_by_name
from repro.sim.config import MachineConfig
from benchmarks.conftest import run_once


def _run_with_beats(executions, beat_instructions):
    config = MachineConfig()
    mix = mix_by_name("ferret rs")
    machine, fg_procs, bg_procs = build_machine(mix, config)
    fg = fg_procs[0]
    profile = get_profile(mix.fg_name, config)
    bridge = ProcessHeartbeatBridge(lambda: fg.progress, beat_instructions)
    task = ManagedTask(
        pid=fg.pid, core=fg.core, profile=profile, deadline_s=10.0,
        ema_weight=0.2, progress_fn=bridge.progress,
    )
    options = RuntimeOptions(enable_fine=False, enable_coarse=False)
    runtime = DirigentRuntime(machine, [task], [p.pid for p in bg_procs],
                              options=options)

    def on_complete(proc, record):
        if proc.pid == fg.pid:
            bridge.on_execution_complete()
            runtime.on_fg_completion(
                proc.pid, record.end_s, record.duration_s,
                record.instructions, record.llc_misses,
            )

    machine.add_completion_listener(on_complete)
    runtime.start()
    while len(task.prediction_log) < executions:
        machine.tick()
    errors = [r.relative_error for r in task.prediction_log]
    return sum(errors) / len(errors)


def test_heartbeat_progress_source(benchmark, executions):
    def run():
        return {
            "fine_beats": _run_with_beats(executions, beat_instructions=5e6),
            "coarse_beats": _run_with_beats(executions, beat_instructions=1e8),
        }

    errors = run_once(benchmark, run)
    assert errors["fine_beats"] < 0.10
    assert errors["coarse_beats"] < 0.25
    assert errors["fine_beats"] <= errors["coarse_beats"] + 0.02
