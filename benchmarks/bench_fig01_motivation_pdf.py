"""Figure 1: the motivating completion-time pdfs, from measured data.

Paper shape: standalone execution finishes far before the deadline
(wasted headroom); free contention pushes a large mass past the deadline;
Dirigent realizes the "ideal" curve — concentrated just below the
deadline.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def _stats(rows, curve):
    pts = [(t, d) for c, t, d in rows if c == curve and d > 0]
    total = sum(d for _, d in pts)
    mean = sum(t * d for t, d in pts) / total
    var = sum(d * (t - mean) ** 2 for t, d in pts) / total
    return mean, var ** 0.5


def test_fig1_motivation(benchmark, executions):
    result = run_once(benchmark, figures.fig1, executions=executions)
    deadline = float(result.notes[0].split(":")[1].strip().split()[0])

    alone_mean, alone_sigma = _stats(result.rows, "Standalone")
    cont_mean, cont_sigma = _stats(result.rows, "Contention")
    ideal_mean, ideal_sigma = _stats(result.rows, "Ideal(Dirigent)")

    # Standalone: fast, well ahead of the deadline (headroom).
    assert alone_mean < 0.85 * deadline
    # Contention: slow and wide.
    assert cont_mean > alone_mean * 1.15
    assert cont_sigma > 2 * alone_sigma
    # Ideal: just below the deadline with a tight distribution.
    assert alone_mean < ideal_mean <= deadline * 1.02
    assert ideal_sigma < 0.5 * cont_sigma
