"""Ablation: coarse time scale control alone.

The paper omits the coarse-only configuration "because it performs just
slightly worse than StaticBoth" (both use the same partition).  This
ablation verifies that on the substrate: CoarseOnly's FG success and BG
throughput land near StaticBoth's, and both clearly trail Dirigent's BG
throughput.
"""

from repro.core.policies import COARSE_ONLY, DIRIGENT, STATIC_BOTH
from repro.experiments.harness import measure_baseline, run_policy
from repro.experiments.mixes import mix_by_name
from benchmarks.conftest import run_once


def test_coarse_only_matches_static_both(benchmark, executions):
    mix = mix_by_name("ferret rs")

    def run():
        baseline = measure_baseline(mix, executions=executions)
        rows = {}
        for policy in (STATIC_BOTH, COARSE_ONLY, DIRIGENT):
            result = run_policy(mix, policy, executions=executions)
            rows[policy.name] = (
                result.fg_success_ratio,
                result.bg_instr_per_s / baseline.bg_instr_per_s,
            )
        return rows

    rows = run_once(benchmark, run)
    static_fg, static_bg = rows["StaticBoth"]
    coarse_fg, coarse_bg = rows["CoarseOnly"]
    dirigent_fg, dirigent_bg = rows["Dirigent"]

    # CoarseOnly (partition at full BG frequency) lands in StaticBoth's
    # neighbourhood on FG success.
    assert abs(coarse_fg - static_fg) < 0.25
    # Fine time scale control is what recovers BG throughput.
    assert dirigent_bg > coarse_bg - 0.05
    assert dirigent_fg >= 0.9
