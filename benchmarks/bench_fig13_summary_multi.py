"""Figure 13: summary over the multi-FG mixes.

Paper shape: same ordering as Figure 10; Dirigent keeps very high success
rates (>98% in the paper) with the best managed BG throughput.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig13_summary(benchmark, executions):
    result = run_once(benchmark, figures.fig13, executions=executions)
    rows = {row[0]: row for row in result.rows}
    assert rows["Baseline"][1] < 0.85
    assert rows["Dirigent"][1] > 0.9
    assert rows["StaticBoth"][1] > 0.95
    assert rows["Dirigent"][2] > rows["StaticBoth"][2]
    assert rows["Dirigent"][2] > rows["DirigentFreq"][2]
