"""Before/after performance benchmark: tick kernel, backends, sweep.

Measures the layers this repository's experiment pipeline is optimized
along and emits ``BENCH_harness.json`` at the repository root:

1. **Tick kernel**: single-machine tick throughput (default and
   noise-free configurations), best of three fresh machines, against
   the pre-optimization rates recorded in ``baseline_pre_pr.json``.
2. **Backends**: scalar reference kernel vs the event-horizon batch
   engine (``repro.sim.batch``), as ticks/s on an event-sparse workload
   (single FG, no BG, jitter off — long stationary spans) and on the
   contended 'ferret rs' mix — noise-free (the solver-bound regime the
   tabulated fast path targets) and under the default noise config —
   plus an end-to-end Dirigent ``run_policy`` wall-clock under each
   backend.
3. **Multi-cell vector driver**: cell-ticks/s of N homogeneous
   single-FG machines advanced per-machine (batch engines) vs fused
   through one :class:`repro.sim.vector.MultiCell`, at
   N in {1, 16, 64, 256} — a noise-free seed batch with
   execution-scale phases (the floor workload) and the noisy stock
   ferret batch, where per-cell completions trip fused spans
   constantly; partial peels evict only the tripped cells, so the
   fused group survives and the floor is parity vs batch.
4. **Sweep engine + persistent cache**: wall-clock of a 3-mix x
   2-policy figure sweep — serial with cold caches, 4-worker parallel
   with cold caches, and 4-worker parallel with a warm disk cache.
5. **Warm workers**: repeated small sweeps with cleared result caches,
   cold pool (re-spawned per sweep) vs one reused warm pool (persistent
   kernel cache, warm-seeded solver memos, work-stealing dispatch) —
   the cost repeated interactive figure runs actually pay.
6. **Correctness**: the serial and parallel sweeps must produce
   identical RunResults (also property-tested in
   ``tests/experiments/test_parallel.py``; scalar/batch equivalence is
   pinned by ``tests/sim/test_batch_equivalence.py``, vector
   equivalence by ``tests/sim/test_vector_equivalence.py``).

On a single-core host the parallel-cold time roughly matches the
serial-cold time (there is nothing to fan out onto) and the headline
sweep speedup comes from the persistent cache; the artifact records
each component separately so the numbers stay honest across hosts.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_harness.py -q

or through the CLI (optionally under cProfile)::

    PYTHONPATH=src python -m repro bench [--profile profile.pstats]
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import replace
from pathlib import Path

from repro.core.policies import BASELINE, DIRIGENT
from repro.experiments import harness
from repro.experiments.harness import build_machine, run_policy
from repro.experiments.mixes import mix_by_name
from repro.experiments.parallel import (
    ENV_PACK_CELLS,
    default_workers,
    run_grid,
    shutdown_pool,
)
from repro.sim import spanplan
from repro.sim.config import (
    ENV_KERNEL_DISK_CACHE,
    ENV_POOL_REUSE,
    ENV_STEAL,
)
from repro.sim.batch import (
    BACKEND_BATCH,
    BACKEND_SCALAR,
    ENV_BACKEND,
    resolve_backend,
)
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.vector import MultiCell, numpy_available
from repro.workloads.catalog import get_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
PRE_PR_FILE = Path(__file__).with_name("baseline_pre_pr.json")
ARTIFACT = REPO_ROOT / "BENCH_harness.json"

TICKS = 30_000
BACKEND_REPS = 5
SWEEP_MIXES = ("ferret bwaves", "raytrace rs", "bodytrack pca")
SWEEP_POLICIES = (BASELINE, DIRIGENT)
SWEEP_EXECUTIONS = 8
SWEEP_WARMUP = 2
SWEEP_WORKERS = 4

#: Warm-worker section: repeated small sweeps, where pool spawn and
#: per-process warm-up are a real fraction of the wall-clock.
WARM_SWEEP_REPS = 3
WARM_SWEEP_EXECUTIONS = 2
WARM_SWEEP_WARMUP = 1

MULTI_CELL_NS = (1, 16, 64, 256)
MULTI_CELL_TICKS = 12_000
MULTI_CELL_REPS = 2

SPARSE_CONFIG = MachineConfig(os_jitter_sigma=0.0, timer_jitter_prob=0.0)


def _sparse_machine(backend: str) -> Machine:
    """Event-sparse workload: one FG task alone, noise-free."""
    machine = Machine(SPARSE_CONFIG, backend=backend)
    machine.spawn(get_workload("ferret"), core=0, nice=-5)
    machine.settle_cache()
    return machine


def _contended_machine(backend: str) -> Machine:
    """The contended mix (1 FG + 5 BG), noise-free.

    This is the solver-bound regime the tabulated fast path targets:
    every tick runs the full coupled model (6 lanes, occupancy moving
    every tick), and with jitter off the clone-lane dedup and exact
    tabulation apply.  The jittered variant is measured separately as
    ``contended_noisy`` — mandatory per-tick Box-Muller draws bound
    what any bit-exact kernel can save there.
    """
    machine = Machine(SPARSE_CONFIG, backend=backend)
    machine.spawn(get_workload("ferret"), core=0, nice=-5)
    for core in range(1, machine.config.num_cores):
        machine.spawn(get_workload("rs"), core=core, nice=5)
    machine.settle_cache()
    return machine


def _contended_noisy_machine(backend: str) -> Machine:
    """The contended mix (1 FG + 5 BG) under the default noise config."""
    machine = Machine(MachineConfig(), backend=backend)
    machine.spawn(get_workload("ferret"), core=0, nice=-5)
    for core in range(1, machine.config.num_cores):
        machine.spawn(get_workload("rs"), core=core, nice=5)
    machine.settle_cache()
    return machine


def _tick_rate(config: MachineConfig) -> float:
    """Best-of-3 tick throughput of a fresh 'ferret rs' machine."""
    best = 0.0
    for _ in range(3):
        machine, _, _ = build_machine(mix_by_name("ferret rs"), config, 0)
        start = time.perf_counter()
        machine.run_ticks(TICKS)
        elapsed = time.perf_counter() - start
        best = max(best, TICKS / elapsed)
    return best


def _backend_rate(factory, backend: str):
    """Best-of-N tick throughput of fresh machines under ``backend``.

    Returns ``(rate, stats)``: ``stats`` is the fast-path counter dict
    of the last (warm) rep, except ``kernels_compiled`` which is summed
    over every rep — the kernel code cache is module-global, so warm
    reps compile nothing and would otherwise report 0.  The cache is
    cleared up front so the count reflects this benchmark alone.
    """
    spanplan._KERNEL_CODE_CACHE.clear()
    best = 0.0
    stats = None
    compiled = 0
    for _ in range(BACKEND_REPS):
        machine = factory(backend)
        start = time.perf_counter()
        machine.run_ticks(TICKS)
        elapsed = time.perf_counter() - start
        best = max(best, TICKS / elapsed)
        rep_stats = machine.backend_stats()
        if rep_stats is not None:
            compiled += rep_stats["kernels_compiled"]
        stats = rep_stats
    if stats is not None:
        stats["kernels_compiled"] = compiled
    return best, stats


def _long_phase_ferret():
    """Noise-free ferret with execution-scale phases.

    Stretching each phase 20x makes spans long enough that the
    cell-axis kernel amortizes its per-span setup — the regime the
    vector backend is built for (thousands of homogeneous seed-batch
    simulations), and the workload the multi-cell floor is measured on.
    """
    spec = get_workload("ferret")
    return replace(
        spec,
        input_noise=0.0,
        phases=tuple(
            replace(p, instructions=p.instructions * 20) for p in spec.phases
        ),
    )


def _cell_fleet(spec, cells: int):
    """N single-FG machines differing only in seed (a seed batch)."""
    machines = []
    for index in range(cells):
        machine = Machine(
            MachineConfig(
                seed=SPARSE_CONFIG.seed + index,
                os_jitter_sigma=0.0,
                timer_jitter_prob=0.0,
            ),
            backend=BACKEND_BATCH,
        )
        machine.spawn(spec, core=0, nice=-5)
        machine.settle_cache()
        machines.append(machine)
    return machines


def _multi_cell_rates(spec, cells: int):
    """Best-of-reps cell-ticks/s: per-machine batch loop vs MultiCell.

    Returns ``(batch_rate, vector_rate, stats)`` where rates count
    cells x ticks per second and ``stats`` are the vector driver's
    fusion counters from the last rep.
    """
    cell_ticks = cells * MULTI_CELL_TICKS
    batch_best = 0.0
    for _ in range(MULTI_CELL_REPS):
        machines = _cell_fleet(spec, cells)
        start = time.perf_counter()
        for machine in machines:
            machine.run_ticks(MULTI_CELL_TICKS)
        elapsed = time.perf_counter() - start
        batch_best = max(batch_best, cell_ticks / elapsed)
    vector_best = 0.0
    stats = None
    for _ in range(MULTI_CELL_REPS):
        driver = MultiCell(_cell_fleet(spec, cells))
        start = time.perf_counter()
        driver.run_ticks(MULTI_CELL_TICKS)
        elapsed = time.perf_counter() - start
        vector_best = max(vector_best, cell_ticks / elapsed)
        stats = driver.stats
    keep = (
        "vector_spans", "cells_per_span", "vector_ticks", "vector_peels",
        "partial_peels", "plan_builds", "plan_reuses",
    )
    stat_dict = {key: stats.as_dict()[key] for key in keep}
    return batch_best, vector_best, stat_dict


def _end_to_end_s(backend: str) -> float:
    """Cold-cache Dirigent run_policy wall-clock under ``backend``.

    Best of three runs — each from cold caches — so a scheduler hiccup
    on a shared host does not distort the recorded ratio.
    """
    previous = os.environ.get(ENV_BACKEND)
    os.environ[ENV_BACKEND] = backend
    best = None
    try:
        for _ in range(3):
            harness.clear_caches()
            start = time.perf_counter()
            run_policy(
                mix_by_name("ferret rs"), DIRIGENT,
                executions=SWEEP_EXECUTIONS, warmup=SWEEP_WARMUP,
            )
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best
    finally:
        harness.clear_caches()
        if previous is None:
            os.environ.pop(ENV_BACKEND, None)
        else:
            os.environ[ENV_BACKEND] = previous


def _snapshot(sweep) -> dict:
    return {"%s|%s" % key: repr(result) for key, result in sweep.results.items()}


def _sum(sweeps, field: str) -> int:
    return sum(getattr(sweep, field) for sweep in sweeps)


def _warm_worker_section(mixes) -> dict:
    """Cold-pool vs reused-pool wall-clock over repeated small sweeps.

    The scenario is repeated figure generation: the result disk cache
    is warm (a prime sweep fills it), so a sweep's wall-clock is pure
    engine overhead — pool handling, cell dispatch, cache reads, IPC.
    The cold leg pays pool spawn + the warm-up initializer on every
    sweep; the warm leg pays them once (untimed spawn sweep) and then
    reuses the pool.  ``REPRO_PACK_CELLS=1`` keeps the deque longer
    than the worker count so the timed sweeps also exercise work
    stealing.
    """
    pins = {
        ENV_KERNEL_DISK_CACHE: "1",
        ENV_STEAL: "1",
        ENV_PACK_CELLS: "1",
    }
    previous = {
        name: os.environ.get(name)
        for name in tuple(pins) + (ENV_POOL_REUSE,)
    }

    def _sweep():
        start = time.perf_counter()
        sweep = run_grid(
            mixes, SWEEP_POLICIES, executions=WARM_SWEEP_EXECUTIONS,
            warmup=WARM_SWEEP_WARMUP, workers=SWEEP_WORKERS,
        )
        return sweep, time.perf_counter() - start

    os.environ.update(pins)
    try:
        # Prime the result and kernel caches: the timed sweeps below
        # measure engine overhead on a warm cache, not simulation time.
        os.environ[ENV_POOL_REUSE] = "0"
        shutdown_pool()
        harness.clear_caches()
        prime, _ = _sweep()

        cold_sweeps = []
        cold_s = 0.0
        for _ in range(WARM_SWEEP_REPS):
            shutdown_pool()
            sweep, elapsed = _sweep()
            cold_sweeps.append(sweep)
            cold_s += elapsed

        os.environ[ENV_POOL_REUSE] = "1"
        shutdown_pool()
        spawn, _ = _sweep()  # pays the one-time spawn + preload, untimed
        warm_sweeps = []
        warm_s = 0.0
        for _ in range(WARM_SWEEP_REPS):
            sweep, elapsed = _sweep()
            warm_sweeps.append(sweep)
            warm_s += elapsed
    finally:
        shutdown_pool()
        harness.clear_caches()
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    snapshots = [
        _snapshot(sweep)
        for sweep in [prime] + cold_sweeps + [spawn] + warm_sweeps
    ]
    assert all(snapshot == snapshots[0] for snapshot in snapshots)

    return {
        "note": (
            "repeated %d-cell sweeps on a warm result cache (pure "
            "engine overhead); cold re-spawns the pool per sweep, warm "
            "reuses one pool (spawn sweep untimed); counters are "
            "summed over the timed warm sweeps (plus the spawn sweep "
            "for the disk-preload counters)"
            % len(prime.results)
        ),
        "reps": WARM_SWEEP_REPS,
        "executions": WARM_SWEEP_EXECUTIONS,
        "warmup": WARM_SWEEP_WARMUP,
        "workers": SWEEP_WORKERS,
        "cold_pool_s": round(cold_s, 3),
        "warm_pool_s": round(warm_s, 3),
        "speedup_warm_vs_cold": round(cold_s / warm_s, 3),
        "warm_starts": _sum(warm_sweeps, "warm_starts"),
        "kernels_preloaded": _sum([spawn] + warm_sweeps,
                                  "kernels_preloaded"),
        "kernel_disk_hits": _sum([spawn] + warm_sweeps,
                                 "kernel_disk_hits"),
        "steals": _sum(warm_sweeps, "steals"),
        "packs_split": _sum(warm_sweeps, "packs_split"),
        "ipc_bytes": _sum(warm_sweeps, "ipc_bytes"),
        "identical_results": True,
    }


def run_benchmark() -> dict:
    """Measure every layer and write ``BENCH_harness.json``.

    Returns the artifact dict; floors are checked separately by
    :func:`check_floors` so the CLI can render measurements even when a
    slow host misses a floor.
    """
    pre = json.loads(PRE_PR_FILE.read_text())
    mixes = [mix_by_name(name) for name in SWEEP_MIXES]

    rate_default = _tick_rate(MachineConfig())
    rate_sigma0 = _tick_rate(
        MachineConfig(os_jitter_sigma=0.0, timer_jitter_prob=0.0)
    )

    # Scalar vs batch backend, same workloads, same seeds.
    sparse_scalar, _ = _backend_rate(_sparse_machine, BACKEND_SCALAR)
    sparse_batch, sparse_stats = _backend_rate(_sparse_machine, BACKEND_BATCH)
    contended_scalar, _ = _backend_rate(_contended_machine, BACKEND_SCALAR)
    contended_batch, contended_stats = _backend_rate(
        _contended_machine, BACKEND_BATCH
    )
    noisy_scalar, _ = _backend_rate(_contended_noisy_machine, BACKEND_SCALAR)
    noisy_batch_r, noisy_contended_stats = _backend_rate(
        _contended_noisy_machine, BACKEND_BATCH
    )
    sparse_speedup = sparse_batch / sparse_scalar
    contended_speedup = contended_batch / contended_scalar
    noisy_contended_speedup = noisy_batch_r / noisy_scalar
    e2e_scalar_s = _end_to_end_s(BACKEND_SCALAR)
    e2e_batch_s = _end_to_end_s(BACKEND_BATCH)

    # Multi-cell vector driver vs per-machine batch loop.
    long_phase = {}
    long_spec = _long_phase_ferret()
    for cells in MULTI_CELL_NS:
        batch_rate, vector_rate, cell_stats = _multi_cell_rates(
            long_spec, cells
        )
        long_phase["n%d" % cells] = {
            "cells": cells,
            "batch_cell_ticks_per_s": round(batch_rate, 2),
            "vector_cell_ticks_per_s": round(vector_rate, 2),
            "speedup": round(vector_rate / batch_rate, 3),
            "stats": cell_stats,
        }
    noisy_batch, noisy_vector, noisy_stats = _multi_cell_rates(
        get_workload("ferret"), 64
    )
    noisy_stock = {
        "cells": 64,
        "batch_cell_ticks_per_s": round(noisy_batch, 2),
        "vector_cell_ticks_per_s": round(noisy_vector, 2),
        "speedup": round(noisy_vector / noisy_batch, 3),
        "stats": noisy_stats,
    }

    harness.clear_caches()
    serial = run_grid(
        mixes, SWEEP_POLICIES, executions=SWEEP_EXECUTIONS,
        warmup=SWEEP_WARMUP, workers=1,
    )
    harness.clear_caches()
    parallel_cold = run_grid(
        mixes, SWEEP_POLICIES, executions=SWEEP_EXECUTIONS,
        warmup=SWEEP_WARMUP, workers=SWEEP_WORKERS,
    )
    parallel_warm = run_grid(
        mixes, SWEEP_POLICIES, executions=SWEEP_EXECUTIONS,
        warmup=SWEEP_WARMUP, workers=SWEEP_WORKERS,
    )
    harness.clear_caches()

    # Bit-identical results regardless of execution mode.
    assert _snapshot(serial) == _snapshot(parallel_cold) == _snapshot(
        parallel_warm
    )

    warm_worker = _warm_worker_section(mixes)

    speedup_default = rate_default / pre["tick_rate_default"]
    speedup_sigma0 = rate_sigma0 / pre["tick_rate_sigma0"]
    sweep_speedup_warm = pre["sweep_serial_cold_s"] / parallel_warm.elapsed_s
    sweep_speedup_cold = pre["sweep_serial_cold_s"] / parallel_cold.elapsed_s

    try:
        loadavg_1m = round(os.getloadavg()[0], 2)
    except (AttributeError, OSError):
        loadavg_1m = None

    artifact = {
        "generated_by": "benchmarks/bench_perf_harness.py",
        "host": {
            "cpu_count": os.cpu_count(),
            "loadavg_1m": loadavg_1m,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "backend": resolve_backend(),
            "workers": default_workers(),
        },
        "tick_kernel": {
            "ticks": TICKS,
            "ticks_per_s_default": round(rate_default, 2),
            "ticks_per_s_sigma0": round(rate_sigma0, 2),
            "pre_pr_ticks_per_s_default": pre["tick_rate_default"],
            "pre_pr_ticks_per_s_sigma0": pre["tick_rate_sigma0"],
            "speedup_default": round(speedup_default, 3),
            "speedup_sigma0": round(speedup_sigma0, 3),
            "note": "run_ticks under the session backend (batch default)",
        },
        "backends": {
            "ticks": TICKS,
            "reps": BACKEND_REPS,
            "event_sparse": {
                "workload": "single FG (ferret), no BG, jitter off",
                "scalar_ticks_per_s": round(sparse_scalar, 2),
                "batch_ticks_per_s": round(sparse_batch, 2),
                "speedup": round(sparse_speedup, 3),
            },
            "contended": {
                "workload": "ferret rs (1 FG + 5 BG), jitter off",
                "scalar_ticks_per_s": round(contended_scalar, 2),
                "batch_ticks_per_s": round(contended_batch, 2),
                "speedup": round(contended_speedup, 3),
            },
            "contended_noisy": {
                "workload": "ferret rs (1 FG + 5 BG), default config",
                "scalar_ticks_per_s": round(noisy_scalar, 2),
                "batch_ticks_per_s": round(noisy_batch_r, 2),
                "speedup": round(noisy_contended_speedup, 3),
                "note": (
                    "per-tick Box-Muller jitter draws are mandatory in "
                    "both backends, which bounds the bit-exact speedup "
                    "well below the noise-free contended number"
                ),
            },
            "end_to_end_dirigent": {
                "workload": "run_policy('ferret rs', DIRIGENT), cold caches",
                "scalar_s": round(e2e_scalar_s, 3),
                "batch_s": round(e2e_batch_s, 3),
                "speedup": round(e2e_scalar_s / e2e_batch_s, 3),
            },
            "fast_path": {
                "note": (
                    "span-compiled kernel counters (repro.sim.spanplan) "
                    "from the last batch rep of each backend benchmark; "
                    "kernels_compiled is summed over all reps because "
                    "the kernel code cache is module-global"
                ),
                "event_sparse": sparse_stats,
                "contended": contended_stats,
                "contended_noisy": noisy_contended_stats,
            },
        },
        "multi_cell": {
            "note": (
                "N homogeneous single-FG seed-batch machines: per-machine "
                "batch loop vs one fused MultiCell driver "
                "(repro.sim.vector), as cells x ticks per second; "
                "noisy_stock is the divergent regime — partial peels "
                "evict only tripped cells, so the fused group survives "
                "per-cell completions (floor: parity vs batch)"
            ),
            "numpy": numpy_available(),
            "ticks": MULTI_CELL_TICKS,
            "reps": MULTI_CELL_REPS,
            "long_phase": long_phase,
            "noisy_stock": noisy_stock,
        },
        "sweep": {
            "mixes": list(SWEEP_MIXES),
            "policies": [p.name for p in SWEEP_POLICIES],
            "executions": SWEEP_EXECUTIONS,
            "warmup": SWEEP_WARMUP,
            "workers": SWEEP_WORKERS,
            "serial_cold_s": round(serial.elapsed_s, 3),
            "parallel_cold_s": round(parallel_cold.elapsed_s, 3),
            "parallel_warm_s": round(parallel_warm.elapsed_s, 3),
            "parallel_mode": parallel_cold.mode,
            "pack_sizes": parallel_cold.pack_sizes,
            "pre_pr_serial_cold_s": pre["sweep_serial_cold_s"],
            "speedup_vs_pre_pr_serial_cold": round(sweep_speedup_cold, 3),
            "speedup_vs_pre_pr_serial_warm": round(sweep_speedup_warm, 3),
            "note": (
                "On hosts with a single CPU the cold parallel sweep cannot "
                "beat serial; the warm number shows the persistent cache, "
                "which is what repeated figure generation pays."
            ),
        },
        "warm_worker": warm_worker,
        "identical_results": True,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    return artifact


def check_floors(artifact: dict) -> None:
    """Assert the acceptance floors against a benchmark artifact.

    The artifact records the exact measurements; thresholds leave slack
    for slow shared CI hosts.
    """
    backends = artifact["backends"]
    assert artifact["tick_kernel"]["speedup_default"] >= 1.2, (
        artifact["tick_kernel"]
    )
    assert artifact["sweep"]["speedup_vs_pre_pr_serial_warm"] >= 4.0, (
        artifact["sweep"]
    )
    warm_worker = artifact["warm_worker"]
    assert warm_worker["speedup_warm_vs_cold"] >= 2.0, warm_worker
    assert warm_worker["warm_starts"] > 0, warm_worker
    assert warm_worker["kernel_disk_hits"] > 0, warm_worker
    assert warm_worker["steals"] > 0, warm_worker
    assert warm_worker["ipc_bytes"] > 0, warm_worker
    assert backends["event_sparse"]["speedup"] >= 3.0, (
        backends["event_sparse"]
    )
    assert backends["contended"]["speedup"] >= 5.0, backends["contended"]
    assert backends["contended_noisy"]["speedup"] >= 2.0, (
        backends["contended_noisy"]
    )
    assert backends["end_to_end_dirigent"]["speedup"] >= 1.5, (
        backends["end_to_end_dirigent"]
    )
    fast_path = backends["fast_path"]
    for counter in ("table_hits", "table_builds", "rho_iterations"):
        assert fast_path["contended"][counter] > 0, (counter, fast_path)
    assert fast_path["event_sparse"]["rho_warm_hits"] > 0, fast_path
    multi = artifact["multi_cell"]
    if multi["numpy"]:
        assert multi["long_phase"]["n64"]["speedup"] >= 5.0, (
            multi["long_phase"]["n64"]
        )
        assert multi["noisy_stock"]["speedup"] >= 1.0, multi["noisy_stock"]
        assert multi["noisy_stock"]["stats"]["partial_peels"] > 0, (
            multi["noisy_stock"]
        )


def test_bench_harness_artifact():
    check_floors(run_benchmark())
