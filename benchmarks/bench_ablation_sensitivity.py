"""Ablation: predictor sensitivity to EMA weight and sampling period.

The paper reports (Section 4.2) that Dirigent is robust to EMA weights in
0.1-0.3 and that even ~40 samples per execution suffice for accurate
completion-time prediction; the <100 us invocation overhead is what lets
it sample at 5 ms anyway.
"""

from repro.core.policies import BASELINE
from repro.core.runtime import RuntimeOptions
from repro.experiments.harness import run_policy
from repro.experiments.mixes import mix_by_name
from benchmarks.conftest import run_once


def _mean_error(result):
    errors = [r.relative_error for r in result.prediction_logs[0]]
    return sum(errors) / len(errors)


def test_ema_weight_robustness(benchmark, executions):
    mix = mix_by_name("ferret rs")

    def sweep():
        errors = {}
        for weight in (0.1, 0.2, 0.3):
            result = run_policy(
                mix, BASELINE, executions=executions,
                observe_predictor=True,
                runtime_options=RuntimeOptions(ema_weight=weight),
            )
            errors[weight] = _mean_error(result)
        return errors

    errors = run_once(benchmark, sweep)
    assert all(err < 0.10 for err in errors.values())
    # Robust: the weight choice barely moves the accuracy.
    assert max(errors.values()) - min(errors.values()) < 0.05


def test_sampling_period_robustness(benchmark, executions):
    # ferret runs ~1.2 s contended; a 30 ms period is ~40 samples per
    # execution, the coarsest setting the paper validates.
    mix = mix_by_name("ferret rs")

    def sweep():
        errors = {}
        for period in (2.5e-3, 5e-3, 15e-3, 30e-3):
            result = run_policy(
                mix, BASELINE, executions=executions,
                observe_predictor=True,
                runtime_options=RuntimeOptions(sampling_period_s=period),
            )
            errors[period] = _mean_error(result)
        return errors

    errors = run_once(benchmark, sweep)
    assert all(err < 0.12 for err in errors.values())
    assert errors[30e-3] < errors[5e-3] + 0.05  # coarse stays usable
