"""Shared benchmark configuration.

Each benchmark regenerates one paper figure/table through the drivers in
:mod:`repro.experiments.figures` and asserts the *shape* of the paper's
result (who wins, rough factors, crossovers) — absolute numbers come from
the simulated substrate and are not expected to match the 2016 testbed.

Execution counts default to 30 per run (the paper uses 100); raise them
with ``REPRO_BENCH_EXECUTIONS`` for tighter statistics.  Benchmarks share
one process, so per-mix Baseline runs, profiles, and policy runs are
cached across figures; files are named so aggregate figures run after the
per-mix figures they reuse.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.parallel import set_default_workers

#: FG executions measured per run in the benchmark suite.
BENCH_EXECUTIONS = int(os.environ.get("REPRO_BENCH_EXECUTIONS", "30"))

#: Worker processes for figure sweeps inside the benchmark suite; the
#: figure drivers fan mix x policy cells through the parallel engine
#: and share results across figures via the persistent disk cache.
BENCH_WORKERS = os.environ.get("REPRO_BENCH_WORKERS")
if BENCH_WORKERS:
    set_default_workers(int(BENCH_WORKERS))


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


@pytest.fixture
def executions():
    """Execution count for benchmark runs."""
    return BENCH_EXECUTIONS
