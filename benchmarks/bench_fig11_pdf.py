"""Figure 11: execution-time pdf, ferret with five RS tasks.

Paper shape: Baseline/StaticFreq spread wide; Dirigent concentrates the
distribution just below the deadline (the "ideal" curve of Figure 1).
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def _spread(rows, policy):
    pts = [(t, d) for p, t, d in rows if p == policy and d > 0]
    total = sum(d for _, d in pts)
    mean = sum(t * d for t, d in pts) / total
    var = sum(d * (t - mean) ** 2 for t, d in pts) / total
    return mean, var ** 0.5


def test_fig11_pdf(benchmark, executions):
    result = run_once(benchmark, figures.fig11, executions=executions)
    base_mean, base_sigma = _spread(result.rows, "Baseline")
    dirigent_mean, dirigent_sigma = _spread(result.rows, "Dirigent")
    freq_mean, freq_sigma = _spread(result.rows, "DirigentFreq")

    assert dirigent_sigma < 0.5 * base_sigma
    assert freq_sigma < 0.7 * base_sigma
    # Dirigent's mass sits near the Baseline mean (the deadline region),
    # not far below it like over-provisioned static schemes.
    assert abs(dirigent_mean - base_mean) < 0.15 * base_mean
