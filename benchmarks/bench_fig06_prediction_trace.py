"""Figure 6: prediction trace for raytrace with RS.

Paper shape: midpoint predictions closely track actual completion times
across 50 consecutive executions under Baseline.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig6_prediction_trace(benchmark):
    result = run_once(benchmark, figures.fig6, executions=50)
    assert len(result.rows) == 50
    errors = [row[3] for row in result.rows]
    mean_error = sum(errors) / len(errors)
    assert mean_error < 0.06  # paper: a few percent
    # Predictions track the actual trace, not just its mean: correlation
    # between predicted and actual must be clearly positive.
    actual = [row[1] for row in result.rows]
    predicted = [row[2] for row in result.rows]
    ma = sum(actual) / len(actual)
    mp = sum(predicted) / len(predicted)
    cov = sum((a - ma) * (p - mp) for a, p in zip(actual, predicted))
    va = sum((a - ma) ** 2 for a in actual)
    vp = sum((p - mp) ** 2 for p in predicted)
    assert cov / (va * vp) ** 0.5 > 0.5
