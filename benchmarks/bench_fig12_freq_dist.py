"""Figure 12: BG core frequency distribution, DirigentFreq vs Dirigent.

Paper shape: with cache partitioning, BG cores spend far more time at
high frequency because the FG no longer needs them throttled.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def _mean_freq(rows, policy):
    pts = [(float(f[:-3]), p) for name, f, p in rows if name == policy]
    return sum(f * p for f, p in pts)


def test_fig12_freq_distribution(benchmark, executions):
    result = run_once(benchmark, figures.fig12, executions=executions)
    mean_df = _mean_freq(result.rows, "DirigentFreq")
    mean_d = _mean_freq(result.rows, "Dirigent")
    assert mean_d > mean_df + 0.1  # partitioning frees BG frequency

    top_share_d = [
        p for name, f, p in result.rows if name == "Dirigent" and f == "2.0GHz"
    ][0]
    top_share_df = [
        p for name, f, p in result.rows
        if name == "DirigentFreq" and f == "2.0GHz"
    ][0]
    assert top_share_d > top_share_df
