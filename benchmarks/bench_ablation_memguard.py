"""Ablation: MemGuard-style bandwidth reservation vs. Dirigent.

Section 3.2 surveys memory-bandwidth reservation (Yun et al.) as an
alternative QoS mechanism.  A static reservation can protect the FG task,
but — like the other static schemes — it cannot exploit per-execution
slack, so it pays more BG throughput than Dirigent for comparable FG
success.
"""

from repro.core.policies import BASELINE, DIRIGENT
from repro.experiments.harness import (
    build_machine,
    measure_baseline,
    run_policy,
)
from repro.experiments.mixes import mix_by_name
from repro.sim.config import MachineConfig
from repro.sim.memguard import BandwidthBudget, MemGuard
from benchmarks.conftest import run_once

MIX = "ferret rs"


def _run_memguard(executions, budget_bytes):
    config = MachineConfig()
    mix = mix_by_name(MIX)
    machine, fg_procs, bg_procs = build_machine(mix, config)
    guard = MemGuard(
        machine,
        [BandwidthBudget(p.pid, p.core, budget_bytes) for p in bg_procs],
    )
    guard.start()
    records = []
    machine.add_completion_listener(lambda p, r: records.append(r))
    target = executions + 5
    while len(records) < target:
        machine.tick()
    start = records[5].start_s
    durations = [r.duration_s for r in records[5:target]]
    elapsed = machine.now() - start
    bg_instr = sum(
        machine.read_counters(p.core).instructions for p in bg_procs
    )
    return durations, bg_instr / elapsed


def test_memguard_vs_dirigent(benchmark, executions):
    mix = mix_by_name(MIX)

    def run():
        baseline = measure_baseline(mix, executions=executions)
        deadline = baseline.deadlines_s[0]
        durations, bg_rate = _run_memguard(executions, budget_bytes=1e8)
        memguard_success = sum(1 for d in durations if d <= deadline) / len(
            durations
        )
        memguard_bg = bg_rate / baseline.bg_instr_per_s
        dirigent = run_policy(mix, DIRIGENT, executions=executions)
        return {
            "baseline_success": baseline.fg_success_ratio,
            "memguard": (memguard_success, memguard_bg),
            "dirigent": (
                dirigent.fg_success_ratio,
                dirigent.bg_instr_per_s / baseline.bg_instr_per_s,
            ),
        }

    rows = run_once(benchmark, run)
    mg_fg, mg_bg = rows["memguard"]
    d_fg, d_bg = rows["dirigent"]

    # Reservation protects the FG better than free contention...
    assert mg_fg > rows["baseline_success"]
    # ...but like every static scheme it cannot exploit per-execution
    # slack: Dirigent reaches comparable FG success at a far better BG
    # throughput.
    assert d_fg >= mg_fg - 0.10
    assert d_bg > mg_bg + 0.1
