"""Figure 9c: FG success and BG throughput with 1-3 concurrent FG copies.

Paper shape: trends match the single-FG mixes; with more FG copies the
fine-grain-only controller gets more conservative (lower BG throughput),
which cache partitioning alleviates.
"""

from repro.experiments import figures
from benchmarks.conftest import run_once


def test_fig9c_multi_fg(benchmark, executions):
    result = run_once(benchmark, figures.fig9c, executions=executions)
    assert len(result.rows) == 15 * 5
    table = {}
    for mix, policy, success, bg, mean, std in result.rows:
        table.setdefault(policy, []).append((mix, success, bg))

    def avg(policy, idx):
        rows = table[policy]
        return sum(r[idx] for r in rows) / len(rows)

    assert avg("Baseline", 1) < 0.85
    assert avg("Dirigent", 1) > 0.9
    assert avg("Dirigent", 2) > avg("StaticBoth", 2)
