"""Ablation: Equation 2 scaling interpretations.

Compares the literal ``alpha`` scaling of Equation 2 against the default
``penalty-ratio`` reading on a heavily contended mix.  The literal form
double-counts steady contention (it scales absolute penalties by the
absolute rate factor), so penalty-ratio is at least as accurate — this is
the repository's one documented deviation from the paper's formula.
"""

from repro.core.policies import BASELINE
from repro.core.runtime import RuntimeOptions
from repro.experiments.harness import run_policy
from repro.experiments.mixes import mix_by_name
from benchmarks.conftest import run_once


def _mean_error(result):
    errors = [r.relative_error for r in result.prediction_logs[0]]
    return sum(errors) / len(errors)


def test_predictor_scaling_modes(benchmark, executions):
    mix = mix_by_name("streamcluster bwaves")

    def run():
        out = {}
        for scaling in ("penalty-ratio", "alpha"):
            result = run_policy(
                mix, BASELINE, executions=executions,
                observe_predictor=True,
                runtime_options=RuntimeOptions(predictor_scaling=scaling),
            )
            out[scaling] = _mean_error(result)
        return out

    errors = run_once(benchmark, run)
    assert errors["penalty-ratio"] < 0.10
    assert errors["penalty-ratio"] <= errors["alpha"] + 0.01
