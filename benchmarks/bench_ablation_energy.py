"""Ablation: utility per unit energy across configurations.

Section 3.1: "Matching frequency to FG compute needs reduces processor
energy consumption, but falls short of maximizing efficiency because the
processor itself consumes just 25-35% of total system power."  Dirigent
maximizes node *utility per joule* by keeping BG work flowing.  This
benchmark measures instructions per joule for Baseline, StaticFreq, and
Dirigent on one mix.
"""

from repro.core.policies import BASELINE, DIRIGENT, STATIC_FREQ
from repro.experiments.harness import build_machine, deadlines_for, get_profile
from repro.core.runtime import DirigentRuntime, ManagedTask, RuntimeOptions
from repro.experiments.mixes import mix_by_name
from repro.sim.config import MachineConfig
from repro.sim.energy import EnergyModel
from benchmarks.conftest import run_once

MIX = "ferret rs"


def _run_with_energy(policy, executions, deadline):
    config = MachineConfig()
    mix = mix_by_name(MIX)
    machine, fg_procs, bg_procs = build_machine(mix, config)
    model = EnergyModel(config.num_cores)
    machine.attach_energy_model(model)

    if policy.static_bg_grade is not None:
        for proc in bg_procs:
            machine.set_frequency_grade(proc.core, policy.static_bg_grade)
    if policy.uses_runtime:
        fg = fg_procs[0]
        task = ManagedTask(
            pid=fg.pid, core=fg.core,
            profile=get_profile(mix.fg_name, config),
            deadline_s=deadline, ema_weight=0.2,
        )
        runtime = DirigentRuntime(
            machine, [task], [p.pid for p in bg_procs],
            options=RuntimeOptions(),
        )
        machine.add_completion_listener(
            lambda proc, record: runtime.on_fg_completion(
                proc.pid, record.end_s, record.duration_s,
                record.instructions, record.llc_misses,
            )
        )
        runtime.start()

    records = []
    machine.add_completion_listener(lambda p, r: records.append(r))
    while len(records) < executions:
        machine.tick()
    total_instr = sum(
        machine.read_counters(core).instructions
        for core in range(config.num_cores)
    )
    return total_instr / model.system_joules


def test_utility_per_joule(benchmark, executions):
    mix = mix_by_name(MIX)

    def run():
        deadline = deadlines_for(mix, executions=executions)[0]
        return {
            policy.name: _run_with_energy(policy, executions, deadline)
            for policy in (BASELINE, STATIC_FREQ, DIRIGENT)
        }

    rows = run_once(benchmark, run)
    # Dirigent's utility/energy sits close to Baseline's (it keeps the
    # node busy); the static scheme wastes platform power on an idle-ish
    # node and loses clearly against both.
    assert rows["Dirigent"] > rows["StaticFreq"]
    assert rows["Dirigent"] > 0.75 * rows["Baseline"]
