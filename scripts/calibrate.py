"""Calibration sweep: standalone vs. contended FG behaviour per mix.

A development tool used while tuning the workload catalog and contention
model against the paper's Figures 4/5/7: prints, for every FG benchmark,
its standalone time and MPKI plus the contended slowdown factor and
coefficient of variation against each single-BG workload and two rotate
pairs.

Usage::

    python scripts/calibrate.py [--seconds 80] [--seed 11]
"""

import argparse
import statistics
import sys

from repro.sim import Machine, MachineConfig
from repro.workloads import (
    FOREGROUND_WORKLOADS,
    ROTATE_PAIRS,
    SINGLE_BG_WORKLOADS,
    spawn_rotating_background,
)


def run(fg_name, seed, bg=None, rotate=None, seconds=80.0):
    """Run one mix and return post-warmup durations plus the machine."""
    machine = Machine(MachineConfig(seed=seed))
    machine.spawn(FOREGROUND_WORKLOADS[fg_name], core=0, nice=-5)
    if bg is not None:
        for core in range(1, 6):
            machine.spawn(SINGLE_BG_WORKLOADS[bg], core=core, nice=5)
    if rotate is not None:
        spawn_rotating_background(
            machine, ROTATE_PAIRS[rotate], cores=range(1, 6), seed=seed
        )
    records = []
    machine.add_completion_listener(lambda p, r: records.append(r))
    machine.run_seconds(seconds)
    return [r.duration_s for r in records][2:], machine


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--seconds", type=float, default=80.0)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    for fg in FOREGROUND_WORKLOADS:
        alone, machine = run(fg, args.seed, seconds=min(args.seconds, 30.0))
        mean_alone = statistics.mean(alone)
        cells = [
            "%-13s alone %.3fs mpki %.2f |"
            % (fg, mean_alone, machine.read_counters(0).mpki)
        ]
        for bg in SINGLE_BG_WORKLOADS:
            durs, _ = run(fg, args.seed, bg=bg, seconds=args.seconds)
            mu, sd = statistics.mean(durs), statistics.stdev(durs)
            cells.append("%s x%.2f c%.2f |" % (bg, mu / mean_alone, sd / mu))
        for rot in list(ROTATE_PAIRS)[:2]:
            durs, _ = run(fg, args.seed, rotate=rot, seconds=args.seconds)
            mu, sd = statistics.mean(durs), statistics.stdev(durs)
            cells.append("%s x%.2f c%.2f |" % (rot, mu / mean_alone, sd / mu))
        print(" ".join(cells))
        sys.stdout.flush()


if __name__ == "__main__":
    main()
