"""Online execution-time predictor (Section 4.2, Equations 1 and 2).

During a contended execution the predictor maps observed progress onto the
offline profile's segment boundaries.  Traversing profiled segment ``i``
in measured time ``T_i`` instead of the profiled ``dT_i`` yields the rate
factor ``alpha_i = T_i / dT_i`` (equivalently, profiled over measured
progress rate) and the time penalty::

    P_i = (alpha_i - 1) * dT_i        (Equation 1)

Penalties are smoothed per segment across executions with an exponential
moving average of weight 0.2.  The completion-time estimate at time ``T``
inside segment ``k`` projects the smoothed penalties of the remaining
segments, scaled by a moving average of the rate factors observed so far
in the *current* execution::

    T_est = T + sum_{i>k} ( MA({alpha}) * Pbar_i + dT_i )     (Equation 2)

The paper reports ~2.4% average midpoint error with these parameters.

Two interpretations of the Equation 2 scaling factor are provided:

* ``"alpha"`` — the literal formula: the remaining penalties are scaled
  by the moving average of the absolute rate factors ``alpha_i``.
* ``"penalty-ratio"`` (default) — the remaining *expected durations*
  ``dT_i + Pbar_i`` are scaled by a moving average of how much this
  execution's measured segment durations deviate from their expectation,
  ``r_j = T_j / (dT_j + Pbar_j)``.  This reads "expected penalty scaling
  factor" as *relative to the task's typical contention* rather than to
  the uncontended profile; it is substantially more accurate when average
  contention is high, and matches the accuracy the paper reports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.profile import ExecutionProfile
from repro.core.stats import ExponentialMovingAverage
from repro.errors import ProfileError

#: The paper's EMA weight for both the per-segment penalty average and the
#: within-execution rate-factor average.
DEFAULT_EMA_WEIGHT = 0.2

#: Clamp on per-segment rate factors; guards against degenerate samples
#: (e.g. a timer firing twice in one tick).
ALPHA_CLAMP: Tuple[float, float] = (0.05, 20.0)

#: Outlier-rejection band: a progress sample implying an instantaneous
#: rate above ``band * max(profiled segment rates)`` is physically
#: impossible (profiles are measured standalone at maximum frequency, so
#: contention can only slow a task down) and is discarded as a corrupt
#: counter read.  The band absorbs every legitimate excursion — OS
#: jitter (a few percent), rate mixing across a segment boundary
#: (bounded by the max rate), and multi-period catch-up after dropped
#: samples (k consecutive drops look like a (k+1)x rate) — while still
#: catching glitches (32x).  Clean runs never trip it, which is what
#: keeps hardening-on bit-identical to the pre-hardening behavior.
OUTLIER_RATE_BAND = 4.0


class CompletionTimePredictor:
    """Per-FG-task predictor holding cross-execution penalty state."""

    def __init__(
        self,
        profile: ExecutionProfile,
        ema_weight: float = DEFAULT_EMA_WEIGHT,
        scaling: str = "penalty-ratio",
    ) -> None:
        if scaling not in ("penalty-ratio", "alpha"):
            raise ProfileError(
                "scaling must be 'penalty-ratio' or 'alpha', got %r" % scaling
            )
        self._profile = profile
        self._weight = ema_weight
        self._scaling = scaling
        n = profile.num_segments
        self._durations = [s.duration_s for s in profile.segments]
        self._progress = [s.progress for s in profile.segments]
        self._bounds = list(profile.boundaries())
        self._penalty_ema: List[Optional[float]] = [None] * n
        # Per-execution state.
        self._in_execution = False
        self._start_s = 0.0
        self._last_t = 0.0
        self._last_progress = 0.0
        self._segment_index = 0  # next profile boundary to cross
        self._segment_entry_t = 0.0
        self._alpha_ma = ExponentialMovingAverage(ema_weight)
        self._rate_ma = ExponentialMovingAverage(ema_weight)
        self._measured: List[Optional[float]] = [None] * n
        self._max_profiled_rate = max(s.rate for s in profile.segments)
        #: Reject physically impossible progress samples (the hardening
        #: kill switch clears this for the unhardened chaos baseline).
        self.reject_outliers = True
        #: While sensing is degraded the runtime sets this to freeze the
        #: cross-execution penalty EMAs at their last healthy values.
        self.hold_penalty_updates = False
        #: Samples ignored because time or progress regressed.
        self.stale_samples = 0
        #: Samples carrying zero progress over an advanced clock (the
        #: signature of a dropped counter read on a running task).
        self.zero_delta_samples = 0
        #: Samples rejected by the outlier band.
        self.rejected_samples = 0

    @property
    def profile(self) -> ExecutionProfile:
        """The offline profile this predictor projects against."""
        return self._profile

    @property
    def in_execution(self) -> bool:
        """True between start_execution and finish_execution."""
        return self._in_execution

    @property
    def segments_completed(self) -> int:
        """Profiled segments fully traversed in the current execution."""
        return self._segment_index

    @property
    def progress_fraction(self) -> float:
        """Fraction of profiled progress completed in this execution."""
        return min(1.0, self._last_progress / self._profile.total_progress)

    def expected_penalties(self) -> List[Optional[float]]:
        """Per-segment smoothed penalties (None until first measured)."""
        return list(self._penalty_ema)

    def start_execution(self, start_s: float) -> None:
        """Begin tracking a new execution that started at ``start_s``."""
        self._in_execution = True
        self._start_s = start_s
        self._last_t = start_s
        self._last_progress = 0.0
        self._segment_index = 0
        self._segment_entry_t = start_s
        self._alpha_ma.reset()
        self._rate_ma.reset()
        self._measured = [None] * self._profile.num_segments

    def observe(self, time_s: float, progress: float) -> None:
        """Record a progress sample (cumulative instructions since start).

        Crossing profiled segment boundaries is detected here; crossing
        times are interpolated assuming a uniform progress rate between
        samples — the paper's fixed-rate-within-segment assumption.
        """
        if not self._in_execution:
            raise ProfileError("observe() outside an execution")
        if time_s < self._last_t or progress < self._last_progress:
            # Stale or duplicate sample (timer coalescing); ignore.
            self.stale_samples += 1
            return
        delta_p = progress - self._last_progress
        if delta_p <= 0:
            self.zero_delta_samples += 1
            self._last_t = time_s
            return
        if self.reject_outliers:
            # Same-timestamp samples (timer coalescing) carry no rate
            # information and are handled by the rate==0 path below.
            dt = time_s - self._last_t
            limit = self._max_profiled_rate * OUTLIER_RATE_BAND
            if dt > 0.0 and delta_p > limit * dt:
                # Corrupt counter read: drop it without advancing the
                # sample cursor, so the next honest read supersedes it.
                self.rejected_samples += 1
                return
        rate = delta_p / (time_s - self._last_t) if time_s > self._last_t else 0.0
        while (
            self._segment_index < len(self._bounds)
            and progress >= self._bounds[self._segment_index]
        ):
            boundary = self._bounds[self._segment_index]
            if rate > 0:
                cross_t = self._last_t + (boundary - self._last_progress) / rate
            else:
                cross_t = time_s
            self._close_segment(self._segment_index, cross_t)
            self._segment_index += 1
            self._segment_entry_t = cross_t
        self._last_t = time_s
        self._last_progress = progress

    def predict(self, now_s: float) -> float:
        """Predicted *total* execution time of the current execution.

        Combines elapsed time, the remainder of the in-flight segment, and
        Equation 2's projection over the segments not yet entered.
        """
        if not self._in_execution:
            raise ProfileError("predict() outside an execution")
        elapsed = now_s - self._start_s
        k = self._segment_index
        n = self._profile.num_segments
        if k >= n:
            # Past the profiled program (input jitter); completion imminent.
            return elapsed
        # Remaining fraction of the in-flight segment.
        seg_start = self._bounds[k - 1] if k > 0 else 0.0
        frac_done = (self._last_progress - seg_start) / self._progress[k]
        frac_done = min(max(frac_done, 0.0), 1.0)
        remaining = (1.0 - frac_done) * self._expected_duration(k)
        for i in range(k + 1, n):
            remaining += self._expected_duration(i)
        return elapsed + remaining

    def finish_execution(self, end_s: float) -> None:
        """Finalize the execution: close the tail and update penalty EMAs."""
        if not self._in_execution:
            raise ProfileError("finish_execution() outside an execution")
        # Completion means the task reached its full progress, so every
        # profiled segment not yet crossed at the last sample was traversed
        # between that sample and end_s.  Distribute the remaining wall
        # time across them proportionally to their typical durations
        # (uniform-rate assumption within the unobserved tail).
        k = self._segment_index
        n = self._profile.num_segments
        if k < n and end_s > self._segment_entry_t:
            tail = end_s - self._segment_entry_t
            weights = [self._typical_duration(i) for i in range(k, n)]
            total_weight = sum(weights)
            cursor = self._segment_entry_t
            for i, weight in zip(range(k, n), weights):
                share = tail * (weight / total_weight) if total_weight > 0 else 0.0
                cursor += share
                self._close_segment(i, cursor)
                self._segment_entry_t = cursor
        for i, measured in enumerate(self._measured):
            if self.hold_penalty_updates:
                # Sensing is degraded: the measured durations reflect
                # corrupted samples, so keep the cross-execution penalty
                # history frozen at its last healthy values.
                break
            if measured is None:
                continue
            penalty = measured - self._durations[i]
            prior = self._penalty_ema[i]
            if prior is None:
                self._penalty_ema[i] = penalty
            else:
                self._penalty_ema[i] = (
                    self._weight * penalty + (1.0 - self._weight) * prior
                )
        self._in_execution = False

    def _close_segment(self, index: int, cross_t: float) -> None:
        duration = cross_t - self._segment_entry_t
        profiled = self._durations[index]
        alpha = duration / profiled if profiled > 0 else 1.0
        lo, hi = ALPHA_CLAMP
        alpha = min(max(alpha, lo), hi)
        self._alpha_ma.update(alpha)
        measured = alpha * profiled
        self._measured[index] = measured
        expected = self._typical_duration(index)
        if expected > 0:
            rate = min(max(measured / expected, lo), hi)
            self._rate_ma.update(rate)

    def _typical_duration(self, index: int) -> float:
        """Expected duration of a segment under this task's usual contention."""
        penalty = self._penalty_ema[index]
        base = self._durations[index]
        if penalty is None:
            return base
        return max(base * ALPHA_CLAMP[0], base + penalty)

    def _expected_duration(self, index: int) -> float:
        """Expected duration of segment ``index`` under current contention."""
        if self._scaling == "alpha":
            ma = self._alpha_ma.value if self._alpha_ma.initialized else 1.0
            penalty = self._penalty_ema[index]
            if penalty is None:
                # First execution: no penalty history yet; scale the
                # profiled duration by the contention observed so far.
                return ma * self._durations[index]
            return self._durations[index] + ma * penalty
        rate = self._rate_ma.value if self._rate_ma.initialized else 1.0
        return rate * self._typical_duration(index)
