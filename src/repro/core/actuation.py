"""Verified actuation with bounded retry (robustness hardening).

Real actuators fail silently: a cpufreq write can race with the
governor, SIGSTOP can be delivered late or lost, and a CAT MSR write can
be dropped by a buggy driver.  The stock controllers trust every write;
under actuation faults they believe resources moved when they did not
and their control history diverges from machine state.

:class:`GuardedSystem` wraps a :class:`~repro.sim.osal.SystemInterface`
and verifies every state-changing call against the hardware read-back
(``frequency_grade``, ``is_paused``, ``partition_ways``), re-issuing the
write up to ``retries`` times.  Each retry charges a small backoff cost
to the runtime's core via ``charge_overhead`` — re-issuing a syscall is
not free.  On a healthy machine every verification passes on the first
attempt, so the wrapper is behaviorally invisible (read-backs are
side-effect-free): clean runs are bit-identical with or without it.

Actuations that exhaust their retries are counted, not raised — the
control loop must keep running on a flaky machine (the runtime's health
monitor uses the failure count as a degradation signal instead).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import ControlError
from repro.sim.counters import CounterSnapshot
from repro.sim.osal import SystemInterface, WakeupCallback

#: Re-issues after a failed verification before giving up.
DEFAULT_RETRIES = 2

#: CPU time charged to the runtime's core per re-issued actuation
#: (syscall + read-back, well under the 100 us invocation budget).
DEFAULT_RETRY_OVERHEAD_S = 50e-6


class GuardedSystem:
    """SystemInterface wrapper that verifies writes via read-back.

    Args:
        system: The underlying (possibly faulty) system.
        retries: Re-issues after a failed verification.
        retry_overhead_s: Backoff cost charged per re-issue.
        overhead_core: Core the retry overhead is charged to (the
            runtime thread's core — it is what spins on the retry).
    """

    def __init__(
        self,
        system: SystemInterface,
        retries: int = DEFAULT_RETRIES,
        retry_overhead_s: float = DEFAULT_RETRY_OVERHEAD_S,
        overhead_core: int = 0,
    ) -> None:
        if retries < 0:
            raise ControlError("retries must be >= 0")
        if retry_overhead_s < 0:
            raise ControlError("retry_overhead_s must be >= 0")
        self._sys = system
        self._retries = retries
        self._retry_overhead_s = retry_overhead_s
        self._overhead_core = overhead_core
        #: Guarded actuations attempted.
        self.actuations_total = 0
        #: Re-issues after a failed verification.
        self.actuations_retried = 0
        #: Actuations whose verification never passed.
        self.actuations_failed = 0

    # -- verified actuations --------------------------------------------

    def set_frequency_grade(self, core: int, grade: int) -> None:
        self._attempt(
            lambda: self._sys.set_frequency_grade(core, grade),
            lambda: self._sys.frequency_grade(core) == grade,
        )

    def step_frequency(self, core: int, direction: int) -> bool:
        target = self._sys.frequency_grade(core) + direction
        if not 0 <= target < self._sys.num_frequency_grades():
            # At a limit: delegate so the refusal semantics (and any
            # inner bookkeeping) stay exactly those of the raw system.
            return self._sys.step_frequency(core, direction)
        self.actuations_total += 1
        if (
            self._sys.step_frequency(core, direction)
            and self._sys.frequency_grade(core) == target
        ):
            return True
        # Retry with the absolute setter: re-stepping after a write that
        # landed late would overshoot the intended grade.
        for _ in range(self._retries):
            self.actuations_retried += 1
            self._charge_retry()
            self._sys.set_frequency_grade(core, target)
            if self._sys.frequency_grade(core) == target:
                return True
        self.actuations_failed += 1
        return False

    def pause(self, pid: int) -> None:
        self._attempt(
            lambda: self._sys.pause(pid),
            lambda: self._sys.is_paused(pid),
        )

    def resume(self, pid: int) -> None:
        self._attempt(
            lambda: self._sys.resume(pid),
            lambda: not self._sys.is_paused(pid),
        )

    def set_fg_partition(self, fg_cores: Iterable[int], fg_ways: int) -> None:
        cores = tuple(fg_cores)
        self._attempt(
            lambda: self._sys.set_fg_partition(cores, fg_ways),
            lambda: all(
                self._sys.partition_ways(core) == fg_ways for core in cores
            ),
        )

    def clear_partitions(self) -> None:
        # No portable read-back (the interface cannot enumerate cores),
        # and the control loop never calls this; pass through unguarded.
        self._sys.clear_partitions()

    # -- passthrough observation/timing ---------------------------------

    def now(self) -> float:
        return self._sys.now()

    def read_counters(self, core: int) -> CounterSnapshot:
        return self._sys.read_counters(core)

    def num_frequency_grades(self) -> int:
        return self._sys.num_frequency_grades()

    def frequency_grade(self, core: int) -> int:
        return self._sys.frequency_grade(core)

    def is_paused(self, pid: int) -> bool:
        return self._sys.is_paused(pid)

    def core_of(self, pid: int) -> int:
        return self._sys.core_of(pid)

    def llc_ways(self) -> int:
        return self._sys.llc_ways()

    def partition_ways(self, core: int) -> int:
        return self._sys.partition_ways(core)

    def schedule_wakeup(self, delay_s: float, callback: WakeupCallback) -> None:
        self._sys.schedule_wakeup(delay_s, callback)

    def charge_overhead(self, core: int, seconds: float) -> None:
        self._sys.charge_overhead(core, seconds)

    # -- internals ------------------------------------------------------

    def _attempt(
        self, act: Callable[[], None], verify: Callable[[], bool]
    ) -> bool:
        self.actuations_total += 1
        act()
        if verify():
            return True
        for _ in range(self._retries):
            self.actuations_retried += 1
            self._charge_retry()
            act()
            if verify():
                return True
        self.actuations_failed += 1
        return False

    def _charge_retry(self) -> None:
        if self._retry_overhead_s > 0:
            self._sys.charge_overhead(
                self._overhead_core, self._retry_overhead_s
            )
