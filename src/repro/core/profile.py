"""Offline execution profiler (Section 4.1 of the paper).

The profiler runs an FG application alone, samples its progress (retired
instructions) every ``dT = 5 ms`` through the performance counters, and
records the resulting ``(duration, progress)`` segments.  Progress per
segment varies with the instruction mix, so the profile is the reference
the online predictor compares contended progress against.

Profiling uses the same jittered sleep-timer machinery as the online
runtime, so recorded segment durations ``dT_i`` differ slightly from the
nominal ``dT`` exactly as on the real system; Dirigent accounts for that
difference when computing penalties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ProfileError
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads.spec import WorkloadSpec

#: The paper's sampling period: 5 ms, chosen to balance prediction accuracy
#: against the <100 us per-invocation overhead.
DEFAULT_SAMPLING_PERIOD_S = 5e-3


@dataclass(frozen=True)
class ProfileSegment:
    """One profiled sampling segment.

    Attributes:
        duration_s: Measured wall time of the segment (``dT_i``).
        progress: Instructions retired during the segment.
    """

    duration_s: float
    progress: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ProfileError("segment duration must be > 0")
        if self.progress <= 0:
            raise ProfileError("segment progress must be > 0")

    @property
    def rate(self) -> float:
        """Profiled progress rate (instructions per second)."""
        return self.progress / self.duration_s


@dataclass(frozen=True)
class ExecutionProfile:
    """The offline profile of one FG workload: an ordered segment list.

    Attributes:
        workload_name: Name of the profiled workload.
        sampling_period_s: Nominal sampling period used while profiling.
        segments: Profiled segments in execution order.
    """

    workload_name: str
    sampling_period_s: float
    segments: Tuple[ProfileSegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ProfileError(
                "profile of %r has no segments" % self.workload_name
            )
        boundaries = []
        total = 0.0
        for segment in self.segments:
            total += segment.progress
            boundaries.append(total)
        object.__setattr__(self, "_boundaries", tuple(boundaries))

    @property
    def num_segments(self) -> int:
        """Number of profiled segments."""
        return len(self.segments)

    @property
    def total_progress(self) -> float:
        """Total profiled instructions."""
        return self._boundaries[-1]  # type: ignore[attr-defined]

    @property
    def total_duration_s(self) -> float:
        """Total profiled (standalone) execution time."""
        return sum(s.duration_s for s in self.segments)

    def boundaries(self) -> Tuple[float, ...]:
        """Cumulative progress at the end of each segment."""
        return self._boundaries  # type: ignore[attr-defined]

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        return {
            "workload_name": self.workload_name,
            "sampling_period_s": self.sampling_period_s,
            "segments": [
                {"duration_s": s.duration_s, "progress": s.progress}
                for s in self.segments
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionProfile":
        """Deserialize a profile produced by :meth:`to_dict`.

        Raises:
            ProfileError: if required fields are missing or invalid.
        """
        try:
            segments = tuple(
                ProfileSegment(
                    duration_s=item["duration_s"], progress=item["progress"]
                )
                for item in data["segments"]
            )
            return cls(
                workload_name=data["workload_name"],
                sampling_period_s=data["sampling_period_s"],
                segments=segments,
            )
        except (KeyError, TypeError) as exc:
            raise ProfileError("malformed profile data: %s" % exc) from exc

    def save(self, path) -> None:
        """Write the profile to ``path`` as JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)

    @classmethod
    def load(cls, path) -> "ExecutionProfile":
        """Read a profile previously written by :meth:`save`."""
        import json

        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ProfileError("cannot load profile from %s: %s" % (path, exc))
        return cls.from_dict(data)


class SamplingError(ProfileError):
    """The profiling sampler observed an inconsistent counter sequence."""


class _SamplerState:
    """Mutable capture buffer shared with the sampler callback."""

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float]] = []
        self.completions: List[object] = []


class OfflineProfiler:
    """Profiles an FG workload running alone on a fresh machine.

    The profiler performs ``warmup_executions`` full executions first (to
    let the simulated cache reach steady state, mirroring warm profiling
    runs on real hardware) and then records the next execution.
    """

    def __init__(
        self,
        machine_config: Optional[MachineConfig] = None,
        sampling_period_s: float = DEFAULT_SAMPLING_PERIOD_S,
        warmup_executions: int = 1,
        core: int = 0,
    ) -> None:
        if sampling_period_s <= 0:
            raise ProfileError("sampling period must be > 0")
        if warmup_executions < 0:
            raise ProfileError("warmup_executions must be >= 0")
        self._config = machine_config or MachineConfig()
        self._period = sampling_period_s
        self._warmup = warmup_executions
        self._core = core

    def profile(self, spec: WorkloadSpec) -> ExecutionProfile:
        """Run ``spec`` alone and return its execution profile."""
        if not spec.is_foreground:
            raise ProfileError("only FG workloads are profiled")
        machine = Machine(self._config)
        proc = machine.spawn(spec, core=self._core, nice=-5)

        state = _SamplerState()
        machine.add_completion_listener(
            lambda p, record: state.completions.append(record)
        )

        def sample() -> None:
            snap = machine.read_counters(self._core)
            state.samples.append((snap.time_s, snap.instructions))
            machine.schedule_wakeup(self._period, sample)

        machine.schedule_wakeup(self._period, sample)

        # Warmup executions: run until enough completions are seen.  The
        # machine advances in blocks (batched fast path); overshooting
        # the recorded completion only appends samples past the window,
        # which segments_from_samples filters out.
        block = 64
        guard_ticks = 0
        max_ticks = int(600.0 / self._config.tick_s)
        while len(state.completions) <= self._warmup:
            machine.run_ticks(block)
            guard_ticks += block
            if guard_ticks > max_ticks:
                raise ProfileError(
                    "profiling of %r did not complete executions in time"
                    % spec.name
                )

        record = state.completions[self._warmup]
        segments = segments_from_samples(
            state.samples, record.start_s, record.end_s, record.instructions
        )
        return ExecutionProfile(
            workload_name=spec.name,
            sampling_period_s=self._period,
            segments=tuple(segments),
        )


def segments_from_samples(
    samples: List[Tuple[float, float]],
    start_s: float,
    end_s: float,
    instructions: float,
) -> List[ProfileSegment]:
    """Turn ``(time, counter)`` samples into one execution's segments.

    ``samples`` are cumulative instruction-counter readings; the segments
    cover exactly the window ``(start_s, end_s)`` in which the execution
    retired ``instructions`` instructions.  Used by both the offline and
    the online profiler.
    """
    window = [(t, i) for (t, i) in samples if start_s < t < end_s]
    if len(window) < 2:
        raise SamplingError(
            "profiled execution too short for the sampling period"
        )
    # Counter value when the execution started: extrapolate backwards
    # from the first sample at the initially observed rate — the same
    # uniform-rate-within-segment assumption Equation 1 makes.
    (t0, i0), (t1, i1) = window[0], window[1]
    rate = (i1 - i0) / (t1 - t0)
    counter_start = i0 - rate * (t0 - start_s)

    segments: List[ProfileSegment] = []
    prev_t, prev_i = start_s, counter_start
    for t, i in window:
        progress = i - prev_i
        duration = t - prev_t
        if progress > 0 and duration > 0:
            segments.append(
                ProfileSegment(duration_s=duration, progress=progress)
            )
        prev_t, prev_i = t, i
    # Final partial segment up to completion.
    tail_progress = (counter_start + instructions) - prev_i
    tail_duration = end_s - prev_t
    if tail_progress > 0 and tail_duration > 0:
        segments.append(
            ProfileSegment(duration_s=tail_duration, progress=tail_progress)
        )
    if not segments:
        raise SamplingError("profiling produced no segments")
    return segments
