"""Online (in-place) profiling — the paper's proposed extension.

The published Dirigent relies on offline profiles.  Section 7 notes that
"because of the short profiling duration it can be performed online,
though it will require pausing all BG tasks while profiling".  This
module implements exactly that: the profiler pauses every BG task on the
live node, samples the FG task's progress counters through the same
``SystemInterface`` the runtime uses for a configurable number of
executions, resumes the BG tasks, and hands back an
:class:`repro.core.profile.ExecutionProfile` ready for the predictor.

Like the runtime, it learns about execution boundaries from the
application side via :meth:`on_fg_completion`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.profile import (
    DEFAULT_SAMPLING_PERIOD_S,
    ExecutionProfile,
    segments_from_samples,
)
from repro.errors import ProfileError
from repro.sim.osal import SystemInterface

ProfileReadyCallback = Callable[[ExecutionProfile], None]


class OnlineProfiler:
    """Profiles a running FG task while BG tasks are paused.

    Args:
        system: The node's control/observation surface.
        fg_core: Core of the FG task being profiled.
        bg_pids: BG tasks to pause during profiling.
        workload_name: Name recorded in the resulting profile.
        sampling_period_s: Sampling period (the paper's 5 ms default).
        warmup_executions: Executions discarded before the recorded one
            (lets the cache refill after the BG tasks stop).
        on_ready: Invoked with the finished profile; BG tasks are resumed
            just before the callback runs.
    """

    def __init__(
        self,
        system: SystemInterface,
        fg_core: int,
        bg_pids: Sequence[int],
        workload_name: str = "online",
        sampling_period_s: float = DEFAULT_SAMPLING_PERIOD_S,
        warmup_executions: int = 1,
        on_ready: Optional[ProfileReadyCallback] = None,
    ) -> None:
        if sampling_period_s <= 0:
            raise ProfileError("sampling period must be > 0")
        if warmup_executions < 0:
            raise ProfileError("warmup_executions must be >= 0")
        self._sys = system
        self._fg_core = fg_core
        self._bg_pids = list(bg_pids)
        self._name = workload_name
        self._period = sampling_period_s
        self._warmup = warmup_executions
        self._on_ready = on_ready
        self._samples: List[Tuple[float, float]] = []
        self._completions_seen = 0
        self._active = False
        self._resumable: List[int] = []
        self.profile: Optional[ExecutionProfile] = None

    @property
    def active(self) -> bool:
        """True while profiling is in progress."""
        return self._active

    @property
    def done(self) -> bool:
        """True once a profile has been recorded."""
        return self.profile is not None

    def start(self) -> None:
        """Pause BG tasks and begin sampling."""
        if self._active:
            raise ProfileError("online profiler already started")
        if self.done:
            raise ProfileError("online profiler already finished")
        self._active = True
        self._resumable = [
            pid for pid in self._bg_pids if not self._sys.is_paused(pid)
        ]
        for pid in self._resumable:
            self._sys.pause(pid)
        self._sys.schedule_wakeup(self._period, self._sample)

    def on_fg_completion(
        self, end_s: float, duration_s: float, instructions: float
    ) -> None:
        """Record an FG execution boundary (application-side event)."""
        if not self._active:
            return
        self._completions_seen += 1
        if self._completions_seen <= self._warmup:
            return
        start_s = end_s - duration_s
        segments = segments_from_samples(
            self._samples, start_s, end_s, instructions
        )
        self.profile = ExecutionProfile(
            workload_name=self._name,
            sampling_period_s=self._period,
            segments=tuple(segments),
        )
        self._finish()

    def _sample(self) -> None:
        if not self._active:
            return
        snap = self._sys.read_counters(self._fg_core)
        self._samples.append((snap.time_s, snap.instructions))
        self._sys.schedule_wakeup(self._period, self._sample)

    def _finish(self) -> None:
        self._active = False
        for pid in self._resumable:
            self._sys.resume(pid)
        if self._on_ready is not None and self.profile is not None:
            self._on_ready(self.profile)
