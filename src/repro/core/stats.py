"""Small statistics helpers used by the Dirigent predictor and controllers.

Kept dependency-free (no numpy) because the real runtime computes these
inside a <100 microsecond control-loop invocation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import ControlError


class ExponentialMovingAverage:
    """EMA with the paper's convention ``ema = w * x + (1 - w) * ema``.

    The first observation initializes the average directly.
    """

    def __init__(self, weight: float = 0.2) -> None:
        if not 0.0 < weight <= 1.0:
            raise ControlError("EMA weight must be in (0, 1]")
        self.weight = weight
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """Current average, or None before any observation."""
        return self._value

    @property
    def initialized(self) -> bool:
        """True once at least one observation has been folded in."""
        return self._value is not None

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the average and return the new value."""
        if self._value is None:
            self._value = sample
        else:
            self._value = self.weight * sample + (1.0 - self.weight) * self._value
        return self._value

    def reset(self) -> None:
        """Forget all history."""
        self._value = None


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ControlError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (the paper reports run-set sigma)."""
    if not values:
        raise ControlError("stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Returns 0.0 when either sequence is (numerically) constant, which is
    the safe answer for the coarse controller's "strong correlation"
    heuristic.
    """
    if len(xs) != len(ys):
        raise ControlError("correlation needs equal-length sequences")
    if len(xs) < 2:
        return 0.0
    mx = mean(xs)
    my = mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    var_x = sum((x - mx) ** 2 for x in xs)
    var_y = sum((y - my) ** 2 for y in ys)
    if var_x <= 0.0 or var_y <= 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (used for summarizing relative BG throughput)."""
    if not values:
        raise ControlError("harmonic mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ControlError("harmonic mean needs positive values")
    return len(values) / sum(1.0 / v for v in values)
