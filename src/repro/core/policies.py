"""Evaluation policies (Section 5.4's five configurations).

* **Baseline** — all cores at maximum frequency, free contention.
* **StaticFreq** — FG cores at maximum, BG cores at minimum frequency.
* **StaticBoth** — StaticFreq plus the best *static* cache partition
  (the paper verified Dirigent's heuristic partition is near-optimal);
  representative of coarse-grained schemes such as Heracles for these
  short tasks.
* **DirigentFreq** — fine time scale control only (no partitioning).
* **Dirigent** — full system: fine control plus coarse cache partitioning.
* **CoarseOnly** — static partition without frequency management; the
  paper omits it ("performs just slightly worse than StaticBoth"), kept
  here as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Policy:
    """A resource-management configuration the harness can run.

    Attributes:
        name: Display name used in figures and tables.
        fine_control: Run the Dirigent fine time scale controller.
        coarse_control: Run the Dirigent coarse cache-partition controller.
        static_bg_grade: Fixed DVFS grade for BG cores (None = maximum).
        static_fg_grade: Fixed DVFS grade for FG cores (None = maximum).
        static_partition: Apply a fixed FG cache partition for the whole
            run (size chosen per mix by the harness).
        initial_fg_ways: Starting FG partition for the coarse controller.
    """

    name: str
    fine_control: bool = False
    coarse_control: bool = False
    static_bg_grade: Optional[int] = None
    static_fg_grade: Optional[int] = None
    static_partition: bool = False
    initial_fg_ways: int = 2

    def __post_init__(self) -> None:
        if self.coarse_control and self.static_partition:
            raise ConfigurationError(
                "policy %r: coarse control and a static partition are "
                "mutually exclusive" % self.name
            )
        if self.initial_fg_ways < 1:
            raise ConfigurationError("initial_fg_ways must be >= 1")

    @property
    def uses_runtime(self) -> bool:
        """True when the Dirigent runtime daemon must run."""
        return self.fine_control or self.coarse_control


BASELINE = Policy(name="Baseline")
STATIC_FREQ = Policy(name="StaticFreq", static_bg_grade=0)
STATIC_BOTH = Policy(name="StaticBoth", static_bg_grade=0, static_partition=True)
DIRIGENT_FREQ = Policy(name="DirigentFreq", fine_control=True)
DIRIGENT = Policy(name="Dirigent", fine_control=True, coarse_control=True)
COARSE_ONLY = Policy(name="CoarseOnly", static_partition=True)

#: The paper's five evaluated configurations, in Figure 9/10 order.
PAPER_POLICIES: Tuple[Policy, ...] = (
    BASELINE,
    STATIC_FREQ,
    STATIC_BOTH,
    DIRIGENT_FREQ,
    DIRIGENT,
)


def policy_by_name(name: str) -> Policy:
    """Look a policy up by display name (case-insensitive)."""
    for policy in PAPER_POLICIES + (COARSE_ONLY,):
        if policy.name.lower() == name.lower():
            return policy
    raise ConfigurationError("unknown policy %r" % name)
