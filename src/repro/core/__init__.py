"""Dirigent: the paper's contribution — profiler, predictor, controllers."""

from repro.core.coarse import CoarseGrainController, ExecutionSample
from repro.core.fine import (
    DEFAULT_AHEAD_MARGIN,
    DEFAULT_PAUSE_MARGIN,
    Decision,
    FgStatus,
    FineGrainController,
)
from repro.core.policies import (
    BASELINE,
    COARSE_ONLY,
    DIRIGENT,
    DIRIGENT_FREQ,
    PAPER_POLICIES,
    STATIC_BOTH,
    STATIC_FREQ,
    Policy,
    policy_by_name,
)
from repro.core.predictor import (
    ALPHA_CLAMP,
    DEFAULT_EMA_WEIGHT,
    CompletionTimePredictor,
)
from repro.core.heartbeats import HeartbeatCounter, ProcessHeartbeatBridge
from repro.core.online_profile import OnlineProfiler
from repro.core.profile import (
    DEFAULT_SAMPLING_PERIOD_S,
    ExecutionProfile,
    OfflineProfiler,
    ProfileSegment,
    segments_from_samples,
)
from repro.core.runtime import (
    DirigentRuntime,
    ManagedTask,
    PredictionRecord,
    RuntimeOptions,
)
from repro.core.stats import (
    ExponentialMovingAverage,
    harmonic_mean,
    mean,
    pearson_correlation,
    stddev,
)

__all__ = [
    "OfflineProfiler",
    "OnlineProfiler",
    "HeartbeatCounter",
    "ProcessHeartbeatBridge",
    "segments_from_samples",
    "ExecutionProfile",
    "ProfileSegment",
    "DEFAULT_SAMPLING_PERIOD_S",
    "CompletionTimePredictor",
    "DEFAULT_EMA_WEIGHT",
    "ALPHA_CLAMP",
    "FineGrainController",
    "FgStatus",
    "Decision",
    "DEFAULT_AHEAD_MARGIN",
    "DEFAULT_PAUSE_MARGIN",
    "CoarseGrainController",
    "ExecutionSample",
    "DirigentRuntime",
    "ManagedTask",
    "RuntimeOptions",
    "PredictionRecord",
    "Policy",
    "policy_by_name",
    "PAPER_POLICIES",
    "BASELINE",
    "STATIC_FREQ",
    "STATIC_BOTH",
    "DIRIGENT_FREQ",
    "DIRIGENT",
    "COARSE_ONLY",
    "ExponentialMovingAverage",
    "mean",
    "stddev",
    "pearson_correlation",
    "harmonic_mean",
]
