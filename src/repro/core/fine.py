"""Fine time scale controller (Section 4.3, "Fine time scale control").

Every few prediction segments the controller compares each FG task's
predicted completion time against its deadline and reallocates frequency
(and, as a last resort, BG task scheduling) to keep the FG on target
while yielding as much as possible to BG tasks:

* FG **ahead** by more than the 2% margin (the predictor's typical error):
  first resume any paused BG tasks, else speed throttled BG cores up one
  DVFS grade, else throttle the FG core itself.
* FG **behind**: raise the FG core to maximum frequency, else throttle BG
  cores one grade; if the FG is more than 10% behind, pause the most
  intrusive running BG task (most LLC load misses — the pause threshold is
  larger because pausing is the most expensive action).
* With several FG tasks of mixed tendencies, BG tasks are driven by the
  slowest FG task and any FG task comfortably ahead is individually
  throttled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ControlError
from repro.sim.osal import SystemInterface

#: Act only when predicted completion is >2% ahead of the deadline
#: (matches the predictor's typical error, Section 4.3).
DEFAULT_AHEAD_MARGIN = 0.02

#: Pause BG tasks only when well behind the deadline (the paper used 10%
#: and reports insensitivity to the exact value; 8% above the guard
#: target recalibrates it for this substrate's reaction latencies).
DEFAULT_PAUSE_MARGIN = 0.08

#: Safety band below the deadline the controller steers toward; sized to
#: the predictor's typical error so residual mispredictions still land
#: within the deadline (the paper's 2% margin serves the same purpose).
DEFAULT_DEADLINE_GUARD = 0.05


@dataclass(frozen=True)
class FgStatus:
    """Predicted standing of one FG task at a decision point.

    Attributes:
        pid: Process id of the FG task.
        core: Core the FG task is pinned to.
        predicted_total_s: Predicted total execution time.
        deadline_s: Target execution time for the task.
    """

    pid: int
    core: int
    predicted_total_s: float
    deadline_s: float

    @property
    def ratio(self) -> float:
        """Predicted completion over deadline (>1 means late)."""
        if self.deadline_s <= 0:
            raise ControlError("deadline must be positive")
        return self.predicted_total_s / self.deadline_s


@dataclass(frozen=True)
class Decision:
    """Record of one controller invocation (used by the coarse controller).

    Attributes:
        time_s: When the decision was made.
        action: Symbolic action taken (e.g. ``"bg-throttle"``).
        worst_ratio: Slowest FG task's predicted/deadline ratio.
        bg_grades: DVFS grade of each BG core after the decision.
        bg_paused: Number of paused BG tasks after the decision.
    """

    time_s: float
    action: str
    worst_ratio: float
    bg_grades: Dict[int, int] = field(default_factory=dict)
    bg_paused: int = 0


class FineGrainController:
    """Implements the paper's fine time scale decision policy."""

    def __init__(
        self,
        system: SystemInterface,
        bg_pids: Sequence[int],
        ahead_margin: float = DEFAULT_AHEAD_MARGIN,
        pause_margin: float = DEFAULT_PAUSE_MARGIN,
        deadline_guard: float = DEFAULT_DEADLINE_GUARD,
    ) -> None:
        if not 0.0 <= ahead_margin < 1.0:
            raise ControlError("ahead_margin must be in [0, 1)")
        if pause_margin < 0.0:
            raise ControlError("pause_margin must be >= 0")
        if not 0.0 <= deadline_guard < 1.0:
            raise ControlError("deadline_guard must be in [0, 1)")
        self._sys = system
        self._bg_pids = list(bg_pids)
        self._ahead = ahead_margin
        self._pause = pause_margin
        self._target_ratio = 1.0 - deadline_guard
        self._max_grade = system.num_frequency_grades() - 1
        self.decisions: List[Decision] = []

    @property
    def bg_pids(self) -> List[int]:
        """BG process ids under control."""
        return list(self._bg_pids)

    def set_deadline_guard(self, deadline_guard: float) -> None:
        """Retarget the safety band below the deadline.

        The runtime widens the band while sensing is degraded (predicted
        completion times are less trustworthy, so steer further from the
        deadline) and restores it on recovery.
        """
        if not 0.0 <= deadline_guard < 1.0:
            raise ControlError("deadline_guard must be in [0, 1)")
        self._target_ratio = 1.0 - deadline_guard

    def decide(
        self,
        statuses: Sequence[FgStatus],
        bg_intrusiveness: Optional[Dict[int, float]] = None,
    ) -> Decision:
        """Run one decision round and return its record.

        Args:
            statuses: Predicted standing of every FG task.
            bg_intrusiveness: Recent LLC misses per BG pid; used to pick
                which task to pause.  Missing entries count as zero.
        """
        if not statuses:
            raise ControlError("decide() needs at least one FG status")
        intrusiveness = bg_intrusiveness or {}
        target = self._target_ratio
        worst = max(statuses, key=lambda s: s.ratio)
        all_ahead = all(s.ratio < target - self._ahead for s in statuses)
        any_behind = any(s.ratio > target for s in statuses)

        if all_ahead:
            action = self._release_resources(statuses)
        elif any_behind:
            behind = [s for s in statuses if s.ratio > target]
            action = self._reclaim_resources(behind, worst, intrusiveness)
            # FG tasks comfortably ahead yield individually (multi-FG rule).
            for status in statuses:
                if status is not worst and status.ratio < target - self._ahead:
                    if self._sys.step_frequency(status.core, -1):
                        action += "+fg-throttle"
        else:
            action = "none"

        decision = Decision(
            time_s=self._sys.now(),
            action=action,
            worst_ratio=worst.ratio,
            bg_grades={
                self._sys.core_of(pid): self._sys.frequency_grade(
                    self._sys.core_of(pid)
                )
                for pid in self._bg_pids
            },
            bg_paused=sum(1 for pid in self._bg_pids if self._sys.is_paused(pid)),
        )
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    # Policy branches
    # ------------------------------------------------------------------

    def _release_resources(self, statuses: Sequence[FgStatus]) -> str:
        """FG ahead: give resources back to BG, then throttle FG."""
        paused = [pid for pid in self._bg_pids if self._sys.is_paused(pid)]
        if paused:
            for pid in paused:
                self._sys.resume(pid)
            return "bg-resume"
        throttled = [
            pid
            for pid in self._bg_pids
            if self._sys.frequency_grade(self._sys.core_of(pid)) < self._max_grade
        ]
        if throttled:
            for pid in throttled:
                self._sys.step_frequency(self._sys.core_of(pid), +1)
            return "bg-speedup"
        stepped = False
        for status in statuses:
            if self._sys.step_frequency(status.core, -1):
                stepped = True
        return "fg-throttle" if stepped else "none"

    def _reclaim_resources(
        self,
        behind: Sequence[FgStatus],
        worst: FgStatus,
        intrusiveness: Dict[int, float],
    ) -> str:
        """FG behind: speed lagging FG tasks up, then squeeze BG."""
        raised = False
        for status in behind:
            if self._sys.frequency_grade(status.core) < self._max_grade:
                self._sys.set_frequency_grade(status.core, self._max_grade)
                raised = True
        if raised:
            return "fg-max"
        running_bg = [
            pid for pid in self._bg_pids if not self._sys.is_paused(pid)
        ]
        throttleable = [
            pid
            for pid in running_bg
            if self._sys.frequency_grade(self._sys.core_of(pid)) > 0
        ]
        if throttleable:
            # "Immediately throttle the frequency of the BG tasks": clamp
            # to the minimum grade at once.  Release is gradual (one grade
            # per decision), so the asymmetry protects the deadline.
            for pid in throttleable:
                self._sys.set_frequency_grade(self._sys.core_of(pid), 0)
            return "bg-throttle"
        if worst.ratio > self._target_ratio + self._pause and running_bg:
            victim = max(running_bg, key=lambda pid: intrusiveness.get(pid, 0.0))
            self._sys.pause(victim)
            return "bg-pause"
        return "none"
