"""The Dirigent runtime daemon (Section 4).

Ties profiler output, the online predictor, and the two controllers into
the periodic sampling loop the paper describes: a lightweight thread
pinned to a core shared with a BG task, waking every ``dT = 5 ms`` via a
(jittered) sleep, reading performance counters, updating per-task
completion-time predictions, making a fine time scale control decision
every few segments, and invoking the coarse cache-partition controller
across executions.  Each invocation charges its (<100 us) overhead to the
core the runtime is pinned to.

The runtime only touches the machine through
:class:`repro.sim.osal.SystemInterface`; completion notifications arrive
from the application side (the paper measures task boundaries inside the
FG process via PARSEC's ROI interface) through :meth:`on_fg_completion`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.coarse import CoarseGrainController, ExecutionSample
from repro.core.fine import (
    DEFAULT_AHEAD_MARGIN,
    DEFAULT_DEADLINE_GUARD,
    DEFAULT_PAUSE_MARGIN,
    FgStatus,
    FineGrainController,
)
from repro.core.predictor import CompletionTimePredictor, DEFAULT_EMA_WEIGHT
from repro.core.profile import DEFAULT_SAMPLING_PERIOD_S, ExecutionProfile
from repro.errors import ControlError
from repro.sim.osal import SystemInterface


@dataclass(frozen=True)
class RuntimeOptions:
    """Tunables of the Dirigent runtime (defaults follow the paper).

    Attributes:
        sampling_period_s: Predictor sampling period ``dT``.
        decision_every: Prediction segments per fine-grain decision.
        ema_weight: Weight of the penalty and rate-factor EMAs.
        predictor_scaling: Equation 2 scaling interpretation
            ("penalty-ratio" or the literal "alpha").
        ahead_margin: Fine controller's ahead threshold (fraction).
        pause_margin: Fine controller's pause threshold (fraction).
        deadline_guard: Safety band below the deadline the controller
            steers toward (sized to the predictor's typical error).
        invocation_overhead_s: CPU time charged to the runtime's core per
            wakeup (measured <100 us on the paper's machine).
        enable_fine: Run the fine time scale controller.
        enable_coarse: Run the coarse cache-partition controller.
        initial_fg_ways: Starting FG partition for coarse control.
        coarse_window: Execution-statistics window of the coarse
            controller.
        coarse_decision_every: FG executions per coarse invocation.
        record_predictions: Capture one midpoint prediction per execution
            (used by the accuracy experiments, Figures 6 and 7).
    """

    sampling_period_s: float = DEFAULT_SAMPLING_PERIOD_S
    decision_every: int = 5
    ema_weight: float = DEFAULT_EMA_WEIGHT
    predictor_scaling: str = "penalty-ratio"
    ahead_margin: float = DEFAULT_AHEAD_MARGIN
    pause_margin: float = DEFAULT_PAUSE_MARGIN
    deadline_guard: float = DEFAULT_DEADLINE_GUARD
    invocation_overhead_s: float = 100e-6
    enable_fine: bool = True
    enable_coarse: bool = True
    initial_fg_ways: int = 2
    coarse_window: int = 10
    coarse_decision_every: int = 7
    record_predictions: bool = True

    def __post_init__(self) -> None:
        if self.sampling_period_s <= 0:
            raise ControlError("sampling_period_s must be > 0")
        if self.decision_every < 1:
            raise ControlError("decision_every must be >= 1")
        if self.invocation_overhead_s < 0:
            raise ControlError("invocation_overhead_s must be >= 0")


@dataclass(frozen=True)
class PredictionRecord:
    """Midpoint prediction vs. measured outcome of one execution.

    Attributes:
        execution_index: FG execution number.
        predicted_total_s: Total time predicted at roughly half progress.
        actual_total_s: Measured execution time.
    """

    execution_index: int
    predicted_total_s: float
    actual_total_s: float

    @property
    def relative_error(self) -> float:
        """``|predicted - actual| / actual`` (Equation 3)."""
        return abs(self.predicted_total_s - self.actual_total_s) / self.actual_total_s


class ManagedTask:
    """Per-FG-task runtime state.

    Args:
        pid: Process id of the FG task.
        core: Core the task is pinned to.
        profile: Offline (or online) execution profile.
        deadline_s: Target completion time.
        ema_weight: Predictor EMA weight.
        progress_fn: Optional alternative progress source (e.g. an
            Application Heartbeats bridge) returning progress within the
            current execution; when None, per-core instruction counters
            are used, as in the paper.
    """

    def __init__(
        self,
        pid: int,
        core: int,
        profile: ExecutionProfile,
        deadline_s: float,
        ema_weight: float,
        progress_fn: Optional[Callable[[], float]] = None,
        predictor_scaling: str = "penalty-ratio",
    ) -> None:
        if deadline_s <= 0:
            raise ControlError("deadline must be positive")
        self.pid = pid
        self.core = core
        self.deadline_s = deadline_s
        self.predictor = CompletionTimePredictor(
            profile, ema_weight=ema_weight, scaling=predictor_scaling
        )
        self.progress_fn = progress_fn
        self.instruction_base = 0.0
        self.execution_index = 0
        self.midpoint_prediction: Optional[float] = None
        self.prediction_log: List[PredictionRecord] = []


class DirigentRuntime:
    """The periodic monitoring and control loop."""

    def __init__(
        self,
        system: SystemInterface,
        tasks: Sequence[ManagedTask],
        bg_pids: Sequence[int],
        options: Optional[RuntimeOptions] = None,
    ) -> None:
        if not tasks:
            raise ControlError("DirigentRuntime needs at least one FG task")
        self._sys = system
        self._tasks = list(tasks)
        self._tasks_by_pid = {task.pid: task for task in self._tasks}
        self._bg_pids = list(bg_pids)
        self._opts = options or RuntimeOptions()
        self._fine: Optional[FineGrainController] = None
        if self._opts.enable_fine:
            self._fine = FineGrainController(
                system,
                bg_pids,
                ahead_margin=self._opts.ahead_margin,
                pause_margin=self._opts.pause_margin,
                deadline_guard=self._opts.deadline_guard,
            )
        self._coarse: Optional[CoarseGrainController] = None
        if self._opts.enable_coarse:
            self._coarse = CoarseGrainController(
                system,
                fg_cores=[task.core for task in self._tasks],
                initial_fg_ways=self._opts.initial_fg_ways,
                window=self._opts.coarse_window,
                decision_every=self._opts.coarse_decision_every,
            )
        # The runtime thread is pinned to a core shared with a BG task.
        self._pinned_core = (
            system.core_of(self._bg_pids[0]) if self._bg_pids else 0
        )
        self._running = False
        self._sample_count = 0
        self._decisions_at_last_coarse = 0
        self._bg_miss_base: Dict[int, float] = {}
        #: Histogram of BG core DVFS grades observed at each sample
        #: (paused cores are excluded), for Figure 12.
        self.bg_grade_histogram: Dict[int, int] = {}
        self.invocations = 0

    @property
    def options(self) -> RuntimeOptions:
        """The runtime's configuration."""
        return self._opts

    @property
    def tasks(self) -> List[ManagedTask]:
        """Managed FG tasks."""
        return list(self._tasks)

    @property
    def fine_controller(self) -> Optional[FineGrainController]:
        """The fine time scale controller, when enabled."""
        return self._fine

    @property
    def coarse_controller(self) -> Optional[CoarseGrainController]:
        """The coarse time scale controller, when enabled."""
        return self._coarse

    def start(self) -> None:
        """Begin the sampling loop."""
        if self._running:
            raise ControlError("runtime already started")
        self._running = True
        now = self._sys.now()
        for task in self._tasks:
            task.instruction_base = self._sys.read_counters(
                task.core
            ).instructions
            task.predictor.start_execution(now)
        for pid in self._bg_pids:
            core = self._sys.core_of(pid)
            self._bg_miss_base[pid] = self._sys.read_counters(core).llc_misses
        self._sys.schedule_wakeup(self._opts.sampling_period_s, self._on_wakeup)

    def stop(self) -> None:
        """Stop scheduling further wakeups."""
        self._running = False

    # ------------------------------------------------------------------
    # Periodic sampling
    # ------------------------------------------------------------------

    def _on_wakeup(self) -> None:
        if not self._running:
            return
        self._sys.charge_overhead(
            self._pinned_core, self._opts.invocation_overhead_s
        )
        self.invocations += 1
        now = self._sys.now()

        for task in self._tasks:
            snap = self._sys.read_counters(task.core)
            if task.progress_fn is not None:
                progress = task.progress_fn()
            else:
                progress = snap.instructions - task.instruction_base
            if progress >= 0 and task.predictor.in_execution:
                task.predictor.observe(snap.time_s, progress)
                if (
                    self._opts.record_predictions
                    and task.midpoint_prediction is None
                    and task.predictor.progress_fraction >= 0.5
                ):
                    task.midpoint_prediction = task.predictor.predict(now)

        self._record_bg_grades()
        self._sample_count += 1
        if (
            self._fine is not None
            and self._sample_count % self._opts.decision_every == 0
        ):
            statuses = [
                FgStatus(
                    pid=task.pid,
                    core=task.core,
                    predicted_total_s=task.predictor.predict(now),
                    deadline_s=task.deadline_s,
                )
                for task in self._tasks
                if task.predictor.in_execution
            ]
            if statuses:
                self._fine.decide(statuses, self._bg_intrusiveness())

        self._sys.schedule_wakeup(self._opts.sampling_period_s, self._on_wakeup)

    def _record_bg_grades(self) -> None:
        for pid in self._bg_pids:
            if self._sys.is_paused(pid):
                continue
            grade = self._sys.frequency_grade(self._sys.core_of(pid))
            self.bg_grade_histogram[grade] = (
                self.bg_grade_histogram.get(grade, 0) + 1
            )

    def _bg_intrusiveness(self) -> Dict[int, float]:
        """LLC misses per BG task since the previous decision."""
        result: Dict[int, float] = {}
        for pid in self._bg_pids:
            core = self._sys.core_of(pid)
            misses = self._sys.read_counters(core).llc_misses
            result[pid] = misses - self._bg_miss_base.get(pid, 0.0)
            self._bg_miss_base[pid] = misses
        return result

    # ------------------------------------------------------------------
    # Application-side notifications
    # ------------------------------------------------------------------

    def on_fg_completion(
        self,
        pid: int,
        end_s: float,
        duration_s: float,
        instructions: float,
        llc_misses: float,
    ) -> None:
        """Handle an FG task-execution boundary reported by the app.

        Finalizes the predictor for the completed execution, logs the
        midpoint prediction, feeds the coarse controller, and starts
        tracking the next execution (tasks run back to back).
        """
        task = self._tasks_by_pid.get(pid)
        if task is None:
            return
        if task.predictor.in_execution:
            task.predictor.finish_execution(end_s)
        if task.midpoint_prediction is not None:
            task.prediction_log.append(
                PredictionRecord(
                    execution_index=task.execution_index,
                    predicted_total_s=task.midpoint_prediction,
                    actual_total_s=duration_s,
                )
            )
        task.midpoint_prediction = None
        task.execution_index += 1
        task.instruction_base += instructions

        if self._coarse is not None:
            recent: Sequence = ()
            if self._fine is not None:
                recent = self._fine.decisions[self._decisions_at_last_coarse:]
            action = self._coarse.on_execution(
                ExecutionSample(
                    duration_s=duration_s,
                    llc_misses=llc_misses,
                    instructions=instructions,
                    missed_deadline=duration_s > task.deadline_s,
                ),
                recent_decisions=recent,
            )
            if action is not None and self._fine is not None:
                self._decisions_at_last_coarse = len(self._fine.decisions)

        if self._running:
            task.predictor.start_execution(end_s)
