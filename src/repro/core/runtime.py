"""The Dirigent runtime daemon (Section 4).

Ties profiler output, the online predictor, and the two controllers into
the periodic sampling loop the paper describes: a lightweight thread
pinned to a core shared with a BG task, waking every ``dT = 5 ms`` via a
(jittered) sleep, reading performance counters, updating per-task
completion-time predictions, making a fine time scale control decision
every few segments, and invoking the coarse cache-partition controller
across executions.  Each invocation charges its (<100 us) overhead to the
core the runtime is pinned to.

The runtime only touches the machine through
:class:`repro.sim.osal.SystemInterface`; completion notifications arrive
from the application side (the paper measures task boundaries inside the
FG process via PARSEC's ROI interface) through :meth:`on_fg_completion`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.core.actuation import GuardedSystem
from repro.core.coarse import CoarseGrainController, ExecutionSample
from repro.core.fine import (
    DEFAULT_AHEAD_MARGIN,
    DEFAULT_DEADLINE_GUARD,
    DEFAULT_PAUSE_MARGIN,
    FgStatus,
    FineGrainController,
)
from repro.core.predictor import CompletionTimePredictor, DEFAULT_EMA_WEIGHT
from repro.core.profile import DEFAULT_SAMPLING_PERIOD_S, ExecutionProfile
from repro.errors import ControlError
from repro.sim.config import degraded_mode_enabled
from repro.sim.osal import SystemInterface

#: A wakeup arriving later than this multiple of the sampling period is
#: counted as a suspect sample.  The simulator's own timer error is at
#: most one tick late (1 ms on the 5 ms default period, a 1.2x gap), so
#: clean runs never cross the band; a missed wakeup (one full period or
#: more) always does.
LATE_WAKEUP_FACTOR = 1.5


@dataclass(frozen=True)
class RuntimeOptions:
    """Tunables of the Dirigent runtime (defaults follow the paper).

    Attributes:
        sampling_period_s: Predictor sampling period ``dT``.
        decision_every: Prediction segments per fine-grain decision.
        ema_weight: Weight of the penalty and rate-factor EMAs.
        predictor_scaling: Equation 2 scaling interpretation
            ("penalty-ratio" or the literal "alpha").
        ahead_margin: Fine controller's ahead threshold (fraction).
        pause_margin: Fine controller's pause threshold (fraction).
        deadline_guard: Safety band below the deadline the controller
            steers toward (sized to the predictor's typical error).
        invocation_overhead_s: CPU time charged to the runtime's core per
            wakeup (measured <100 us on the paper's machine).
        enable_fine: Run the fine time scale controller.
        enable_coarse: Run the coarse cache-partition controller.
        initial_fg_ways: Starting FG partition for coarse control.
        coarse_window: Execution-statistics window of the coarse
            controller.
        coarse_decision_every: FG executions per coarse invocation.
        record_predictions: Capture one midpoint prediction per execution
            (used by the accuracy experiments, Figures 6 and 7).
        hardening: Run the graceful-degradation machinery (outlier
            rejection, verified actuation, health monitor).  ``None``
            resolves the ``REPRO_DEGRADED_MODE`` kill switch at
            construction time; hardening is behaviorally invisible on a
            healthy machine either way.
        health_window: Wakeups over which suspect-sample density is
            evaluated.
        degraded_threshold: Suspect density entering degraded mode.
        safe_threshold: Suspect density escalating to the safe policy.
        recover_threshold: Suspect density at or below which a degraded
            or safe runtime steps back toward normal (hysteresis).
        safe_dwell_samples: Minimum wakeups spent in safe mode before
            recovery is considered (prevents oscillation).
        degraded_guard_extra: Widening of the fine controller's
            deadline guard while sensing is degraded.
        actuation_retries: Re-issues of a failed actuation before it is
            counted as failed.
    """

    sampling_period_s: float = DEFAULT_SAMPLING_PERIOD_S
    decision_every: int = 5
    ema_weight: float = DEFAULT_EMA_WEIGHT
    predictor_scaling: str = "penalty-ratio"
    ahead_margin: float = DEFAULT_AHEAD_MARGIN
    pause_margin: float = DEFAULT_PAUSE_MARGIN
    deadline_guard: float = DEFAULT_DEADLINE_GUARD
    invocation_overhead_s: float = 100e-6
    enable_fine: bool = True
    enable_coarse: bool = True
    initial_fg_ways: int = 2
    coarse_window: int = 10
    coarse_decision_every: int = 7
    record_predictions: bool = True
    hardening: Optional[bool] = None
    health_window: int = 40
    degraded_threshold: float = 0.15
    safe_threshold: float = 0.35
    recover_threshold: float = 0.05
    safe_dwell_samples: int = 100
    degraded_guard_extra: float = 0.05
    actuation_retries: int = 2

    def __post_init__(self) -> None:
        if self.sampling_period_s <= 0:
            raise ControlError("sampling_period_s must be > 0")
        if self.decision_every < 1:
            raise ControlError("decision_every must be >= 1")
        if self.invocation_overhead_s < 0:
            raise ControlError("invocation_overhead_s must be >= 0")
        if self.health_window < 1:
            raise ControlError("health_window must be >= 1")
        for name in ("degraded_threshold", "safe_threshold",
                     "recover_threshold"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ControlError("%s must be in [0, 1]" % name)
        if self.safe_threshold < self.degraded_threshold:
            raise ControlError(
                "safe_threshold must be >= degraded_threshold"
            )
        if self.recover_threshold > self.degraded_threshold:
            raise ControlError(
                "recover_threshold must be <= degraded_threshold"
            )
        if self.safe_dwell_samples < 0:
            raise ControlError("safe_dwell_samples must be >= 0")
        if not 0.0 <= self.degraded_guard_extra < 1.0:
            raise ControlError("degraded_guard_extra must be in [0, 1)")
        if self.actuation_retries < 0:
            raise ControlError("actuation_retries must be >= 0")


@dataclass(frozen=True)
class PredictionRecord:
    """Midpoint prediction vs. measured outcome of one execution.

    Attributes:
        execution_index: FG execution number.
        predicted_total_s: Total time predicted at roughly half progress.
        actual_total_s: Measured execution time.
    """

    execution_index: int
    predicted_total_s: float
    actual_total_s: float

    @property
    def relative_error(self) -> float:
        """``|predicted - actual| / actual`` (Equation 3)."""
        return abs(self.predicted_total_s - self.actual_total_s) / self.actual_total_s


class ManagedTask:
    """Per-FG-task runtime state.

    Args:
        pid: Process id of the FG task.
        core: Core the task is pinned to.
        profile: Offline (or online) execution profile.
        deadline_s: Target completion time.
        ema_weight: Predictor EMA weight.
        progress_fn: Optional alternative progress source (e.g. an
            Application Heartbeats bridge) returning progress within the
            current execution; when None, per-core instruction counters
            are used, as in the paper.
    """

    def __init__(
        self,
        pid: int,
        core: int,
        profile: ExecutionProfile,
        deadline_s: float,
        ema_weight: float,
        progress_fn: Optional[Callable[[], float]] = None,
        predictor_scaling: str = "penalty-ratio",
    ) -> None:
        if deadline_s <= 0:
            raise ControlError("deadline must be positive")
        self.pid = pid
        self.core = core
        self.deadline_s = deadline_s
        self.predictor = CompletionTimePredictor(
            profile, ema_weight=ema_weight, scaling=predictor_scaling
        )
        self.progress_fn = progress_fn
        self.instruction_base = 0.0
        self.execution_index = 0
        self.midpoint_prediction: Optional[float] = None
        self.prediction_log: List[PredictionRecord] = []


class DirigentRuntime:
    """The periodic monitoring and control loop."""

    def __init__(
        self,
        system: SystemInterface,
        tasks: Sequence[ManagedTask],
        bg_pids: Sequence[int],
        options: Optional[RuntimeOptions] = None,
    ) -> None:
        if not tasks:
            raise ControlError("DirigentRuntime needs at least one FG task")
        self._sys = system
        self._tasks = list(tasks)
        self._tasks_by_pid = {task.pid: task for task in self._tasks}
        self._bg_pids = list(bg_pids)
        self._opts = options or RuntimeOptions()
        # The runtime thread is pinned to a core shared with a BG task.
        self._pinned_core = (
            system.core_of(self._bg_pids[0]) if self._bg_pids else 0
        )
        # Graceful-degradation machinery.  When hardened, controllers
        # actuate through a GuardedSystem (verify + bounded retry) and
        # predictors reject physically impossible samples; on a healthy
        # machine neither changes behavior, so clean runs stay
        # bit-identical with hardening on or off.
        self._hardening = (
            degraded_mode_enabled()
            if self._opts.hardening is None
            else self._opts.hardening
        )
        self.guarded: Optional[GuardedSystem] = None
        actuator: SystemInterface = system
        if self._hardening:
            self.guarded = GuardedSystem(
                system,
                retries=self._opts.actuation_retries,
                overhead_core=self._pinned_core,
            )
            actuator = self.guarded
        self._act = actuator
        for task in self._tasks:
            task.predictor.reject_outliers = self._hardening
        self._fine: Optional[FineGrainController] = None
        if self._opts.enable_fine:
            self._fine = FineGrainController(
                actuator,
                bg_pids,
                ahead_margin=self._opts.ahead_margin,
                pause_margin=self._opts.pause_margin,
                deadline_guard=self._opts.deadline_guard,
            )
        self._coarse: Optional[CoarseGrainController] = None
        if self._opts.enable_coarse:
            self._coarse = CoarseGrainController(
                actuator,
                fg_cores=[task.core for task in self._tasks],
                initial_fg_ways=self._opts.initial_fg_ways,
                window=self._opts.coarse_window,
                decision_every=self._opts.coarse_decision_every,
            )
        self._running = False
        self._sample_count = 0
        self._decisions_at_last_coarse = 0
        self._bg_miss_base: Dict[int, float] = {}
        #: Histogram of BG core DVFS grades observed at each sample
        #: (paused cores are excluded), for Figure 12.
        self.bg_grade_histogram: Dict[int, int] = {}
        self.invocations = 0
        # Health-monitor state (see _update_health).
        self._suspects: Deque[int] = deque(maxlen=self._opts.health_window)
        self._anomaly_base = 0
        self._last_wakeup_s: Optional[float] = None
        self._mode_entered_s = 0.0
        self._safe_entered_sample = 0
        #: Current operating mode: "normal", "degraded", or "safe".
        self.mode = "normal"
        #: Progress reads below the execution's instruction base (the
        #: signature of a counter sample frozen across a completion).
        self.negative_progress_samples = 0
        #: Wakeups arriving later than LATE_WAKEUP_FACTOR periods.
        self.late_wakeups = 0
        #: Wakeups flagged suspect by the health monitor.
        self.suspect_samples = 0
        #: Wakeups evaluated by the health monitor.
        self.health_samples = 0
        #: Transitions into degraded and safe mode.
        self.degraded_entries = 0
        self.safe_entries = 0
        self._degraded_time_acc = 0.0
        self._safe_time_acc = 0.0

    @property
    def options(self) -> RuntimeOptions:
        """The runtime's configuration."""
        return self._opts

    @property
    def tasks(self) -> List[ManagedTask]:
        """Managed FG tasks."""
        return list(self._tasks)

    @property
    def fine_controller(self) -> Optional[FineGrainController]:
        """The fine time scale controller, when enabled."""
        return self._fine

    @property
    def coarse_controller(self) -> Optional[CoarseGrainController]:
        """The coarse time scale controller, when enabled."""
        return self._coarse

    @property
    def hardening_enabled(self) -> bool:
        """True when the graceful-degradation machinery is active."""
        return self._hardening

    def degraded_time_s(self, now_s: float) -> float:
        """Total time spent in degraded mode up to ``now_s``."""
        acc = self._degraded_time_acc
        if self.mode == "degraded":
            acc += now_s - self._mode_entered_s
        return acc

    def safe_time_s(self, now_s: float) -> float:
        """Total time spent in the static safe policy up to ``now_s``."""
        acc = self._safe_time_acc
        if self.mode == "safe":
            acc += now_s - self._mode_entered_s
        return acc

    def sensor_anomalies(self) -> Dict[str, int]:
        """Aggregate sensing-anomaly counters across all FG predictors."""
        totals = {
            "stale": 0, "zero_delta": 0, "rejected": 0,
            "negative_progress": self.negative_progress_samples,
            "late_wakeups": self.late_wakeups,
        }
        for task in self._tasks:
            totals["stale"] += task.predictor.stale_samples
            totals["zero_delta"] += task.predictor.zero_delta_samples
            totals["rejected"] += task.predictor.rejected_samples
        return totals

    def start(self) -> None:
        """Begin the sampling loop."""
        if self._running:
            raise ControlError("runtime already started")
        self._running = True
        now = self._sys.now()
        for task in self._tasks:
            task.instruction_base = self._sys.read_counters(
                task.core
            ).instructions
            task.predictor.start_execution(now)
        for pid in self._bg_pids:
            core = self._sys.core_of(pid)
            self._bg_miss_base[pid] = self._sys.read_counters(core).llc_misses
        self._last_wakeup_s = now
        self._sys.schedule_wakeup(self._opts.sampling_period_s, self._on_wakeup)

    def stop(self) -> None:
        """Stop scheduling further wakeups."""
        self._running = False

    # ------------------------------------------------------------------
    # Periodic sampling
    # ------------------------------------------------------------------

    def _on_wakeup(self) -> None:
        if not self._running:
            return
        self._sys.charge_overhead(
            self._pinned_core, self._opts.invocation_overhead_s
        )
        self.invocations += 1
        now = self._sys.now()

        for task in self._tasks:
            snap = self._sys.read_counters(task.core)
            if task.progress_fn is not None:
                progress = task.progress_fn()
            else:
                progress = snap.instructions - task.instruction_base
            if progress < 0:
                self.negative_progress_samples += 1
            if progress >= 0 and task.predictor.in_execution:
                task.predictor.observe(snap.time_s, progress)
                if (
                    self._opts.record_predictions
                    and task.midpoint_prediction is None
                    and task.predictor.progress_fraction >= 0.5
                ):
                    task.midpoint_prediction = task.predictor.predict(now)

        self._record_bg_grades()
        self._sample_count += 1
        if self._hardening:
            self._update_health(now)
        at_decision = self._sample_count % self._opts.decision_every == 0
        if self.mode == "safe":
            # Decisions are suspended under the static safe policy; just
            # re-assert it against drift (a faulty actuator may have
            # silently dropped the original writes).
            if at_decision:
                self._assert_safe_policy()
        elif self._fine is not None and at_decision:
            statuses = [
                FgStatus(
                    pid=task.pid,
                    core=task.core,
                    predicted_total_s=task.predictor.predict(now),
                    deadline_s=task.deadline_s,
                )
                for task in self._tasks
                if task.predictor.in_execution
            ]
            if statuses:
                self._fine.decide(statuses, self._bg_intrusiveness())

        self._sys.schedule_wakeup(self._opts.sampling_period_s, self._on_wakeup)

    def _record_bg_grades(self) -> None:
        for pid in self._bg_pids:
            if self._sys.is_paused(pid):
                continue
            grade = self._sys.frequency_grade(self._sys.core_of(pid))
            self.bg_grade_histogram[grade] = (
                self.bg_grade_histogram.get(grade, 0) + 1
            )

    # ------------------------------------------------------------------
    # Health monitoring and degraded operation
    # ------------------------------------------------------------------

    def _update_health(self, now: float) -> None:
        """Fold this wakeup's anomaly evidence into the suspect window.

        A wakeup is *suspect* when any sensing or actuation anomaly was
        observed since the previous one: a sample the predictor ignored
        (stale, zero-delta on a hardware-counter task, or rejected as
        physically impossible), a negative progress read, an actuation
        whose verification never passed, or the wakeup itself arriving
        grossly late.  On a healthy machine none of these occur, so the
        window stays empty and the mode never leaves "normal".
        """
        if self._last_wakeup_s is not None:
            late_band = LATE_WAKEUP_FACTOR * self._opts.sampling_period_s
            if now - self._last_wakeup_s > late_band:
                self.late_wakeups += 1
        self._last_wakeup_s = now
        total = self._anomaly_total()
        suspect = 1 if total > self._anomaly_base else 0
        self._anomaly_base = total
        self._suspects.append(suspect)
        self.health_samples += 1
        self.suspect_samples += suspect
        if len(self._suspects) == self._suspects.maxlen:
            self._evaluate_mode(now)

    def _anomaly_total(self) -> int:
        total = self.negative_progress_samples + self.late_wakeups
        for task in self._tasks:
            predictor = task.predictor
            total += predictor.stale_samples + predictor.rejected_samples
            if task.progress_fn is None:
                # Zero-delta is anomalous only for hardware counters (a
                # running core always retires instructions); heartbeat
                # progress legitimately stalls between beats.
                total += predictor.zero_delta_samples
        if self.guarded is not None:
            total += self.guarded.actuations_failed
        return total

    def _evaluate_mode(self, now: float) -> None:
        rate = sum(self._suspects) / len(self._suspects)
        opts = self._opts
        if self.mode == "normal":
            if rate >= opts.degraded_threshold:
                self._enter_degraded(now)
        elif self.mode == "degraded":
            if rate >= opts.safe_threshold:
                self._enter_safe(now)
            elif rate <= opts.recover_threshold:
                self._exit_degraded(now)
        else:  # safe
            dwelled = (
                self.health_samples - self._safe_entered_sample
                >= opts.safe_dwell_samples
            )
            if dwelled and rate <= opts.recover_threshold:
                self._exit_safe(now)

    def _enter_degraded(self, now: float) -> None:
        self.mode = "degraded"
        self.degraded_entries += 1
        self._mode_entered_s = now
        # Predictions are less trustworthy: steer further from the
        # deadline and stop folding corrupt measurements into the
        # cross-execution penalty history.
        if self._fine is not None:
            self._fine.set_deadline_guard(
                min(
                    0.99,
                    self._opts.deadline_guard
                    + self._opts.degraded_guard_extra,
                )
            )
        for task in self._tasks:
            task.predictor.hold_penalty_updates = True

    def _exit_degraded(self, now: float) -> None:
        self._degraded_time_acc += now - self._mode_entered_s
        self.mode = "normal"
        if self._fine is not None:
            self._fine.set_deadline_guard(self._opts.deadline_guard)
        for task in self._tasks:
            task.predictor.hold_penalty_updates = False

    def _enter_safe(self, now: float) -> None:
        self._degraded_time_acc += now - self._mode_entered_s
        self.mode = "safe"
        self.safe_entries += 1
        self._mode_entered_s = now
        self._safe_entered_sample = self.health_samples
        self._assert_safe_policy()

    def _exit_safe(self, now: float) -> None:
        self._safe_time_acc += now - self._mode_entered_s
        # Step back to degraded (not normal): the guard stays widened
        # and penalty updates held until the window fully clears.
        self.mode = "degraded"
        self._mode_entered_s = now
        for pid in self._bg_pids:
            if self._act.is_paused(pid):
                self._act.resume(pid)

    def _assert_safe_policy(self) -> None:
        """Static safe policy: FG cores at maximum frequency, BG tasks
        paused, last-known-good partition left in place.  Only drifted
        state is re-actuated, so a healthy pass is read-only."""
        max_grade = self._act.num_frequency_grades() - 1
        for task in self._tasks:
            if self._act.frequency_grade(task.core) != max_grade:
                self._act.set_frequency_grade(task.core, max_grade)
        for pid in self._bg_pids:
            if not self._act.is_paused(pid):
                self._act.pause(pid)

    def _bg_intrusiveness(self) -> Dict[int, float]:
        """LLC misses per BG task since the previous decision."""
        result: Dict[int, float] = {}
        for pid in self._bg_pids:
            core = self._sys.core_of(pid)
            misses = self._sys.read_counters(core).llc_misses
            result[pid] = misses - self._bg_miss_base.get(pid, 0.0)
            self._bg_miss_base[pid] = misses
        return result

    # ------------------------------------------------------------------
    # Application-side notifications
    # ------------------------------------------------------------------

    def on_fg_completion(
        self,
        pid: int,
        end_s: float,
        duration_s: float,
        instructions: float,
        llc_misses: float,
    ) -> None:
        """Handle an FG task-execution boundary reported by the app.

        Finalizes the predictor for the completed execution, logs the
        midpoint prediction, feeds the coarse controller, and starts
        tracking the next execution (tasks run back to back).
        """
        task = self._tasks_by_pid.get(pid)
        if task is None:
            return
        if task.predictor.in_execution:
            task.predictor.finish_execution(end_s)
        if task.midpoint_prediction is not None:
            task.prediction_log.append(
                PredictionRecord(
                    execution_index=task.execution_index,
                    predicted_total_s=task.midpoint_prediction,
                    actual_total_s=duration_s,
                )
            )
        task.midpoint_prediction = None
        task.execution_index += 1
        task.instruction_base += instructions

        if self._coarse is not None and self.mode != "safe":
            recent: Sequence = ()
            if self._fine is not None:
                recent = self._fine.decisions[self._decisions_at_last_coarse:]
            action = self._coarse.on_execution(
                ExecutionSample(
                    duration_s=duration_s,
                    llc_misses=llc_misses,
                    instructions=instructions,
                    missed_deadline=duration_s > task.deadline_s,
                ),
                recent_decisions=recent,
            )
            if action is not None and self._fine is not None:
                self._decisions_at_last_coarse = len(self._fine.decisions)

        if self._running:
            task.predictor.start_execution(end_s)
