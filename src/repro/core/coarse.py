"""Coarse time scale QoS controller (Section 4.3, cache partitioning).

Because of cache inertia, repartitioning the LLC only pays off over many
FG executions, so this controller works on statistics gathered across a
window of recent executions (the paper uses the last 10) and adjusts the
FG way-partition with three heuristics:

1. **Correlation**: if FG execution time correlates strongly (>0.75) with
   FG LLC misses and deadlines were recently missed, growing the FG
   partition is likely to help — add one way.
2. **Hit-rate check**: if a recent grow did not lower FG misses, shrink
   the partition back; this stops anomalous executions from ratcheting
   the partition up forever.
3. **Throttle pressure**: if the fine time scale controller's history
   shows BG tasks heavily throttled or paused, grow the FG partition even
   without miss correlation — partitioning may isolate the interference
   more cheaply than throttling (heuristic 2 later undoes it if not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.fine import Decision
from repro.core.stats import mean, pearson_correlation
from repro.errors import ControlError
from repro.sim.osal import SystemInterface

#: Correlation threshold the paper "somewhat arbitrarily" chose.
DEFAULT_CORRELATION_THRESHOLD = 0.75

#: Executions per controller invocation; with the 10-execution statistics
#: window this gives the paper's ~32-execution convergence (5 invocations).
DEFAULT_DECISION_EVERY = 7

#: Statistics window (the paper's "history of 10 last executions").
DEFAULT_WINDOW = 10

#: Fraction of fine-grain decisions showing hard BG throttling that
#: triggers heuristic 3.
DEFAULT_PRESSURE_THRESHOLD = 0.5

#: Required relative miss improvement for a grow to be kept (heuristic 2).
DEFAULT_MISS_IMPROVEMENT = 0.02


@dataclass(frozen=True)
class ExecutionSample:
    """Per-execution statistics fed to the coarse controller.

    Attributes:
        duration_s: FG execution time.
        llc_misses: LLC misses suffered by the FG task.
        instructions: Instructions retired by the FG task.
        missed_deadline: Whether the execution exceeded its target.
    """

    duration_s: float
    llc_misses: float
    instructions: float
    missed_deadline: bool

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction of the execution."""
        if self.instructions <= 0:
            return 0.0
        return self.llc_misses / self.instructions * 1000.0


class CoarseGrainController:
    """Adjusts the FG LLC partition from cross-execution statistics."""

    def __init__(
        self,
        system: SystemInterface,
        fg_cores: Sequence[int],
        initial_fg_ways: int = 2,
        window: int = DEFAULT_WINDOW,
        decision_every: int = DEFAULT_DECISION_EVERY,
        correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD,
        pressure_threshold: float = DEFAULT_PRESSURE_THRESHOLD,
        miss_improvement: float = DEFAULT_MISS_IMPROVEMENT,
    ) -> None:
        if window < 2:
            raise ControlError("window must be >= 2")
        if decision_every < 1:
            raise ControlError("decision_every must be >= 1")
        self._sys = system
        self._fg_cores = list(fg_cores)
        max_ways = system.llc_ways() - 1
        if not 1 <= initial_fg_ways <= max_ways:
            raise ControlError(
                "initial_fg_ways must be in [1, %d]" % max_ways
            )
        self._window = window
        self._decision_every = decision_every
        self._corr_threshold = correlation_threshold
        self._pressure_threshold = pressure_threshold
        self._miss_improvement = miss_improvement
        self._fg_ways = initial_fg_ways
        self._samples: List[ExecutionSample] = []
        self._since_decision = 0
        self._last_action: Optional[str] = None
        self._mpki_before_grow: Optional[float] = None
        self.partition_history: List[int] = [initial_fg_ways]
        self._sys.set_fg_partition(self._fg_cores, self._fg_ways)

    @property
    def fg_ways(self) -> int:
        """Current FG partition size in ways."""
        return self._fg_ways

    def on_execution(
        self,
        sample: ExecutionSample,
        recent_decisions: Sequence[Decision] = (),
    ) -> Optional[str]:
        """Feed one completed FG execution; maybe adjust the partition.

        Args:
            sample: Statistics of the completed execution.
            recent_decisions: Fine-grain decisions made since the last
                coarse invocation (throttle-pressure input).

        Returns:
            The action taken at a decision boundary (``"grow"``,
            ``"shrink"``, ``"hold"``), or None between boundaries.
        """
        self._samples.append(sample)
        if len(self._samples) > self._window:
            self._samples.pop(0)
        self._since_decision += 1
        if self._since_decision < self._decision_every:
            return None
        self._since_decision = 0
        return self._decide(recent_decisions)

    def _decide(self, recent_decisions: Sequence[Decision]) -> str:
        if len(self._samples) < 2:
            return "hold"
        durations = [s.duration_s for s in self._samples]
        misses = [s.llc_misses for s in self._samples]
        window_mpki = mean([s.mpki for s in self._samples])

        # Heuristic 2: a recent grow must have lowered misses, else revert.
        if self._last_action == "grow" and self._mpki_before_grow is not None:
            improved = window_mpki < self._mpki_before_grow * (
                1.0 - self._miss_improvement
            )
            if not improved:
                self._apply(self._fg_ways - 1, "shrink")
                self._mpki_before_grow = None
                return "shrink"
            self._mpki_before_grow = None

        correlation = pearson_correlation(durations, misses)
        missed_any = any(s.missed_deadline for s in self._samples)

        # Heuristic 1: strong time/miss correlation plus missed deadlines.
        if correlation > self._corr_threshold and missed_any:
            if self._apply(self._fg_ways + 1, "grow"):
                self._mpki_before_grow = window_mpki
                return "grow"

        # Heuristic 3: BG heavily throttled -> try isolating with ways.
        if recent_decisions:
            pressured = sum(
                1
                for d in recent_decisions
                if d.bg_paused > 0
                or (d.bg_grades and max(d.bg_grades.values()) == 0)
            )
            if pressured / len(recent_decisions) >= self._pressure_threshold:
                if self._apply(self._fg_ways + 1, "grow"):
                    self._mpki_before_grow = window_mpki
                    return "grow"

        self._last_action = "hold"
        self.partition_history.append(self._fg_ways)
        return "hold"

    def _apply(self, fg_ways: int, action: str) -> bool:
        max_ways = self._sys.llc_ways() - 1
        if not 1 <= fg_ways <= max_ways:
            self._last_action = "hold"
            self.partition_history.append(self._fg_ways)
            return False
        self._fg_ways = fg_ways
        self._sys.set_fg_partition(self._fg_cores, fg_ways)
        self._last_action = action
        self.partition_history.append(fg_ways)
        return True
