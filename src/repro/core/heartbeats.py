"""Application Heartbeats-style progress reporting.

The paper's profiler counts retired instructions, but notes that "more
abstract metrics can also be used" and cites Application Heartbeats
[Hoffmann et al.] as the general progress-report interface its
millisecond-scale profiler resembles.  This module provides that
alternative progress source: the application emits *heartbeats* (one per
frame, request, or work quantum) and the runtime reads the beat count
instead of hardware counters.

Heartbeats quantize progress — the predictor only sees multiples of the
beat size — so accuracy degrades gracefully as beats get coarser; the
``bench_ablation_progress_source`` benchmark quantifies this.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ControlError


class HeartbeatCounter:
    """A monotone counter of heartbeats emitted by one application task."""

    def __init__(self) -> None:
        self._beats = 0

    @property
    def beats(self) -> int:
        """Heartbeats emitted in the current task execution."""
        return self._beats

    def emit(self, count: int = 1) -> None:
        """Record ``count`` heartbeats."""
        if count < 0:
            raise ControlError("heartbeat count must be >= 0")
        self._beats += count

    def reset(self) -> None:
        """Start a new task execution."""
        self._beats = 0


class ProcessHeartbeatBridge:
    """Instrument a simulated process to emit heartbeats.

    Stands in for the source-level instrumentation a real deployment
    would add: the application emits one heartbeat every
    ``beat_instructions`` units of work.  The bridge exposes
    :meth:`progress`, pluggable into
    :class:`repro.core.runtime.ManagedTask` as its progress source.

    Args:
        process_progress: Callable returning the task's true progress in
            instructions within the current execution (the simulated
            app's internal state).
        beat_instructions: Work per heartbeat.
        channel: Optional delivery channel mapping the number of beats
            the application emitted to the number actually delivered to
            the counter.  ``None`` is lossless delivery.  The fault
            layer (:meth:`repro.faults.FaultInjector.heartbeat_channel`)
            supplies lossy/duplicating channels; lost beats stay lost —
            emission and delivery are tracked separately, so a dropped
            beat is never silently re-delivered on the next poll.
    """

    def __init__(
        self,
        process_progress: Callable[[], float],
        beat_instructions: float,
        channel: Optional[Callable[[int], int]] = None,
    ) -> None:
        if beat_instructions <= 0:
            raise ControlError("beat_instructions must be > 0")
        self._true_progress = process_progress
        self._beat = beat_instructions
        self._channel = channel
        self._emitted = 0
        self.counter = HeartbeatCounter()

    @property
    def beat_instructions(self) -> float:
        """Work quantum represented by one heartbeat."""
        return self._beat

    def poll(self) -> int:
        """Synchronize the counter with the application's progress.

        Models the app emitting beats as it crosses work boundaries;
        each newly emitted beat passes through the delivery channel.
        Returns the number of new beats *delivered*.
        """
        target = int(self._true_progress() / self._beat)
        new = target - self._emitted
        if new <= 0:
            return 0
        self._emitted = target
        delivered = new if self._channel is None else self._channel(new)
        if delivered > 0:
            self.counter.emit(delivered)
        return max(0, delivered)

    def progress(self) -> float:
        """Progress as seen through delivered heartbeats (quantized)."""
        self.poll()
        return self.counter.beats * self._beat

    def on_execution_complete(self) -> None:
        """Reset for the next execution (wire to completion events)."""
        self._emitted = 0
        self.counter.reset()
