"""Application Heartbeats-style progress reporting.

The paper's profiler counts retired instructions, but notes that "more
abstract metrics can also be used" and cites Application Heartbeats
[Hoffmann et al.] as the general progress-report interface its
millisecond-scale profiler resembles.  This module provides that
alternative progress source: the application emits *heartbeats* (one per
frame, request, or work quantum) and the runtime reads the beat count
instead of hardware counters.

Heartbeats quantize progress — the predictor only sees multiples of the
beat size — so accuracy degrades gracefully as beats get coarser; the
``bench_ablation_progress_source`` benchmark quantifies this.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ControlError


class HeartbeatCounter:
    """A monotone counter of heartbeats emitted by one application task."""

    def __init__(self) -> None:
        self._beats = 0

    @property
    def beats(self) -> int:
        """Heartbeats emitted in the current task execution."""
        return self._beats

    def emit(self, count: int = 1) -> None:
        """Record ``count`` heartbeats."""
        if count < 0:
            raise ControlError("heartbeat count must be >= 0")
        self._beats += count

    def reset(self) -> None:
        """Start a new task execution."""
        self._beats = 0


class ProcessHeartbeatBridge:
    """Instrument a simulated process to emit heartbeats.

    Stands in for the source-level instrumentation a real deployment
    would add: the application emits one heartbeat every
    ``beat_instructions`` units of work.  The bridge exposes
    :meth:`progress`, pluggable into
    :class:`repro.core.runtime.ManagedTask` as its progress source.

    Args:
        process_progress: Callable returning the task's true progress in
            instructions within the current execution (the simulated
            app's internal state).
        beat_instructions: Work per heartbeat.
    """

    def __init__(
        self,
        process_progress: Callable[[], float],
        beat_instructions: float,
    ) -> None:
        if beat_instructions <= 0:
            raise ControlError("beat_instructions must be > 0")
        self._true_progress = process_progress
        self._beat = beat_instructions
        self.counter = HeartbeatCounter()

    @property
    def beat_instructions(self) -> float:
        """Work quantum represented by one heartbeat."""
        return self._beat

    def poll(self) -> int:
        """Synchronize the counter with the application's progress.

        Models the app emitting beats as it crosses work boundaries.
        Returns the number of new beats emitted.
        """
        target = int(self._true_progress() / self._beat)
        new = target - self.counter.beats
        if new > 0:
            self.counter.emit(new)
        return max(0, new)

    def progress(self) -> float:
        """Progress as seen through heartbeats (quantized)."""
        self.poll()
        return self.counter.beats * self._beat

    def on_execution_complete(self) -> None:
        """Reset for the next execution (wire to completion events)."""
        self.counter.reset()
