"""Node-level fault plans: seeded chaos at fleet scale.

Where :mod:`repro.faults.plan` corrupts a *runtime's view* of one
machine, this module breaks whole *nodes* of a cluster: fail-stop
crashes, sustained frequency throttles ("slow nodes"), control-plane
partitions (the node keeps computing but its heartbeats never arrive),
flapping nodes that cycle down and up, and correlated rack failures
that take several nodes down at once.

The same determinism contract applies.  A :class:`NodeFaultPlan` is a
frozen, declarative description; materializing it against a node list
(:meth:`NodeFaultPlan.schedule`) draws from one RNG stream per
``(node, kind)`` — and per rack — via
:func:`repro.sim.timebase.derive_rng`, so a zero rate for one kind
never perturbs another kind's draws, and a zero plan draws nothing at
all.  ``Cluster.run`` installs no control plane for a zero plan, so
zero-fault fleet runs are *structurally* identical to plain runs —
bit-identity by construction.

Every fault time in a materialized :class:`FleetSchedule` is a plain
float of virtual fleet seconds, independent of the simulation backend;
the control plane quantizes them to its round cadence, so the combined
:class:`FleetFaultReport` ``event_signature`` is comparable across
scalar/batch/vector backends the same way the single-node signature is.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.sim.timebase import derive_rng

#: Node-fault kinds, in precedence order: when several draws hit the
#: same node, the earliest kind in this tuple wins (a crashed node
#: cannot also meaningfully flap).
NODE_FAULT_KINDS: Tuple[str, ...] = ("crash", "partition", "slow", "flap")


@dataclass(frozen=True)
class NodeFaultSpec:
    """One materialized node fault.

    Attributes:
        node: Node name the fault applies to.
        kind: One of :data:`NODE_FAULT_KINDS`.
        onset_s: Fleet-virtual second the fault takes effect.
        throttle_grade: DVFS grade a slow node is pinned to.
        beat_stretch: Heartbeat-period multiplier of a slow node (its
            starved node agent beats this many rounds apart).
        down_s: Seconds a flapping node stays down per cycle.
        up_s: Seconds a flapping node stays up between downs.
        cycles: Down/up cycles of a flapping node.
        rack: Rack index for correlated (rack) crashes, else None.
    """

    node: str
    kind: str
    onset_s: float
    throttle_grade: int = 0
    beat_stretch: int = 16
    down_s: float = 0.0
    up_s: float = 0.0
    cycles: int = 0
    rack: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in NODE_FAULT_KINDS:
            raise FaultError(
                "unknown node-fault kind %r (kinds: %s)"
                % (self.kind, ", ".join(NODE_FAULT_KINDS))
            )
        if self.onset_s < 0:
            raise FaultError("onset_s must be >= 0")
        if self.kind == "flap":
            if self.cycles < 1:
                raise FaultError("a flap fault needs cycles >= 1")
            if self.down_s <= 0 or self.up_s <= 0:
                raise FaultError("flap down_s and up_s must be positive")
        if self.throttle_grade < 0:
            raise FaultError("throttle_grade must be >= 0")
        if self.beat_stretch < 1:
            raise FaultError("beat_stretch must be >= 1")

    def down_intervals(self) -> Tuple[Tuple[float, float], ...]:
        """Half-open ``[start, end)`` intervals the node is down.

        A crash is one unbounded interval; a flap is ``cycles`` bounded
        ones; slow and partitioned nodes never stop computing.
        """
        if self.kind == "crash":
            return ((self.onset_s, float("inf")),)
        if self.kind == "flap":
            period = self.down_s + self.up_s
            return tuple(
                (self.onset_s + k * period,
                 self.onset_s + k * period + self.down_s)
                for k in range(self.cycles)
            )
        return ()

    def is_down(self, t: float) -> bool:
        """True when the node cannot compute (or beat) at time ``t``."""
        return any(start <= t < end for start, end in self.down_intervals())


@dataclass(frozen=True)
class FleetSchedule:
    """A fault plan materialized against a concrete node list."""

    specs: Tuple[NodeFaultSpec, ...]

    def spec_for(self, node: str) -> Optional[NodeFaultSpec]:
        """The node's fault, or None for a healthy node."""
        for spec in self.specs:
            if spec.node == node:
                return spec
        return None

    def injection_counts(self) -> Dict[str, int]:
        """Per-kind count of materialized node faults."""
        counts: Dict[str, int] = {}
        for spec in self.specs:
            kind = "node-%s" % spec.kind
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def injection_events(self) -> List[Tuple[float, str, str, str]]:
        """Discrete injection events as (time, node, kind, detail).

        Flap faults contribute one event per down and up edge; the
        control plane merges these with its own detection/recovery
        events into the fleet ``event_signature``.
        """
        events: List[Tuple[float, str, str, str]] = []
        for spec in self.specs:
            if spec.kind == "flap":
                for cycle, (start, end) in enumerate(spec.down_intervals()):
                    events.append((
                        start, spec.node, "flap-down", "cycle=%d" % cycle
                    ))
                    events.append((
                        end, spec.node, "flap-up", "cycle=%d" % cycle
                    ))
                continue
            detail = ""
            if spec.kind == "slow":
                detail = "grade=%d stretch=%d" % (
                    spec.throttle_grade, spec.beat_stretch
                )
            elif spec.rack is not None:
                detail = "rack=%d" % spec.rack
            events.append((
                spec.onset_s, spec.node, "node-%s" % spec.kind, detail
            ))
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        return events


@dataclass(frozen=True)
class NodeFaultPlan:
    """Seeded description of one fleet chaos scenario.

    Rates are *per node* (or per rack): each node draws once per
    enabled kind from its own ``fleet/<node>/<kind>`` stream, so plans
    compose the way single-node :class:`repro.faults.FaultPlan` rates
    do — enabling one kind never changes another kind's draws.

    Attributes:
        scenario: Catalog name (reporting; free-form for custom plans).
        seed: Root seed of every node-fault stream.
        crash_rate: Per-node probability of a fail-stop crash.
        partition_rate: Per-node probability of a control-plane
            partition: the node keeps computing, but its heartbeats are
            never seen and its completed work cannot be collected.
        slow_rate: Per-node probability of a sustained throttle.
        flap_rate: Per-node probability of a flapping fault.
        onset_window_s: ``(lo, hi)`` fleet seconds the onset of each
            drawn fault is uniform over.
        slow_grade: DVFS grade slow nodes are pinned to.
        slow_beat_stretch: Heartbeat-period multiplier of slow nodes.
        flap_down_s / flap_up_s / flap_cycles: Flap cycle shape.
        rack_size: Nodes per rack (0 disables rack faults); racks are
            contiguous index ranges of the node list.
        rack_rate: Per-rack probability that the whole rack crashes.
        overrides: Explicit per-node faults that bypass the draws
            entirely (tests and targeted experiments).
    """

    scenario: str = "none"
    seed: int = 0
    crash_rate: float = 0.0
    partition_rate: float = 0.0
    slow_rate: float = 0.0
    flap_rate: float = 0.0
    onset_window_s: Tuple[float, float] = (2.0, 6.0)
    slow_grade: int = 0
    slow_beat_stretch: int = 16
    flap_down_s: float = 0.5
    flap_up_s: float = 0.5
    flap_cycles: int = 3
    rack_size: int = 0
    rack_rate: float = 0.0
    overrides: Tuple[NodeFaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "crash_rate", "partition_rate", "slow_rate", "flap_rate",
            "rack_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError("%s must be in [0, 1], got %r" % (name, rate))
        lo, hi = self.onset_window_s
        if lo < 0 or hi < lo:
            raise FaultError(
                "onset_window_s must satisfy 0 <= lo <= hi, got %r"
                % (self.onset_window_s,)
            )
        if self.rack_size < 0:
            raise FaultError("rack_size must be >= 0")
        if self.rack_rate > 0 and self.rack_size < 1:
            raise FaultError("rack_rate needs rack_size >= 1")
        if self.flap_down_s <= 0 or self.flap_up_s <= 0:
            raise FaultError("flap_down_s and flap_up_s must be positive")
        if self.flap_cycles < 1:
            raise FaultError("flap_cycles must be >= 1")
        if self.slow_grade < 0:
            raise FaultError("slow_grade must be >= 0")
        if self.slow_beat_stretch < 1:
            raise FaultError("slow_beat_stretch must be >= 1")

    @property
    def is_zero(self) -> bool:
        """True when the plan faults no node.

        ``Cluster.run`` installs no control plane for a zero plan, so a
        zero-fault fleet run is structurally identical to a plain run.
        """
        return (
            self.crash_rate == 0.0
            and self.partition_rate == 0.0
            and self.slow_rate == 0.0
            and self.flap_rate == 0.0
            and self.rack_rate == 0.0
            and not self.overrides
        )

    def with_seed(self, seed: int) -> "NodeFaultPlan":
        """Copy of this plan with a different fault seed."""
        return replace(self, seed=seed)

    def schedule(self, node_names: Sequence[str]) -> FleetSchedule:
        """Materialize the plan against ``node_names``.

        Draw order is fixed (racks, then kinds in precedence order,
        nodes in list order) and every ``(node, kind)`` pair owns its
        stream, so the schedule is a pure function of (plan, names).
        """
        names = list(node_names)
        if len(set(names)) != len(names):
            raise FaultError("node names must be unique")
        for spec in self.overrides:
            if spec.node not in names:
                raise FaultError(
                    "override for unknown node %r" % spec.node
                )
        chosen: Dict[str, NodeFaultSpec] = {
            spec.node: spec for spec in self.overrides
        }
        lo, hi = self.onset_window_s
        if self.rack_rate > 0.0 and self.rack_size >= 1:
            for rack_start in range(0, len(names), self.rack_size):
                rack = rack_start // self.rack_size
                rng = derive_rng(self.seed, "fleet/rack/%d" % rack)
                if rng.random() >= self.rack_rate:
                    continue
                onset = rng.uniform(lo, hi)
                for node in names[rack_start:rack_start + self.rack_size]:
                    if node not in chosen:
                        chosen[node] = NodeFaultSpec(
                            node=node, kind="crash", onset_s=onset,
                            rack=rack,
                        )
        drawers = (
            ("crash", self.crash_rate),
            ("partition", self.partition_rate),
            ("slow", self.slow_rate),
            ("flap", self.flap_rate),
        )
        for kind, rate in drawers:
            if rate <= 0.0:
                continue
            for node in names:
                rng = derive_rng(self.seed, "fleet/%s/%s" % (node, kind))
                hit = rng.random() < rate
                onset = rng.uniform(lo, hi)
                if not hit or node in chosen:
                    # The draw happened either way: a higher-precedence
                    # fault claiming the node never shifts this stream.
                    continue
                if kind == "slow":
                    chosen[node] = NodeFaultSpec(
                        node=node, kind="slow", onset_s=onset,
                        throttle_grade=self.slow_grade,
                        beat_stretch=self.slow_beat_stretch,
                    )
                elif kind == "flap":
                    chosen[node] = NodeFaultSpec(
                        node=node, kind="flap", onset_s=onset,
                        down_s=self.flap_down_s, up_s=self.flap_up_s,
                        cycles=self.flap_cycles,
                    )
                else:
                    chosen[node] = NodeFaultSpec(
                        node=node, kind=kind, onset_s=onset,
                    )
        return FleetSchedule(specs=tuple(
            chosen[node] for node in names if node in chosen
        ))


@dataclass(frozen=True)
class FleetFaultReport:
    """Fleet-level fault and self-healing accounting of one cluster run.

    The fleet analogue of :class:`repro.faults.FaultReport`: what the
    plan broke, what the control plane saw, and how recovery went.

    Attributes:
        scenario: Fleet scenario the run executed under.
        fault_seed: Resolved seed of the node-fault streams.
        injected: Materialized node-fault count per kind.
        events: Total discrete events logged (injections + control).
        event_signature: The merged injection + control-plane event
            stream as primitive ``(time, node, kind, detail)`` tuples —
            identical across backends and repeat runs.
        failover_enabled: Whether re-placement was armed
            (``REPRO_FLEET_FAILOVER``).
        failovers: Streams successfully re-placed onto survivors.
        failover_retries: Re-placement attempts that found no capacity
            and backed off.
        stranded_streams: Streams whose executions could not all be
            delivered by any node.
        stranded_executions: FG executions never delivered fleet-wide.
        quarantines: Nodes quarantined after flapping back alive.
        sheds: BG shed actions taken in fleet degraded mode.
        suspect_events: ALIVE->SUSPECT transitions observed.
        dead_events: Dead declarations observed.
        time_to_detection_s: Per-incident onset -> dead-declaration lag.
        time_to_recovery_s: Per-failover onset -> re-placement lag.
        lost_node_s: Node-seconds of capacity lost to down nodes.
    """

    scenario: str = "none"
    fault_seed: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    events: int = 0
    event_signature: Tuple[tuple, ...] = ()
    failover_enabled: bool = True
    failovers: int = 0
    failover_retries: int = 0
    stranded_streams: int = 0
    stranded_executions: int = 0
    quarantines: int = 0
    sheds: int = 0
    suspect_events: int = 0
    dead_events: int = 0
    time_to_detection_s: Tuple[float, ...] = ()
    time_to_recovery_s: Tuple[float, ...] = ()
    lost_node_s: float = 0.0

    @property
    def total_injected(self) -> int:
        """Total materialized node faults across every kind."""
        return sum(self.injected.values())


#: The zero node-fault plan: running with it is pinned bit-identical to
#: running with no plan at all (tests/faults/test_fleet_plan.py).
ZERO_NODE_FAULTS = NodeFaultPlan(scenario="none")

#: Documented fleet scenarios.  Rates are sized for the 4-8 node fleets
#: the chaos table and acceptance tests run: high enough that a typical
#: seed faults one to three nodes, low enough that survivors exist to
#: absorb the failed-over streams.
FLEET_SCENARIOS: Dict[str, NodeFaultPlan] = {
    "none": ZERO_NODE_FAULTS,
    "node-crash": NodeFaultPlan(scenario="node-crash", crash_rate=0.35),
    "partition": NodeFaultPlan(scenario="partition", partition_rate=0.35),
    "slow-node": NodeFaultPlan(scenario="slow-node", slow_rate=0.35),
    "flapping": NodeFaultPlan(scenario="flapping", flap_rate=0.35),
    "rack-failure": NodeFaultPlan(
        scenario="rack-failure", rack_size=2, rack_rate=0.4,
    ),
    "fleet-chaos": NodeFaultPlan(
        scenario="fleet-chaos",
        crash_rate=0.15,
        partition_rate=0.10,
        slow_rate=0.15,
        flap_rate=0.10,
    ),
}

#: Catalog order used by the fleet chaos suite and CLI listings.
FLEET_SCENARIO_NAMES: Tuple[str, ...] = tuple(FLEET_SCENARIOS)


def fleet_scenario(name: str, seed: int = 0) -> NodeFaultPlan:
    """Catalog scenario ``name`` with its fault streams seeded by ``seed``.

    Raises:
        FaultError: for a name not in the catalog.
    """
    plan = FLEET_SCENARIOS.get(name)
    if plan is None:
        raise FaultError(
            "unknown fleet scenario %r (catalog: %s)"
            % (name, ", ".join(FLEET_SCENARIO_NAMES))
        )
    return plan.with_seed(seed)
