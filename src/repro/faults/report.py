"""Fault and degradation accounting attached to experiment results.

A :class:`FaultReport` flattens what the injector did (per-kind fault
counts) and how the hardened runtime coped (samples rejected, actuations
retried, time spent degraded) into one pickle-friendly record carried on
:class:`repro.experiments.harness.RunResult` and rendered by the
``repro chaos`` table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class FaultReport:
    """Fault-injection and graceful-degradation accounting of one run.

    Attributes:
        scenario: Chaos scenario the run executed under.
        fault_seed: Resolved seed of the fault streams.
        injected: Injected-fault count per kind (``counter-drop``,
            ``actuation-fail``, ...).
        events: Total discrete fault events logged.
        event_signature: The discrete event stream as primitive tuples
            (time, surface, kind, detail) — the determinism tests assert
            it is identical across backends and repeat runs.
        hardening_enabled: Whether graceful degradation was armed
            (``REPRO_DEGRADED_MODE``).
        samples_dropped: Counter reads returned frozen (dropped).
        rejected_samples: Progress samples the predictor rejected as
            physically impossible outliers.
        stale_samples: Samples the predictor ignored as stale/regressed.
        suspect_samples: Runtime wakeups flagged suspect by the
            sensing-health monitor.
        health_samples: Total wakeups the monitor scored.
        actuations_retried: Actuations re-issued after a failed
            read-back verification.
        actuations_failed: Actuations still wrong after the bounded
            retries.
        degraded_entries: Times the runtime entered degraded sensing.
        safe_entries: Times the runtime escalated to the static safe
            policy.
        degraded_time_s: Virtual seconds spent in degraded mode
            (includes time in safe mode).
        safe_time_s: Virtual seconds spent in safe mode.
    """

    scenario: str = "none"
    fault_seed: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    events: int = 0
    event_signature: Tuple[tuple, ...] = ()
    hardening_enabled: bool = True
    samples_dropped: int = 0
    rejected_samples: int = 0
    stale_samples: int = 0
    suspect_samples: int = 0
    health_samples: int = 0
    actuations_retried: int = 0
    actuations_failed: int = 0
    degraded_entries: int = 0
    safe_entries: int = 0
    degraded_time_s: float = 0.0
    safe_time_s: float = 0.0

    @property
    def total_injected(self) -> int:
        """Total injected faults across every kind."""
        return sum(self.injected.values())

    def degraded_fraction(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` spent with sensing degraded."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.degraded_time_s / elapsed_s)


def merge_counts(*sources: Mapping[str, int]) -> Dict[str, int]:
    """Sum per-kind count mappings (deterministic key order)."""
    merged: Dict[str, int] = {}
    for source in sources:
        for kind in sorted(source):
            merged[kind] = merged.get(kind, 0) + source[kind]
    return merged
