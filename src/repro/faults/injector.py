"""Seeded fault injector and the faulty system interposition layer.

:class:`FaultySystem` implements :class:`repro.sim.osal.SystemInterface`
by delegating to the real machine and consulting a
:class:`FaultInjector` at every sensor and actuator surface the Dirigent
runtime touches.  Only the runtime sees the faulty view; the machine —
and therefore the ground-truth simulation, the completion stream, and
the measured results — stays untouched.  That mirrors the real failure
modes this models: multiplexed counters, lost timer wakeups, and DVFS
writes that silently do not take, all while the workload itself runs on.

Determinism: every draw comes from per-surface streams derived with
:func:`repro.sim.timebase.derive_rng` from the plan's seed, and a draw
happens only when its surface is enabled (rate > 0), in runtime-call
order.  The runtime's call sequence is bit-identical across the scalar
and batch backends, so the fault stream is too.

Fault semantics (all transient — ground truth is preserved):

* **Counter drop** — the read returns the previously returned values
  re-stamped at the current time: one sampling period of zero observed
  progress, after which the next honest read naturally catches up.
* **Counter noise / glitch** — the per-read delta is scaled by a
  lognormal factor (optionally biased) or by :data:`GLITCH_FACTOR`.
  Returned counters stay monotone: an inflated read plateaus until the
  true counters catch up, exactly like a multiplexing extrapolation
  error on real hardware.
* **Wakeup delay / miss** — the scheduled callback fires late by a
  jitter or by a whole sampling period; it is never dropped outright
  (the loop reschedules from inside the callback, as real runtimes do).
* **Actuation failure** — a grade change, frequency step, pause,
  resume, or repartition is silently swallowed.  Read-backs stay
  truthful, so a hardened caller can detect the failure by verifying.
* **Heartbeat loss / duplication** — beats are dropped or doubled in
  delivery (see :meth:`FaultInjector.heartbeat_channel`).
* **Profile corruption** — tail segments truncated and/or durations
  perturbed, while every segment stays structurally valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.profile import ExecutionProfile, ProfileSegment
from repro.faults.plan import GLITCH_FACTOR, FaultPlan
from repro.sim.counters import CounterSnapshot
from repro.sim.osal import SystemInterface, WakeupCallback
from repro.sim.timebase import derive_rng


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence.

    Attributes:
        time_s: Virtual time of the injection.
        surface: Surface injected at (``counters``, ``wakeup``,
            ``actuation``, ``heartbeat``, ``profile``).
        kind: Specific fault kind (e.g. ``counter-drop``).
        detail: Human-readable context (core, pid, or call).
    """

    time_s: float
    surface: str
    kind: str
    detail: str = ""


class FaultInjector:
    """Draws and accounts for every fault a :class:`FaultPlan` allows."""

    def __init__(self, plan: FaultPlan, seed: Optional[int] = None) -> None:
        self.plan = plan
        self.seed = plan.seed if seed is None else seed
        self._rng_counters = derive_rng(self.seed, "faults/counters")
        self._rng_wakeup = derive_rng(self.seed, "faults/wakeup")
        self._rng_actuation = derive_rng(self.seed, "faults/actuation")
        self._rng_heartbeat = derive_rng(self.seed, "faults/heartbeat")
        self._rng_profile = derive_rng(self.seed, "faults/profile")
        self._last_counters: Dict[int, CounterSnapshot] = {}
        #: Discrete injected-fault events, in injection order.
        self.events: List[FaultEvent] = []
        #: Count per fault kind (includes per-read noise applications,
        #: which are tallied but not logged as discrete events).
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _record(
        self, time_s: float, surface: str, kind: str, detail: str = ""
    ) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.events.append(FaultEvent(time_s, surface, kind, detail))

    def _tally(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def event_signature(self) -> List[tuple]:
        """Hashable rendering of the event stream (determinism tests)."""
        return [
            (e.time_s, e.surface, e.kind, e.detail) for e in self.events
        ]

    # ------------------------------------------------------------------
    # Counter surface
    # ------------------------------------------------------------------

    def filter_counters(
        self, core: int, snap: CounterSnapshot
    ) -> CounterSnapshot:
        """Apply counter faults to one honest read of ``core``."""
        plan = self.plan
        if (
            plan.counter_drop_rate == 0.0
            and plan.counter_noise_sigma == 0.0
            and plan.counter_glitch_rate == 0.0
        ):
            return snap
        rng = self._rng_counters
        last = self._last_counters.get(core)
        if last is None:
            # First observation baselines the core; faults need a delta.
            self._last_counters[core] = snap
            return snap
        if plan.counter_drop_rate > 0 and rng.random() < plan.counter_drop_rate:
            self._record(
                snap.time_s, "counters", "counter-drop", "core=%d" % core
            )
            out = last.with_time(snap.time_s)
            self._last_counters[core] = out
            return out
        factor = 1.0
        if (
            plan.counter_glitch_rate > 0
            and rng.random() < plan.counter_glitch_rate
        ):
            factor *= GLITCH_FACTOR
            self._record(
                snap.time_s, "counters", "counter-glitch", "core=%d" % core
            )
        if plan.counter_noise_sigma > 0:
            factor *= rng.lognormvariate(
                plan.counter_noise_bias, plan.counter_noise_sigma
            )
            self._tally("counter-noise")
        out = CounterSnapshot(
            time_s=snap.time_s,
            instructions=_scaled(last.instructions, snap.instructions, factor),
            cycles=_scaled(last.cycles, snap.cycles, factor),
            llc_accesses=_scaled(last.llc_accesses, snap.llc_accesses, factor),
            llc_misses=_scaled(last.llc_misses, snap.llc_misses, factor),
        )
        self._last_counters[core] = out
        return out

    # ------------------------------------------------------------------
    # Timer surface
    # ------------------------------------------------------------------

    def wakeup_extra_delay(self, now_s: float) -> float:
        """Extra delay to add to one ``schedule_wakeup`` call."""
        plan = self.plan
        extra = 0.0
        if (
            plan.wakeup_delay_rate > 0
            and self._rng_wakeup.random() < plan.wakeup_delay_rate
        ):
            extra += plan.wakeup_delay_s
            self._record(now_s, "wakeup", "wakeup-delay")
        if (
            plan.wakeup_miss_rate > 0
            and self._rng_wakeup.random() < plan.wakeup_miss_rate
        ):
            extra += plan.wakeup_miss_s
            self._record(now_s, "wakeup", "wakeup-miss")
        return extra

    # ------------------------------------------------------------------
    # Actuator surface
    # ------------------------------------------------------------------

    def actuation_dropped(self, now_s: float, call: str) -> bool:
        """True when one actuation call must be silently swallowed."""
        plan = self.plan
        if plan.actuation_fail_rate == 0.0:
            return False
        if self._rng_actuation.random() < plan.actuation_fail_rate:
            self._record(now_s, "actuation", "actuation-fail", call)
            return True
        return False

    # ------------------------------------------------------------------
    # Heartbeat surface
    # ------------------------------------------------------------------

    def heartbeat_channel(self) -> Callable[[int], int]:
        """A lossy/duplicating delivery channel for heartbeats.

        Returns a callable mapping the number of beats the application
        emitted to the number actually delivered, suitable for
        :class:`repro.core.heartbeats.ProcessHeartbeatBridge`'s
        ``channel`` parameter.  Lost beats stay lost (undercounted
        progress); duplicated beats arrive twice (overcounted).
        """
        plan = self.plan
        rng = self._rng_heartbeat

        def channel(new_beats: int) -> int:
            if plan.heartbeat_loss_rate == 0.0 and plan.heartbeat_dup_rate == 0.0:
                return new_beats
            delivered = 0
            for _ in range(new_beats):
                if (
                    plan.heartbeat_loss_rate > 0
                    and rng.random() < plan.heartbeat_loss_rate
                ):
                    self._tally("heartbeat-loss")
                    continue
                delivered += 1
                if (
                    plan.heartbeat_dup_rate > 0
                    and rng.random() < plan.heartbeat_dup_rate
                ):
                    self._tally("heartbeat-dup")
                    delivered += 1
            return delivered

        return channel

    # ------------------------------------------------------------------
    # Profile surface
    # ------------------------------------------------------------------

    def corrupt_profile(self, profile: ExecutionProfile) -> ExecutionProfile:
        """A corrupted copy of ``profile`` per the plan (or the original).

        Truncation cuts tail segments (always keeping at least one);
        noise perturbs segment durations with a lognormal factor.  Every
        surviving segment remains structurally valid, so the predictor
        never crashes on a corrupt profile — it just mispredicts.
        """
        plan = self.plan
        if plan.profile_truncate_segments == 0 and plan.profile_noise_sigma == 0:
            return profile
        segments = list(profile.segments)
        if plan.profile_truncate_segments > 0:
            keep = max(1, len(segments) - plan.profile_truncate_segments)
            cut = len(segments) - keep
            if cut > 0:
                segments = segments[:keep]
                self._record(
                    0.0, "profile", "profile-truncate",
                    "%s: cut %d tail segments" % (profile.workload_name, cut),
                )
        if plan.profile_noise_sigma > 0:
            rng = self._rng_profile
            segments = [
                ProfileSegment(
                    duration_s=s.duration_s
                    * rng.lognormvariate(0.0, plan.profile_noise_sigma),
                    progress=s.progress,
                )
                for s in segments
            ]
            self._record(
                0.0, "profile", "profile-noise", profile.workload_name
            )
        return ExecutionProfile(
            workload_name=profile.workload_name,
            sampling_period_s=profile.sampling_period_s,
            segments=tuple(segments),
        )


def _scaled(last: float, current: float, factor: float) -> float:
    """Scale the delta since the last returned value, staying monotone.

    When a previous inflated read put ``last`` ahead of the truth, the
    returned counter plateaus at ``last`` until the true counter passes
    it — hardware counters never run backwards.
    """
    delta = current - last
    if delta <= 0.0:
        return last
    return last + delta * factor


class FaultySystem:
    """A :class:`SystemInterface` view of a machine with faults injected.

    Only hand this to the component under test (the Dirigent runtime);
    the underlying machine keeps simulating ground truth.  Read-backs
    (``frequency_grade``, ``is_paused``, ``partition_ways``) stay
    truthful — they model reading the actual hardware register, which is
    exactly what makes failed actuations detectable.
    """

    def __init__(
        self, system: SystemInterface, injector: FaultInjector
    ) -> None:
        self._sys = system
        self.injector = injector

    # -- time / counters ------------------------------------------------

    def now(self) -> float:
        return self._sys.now()

    def read_counters(self, core: int) -> CounterSnapshot:
        return self.injector.filter_counters(
            core, self._sys.read_counters(core)
        )

    # -- frequency ------------------------------------------------------

    def num_frequency_grades(self) -> int:
        return self._sys.num_frequency_grades()

    def frequency_grade(self, core: int) -> int:
        return self._sys.frequency_grade(core)

    def set_frequency_grade(self, core: int, grade: int) -> None:
        if self.injector.actuation_dropped(
            self._sys.now(), "set-grade:%d:%d" % (core, grade)
        ):
            return
        self._sys.set_frequency_grade(core, grade)

    def step_frequency(self, core: int, direction: int) -> bool:
        if self.injector.actuation_dropped(
            self._sys.now(), "step:%d:%+d" % (core, direction)
        ):
            # Report what the step *would* have returned so control flow
            # in the caller is indistinguishable from a successful call.
            grade = self._sys.frequency_grade(core)
            return 0 <= grade + direction < self._sys.num_frequency_grades()
        return self._sys.step_frequency(core, direction)

    # -- process control ------------------------------------------------

    def pause(self, pid: int) -> None:
        if self.injector.actuation_dropped(
            self._sys.now(), "pause:%d" % pid
        ):
            return
        self._sys.pause(pid)

    def resume(self, pid: int) -> None:
        if self.injector.actuation_dropped(
            self._sys.now(), "resume:%d" % pid
        ):
            return
        self._sys.resume(pid)

    def is_paused(self, pid: int) -> bool:
        return self._sys.is_paused(pid)

    def core_of(self, pid: int) -> int:
        return self._sys.core_of(pid)

    # -- cache ----------------------------------------------------------

    def llc_ways(self) -> int:
        return self._sys.llc_ways()

    def set_fg_partition(self, fg_cores: Iterable[int], fg_ways: int) -> None:
        fg_cores = list(fg_cores)
        if self.injector.actuation_dropped(
            self._sys.now(), "partition:%d" % fg_ways
        ):
            return
        self._sys.set_fg_partition(fg_cores, fg_ways)

    def clear_partitions(self) -> None:
        if self.injector.actuation_dropped(self._sys.now(), "clear-partitions"):
            return
        self._sys.clear_partitions()

    def partition_ways(self, core: int) -> int:
        return self._sys.partition_ways(core)

    # -- timers ---------------------------------------------------------

    def schedule_wakeup(self, delay_s: float, callback: WakeupCallback) -> None:
        extra = self.injector.wakeup_extra_delay(self._sys.now())
        self._sys.schedule_wakeup(delay_s + extra, callback)

    def charge_overhead(self, core: int, seconds: float) -> None:
        self._sys.charge_overhead(core, seconds)
