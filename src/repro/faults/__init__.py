"""Seeded fault injection for the Dirigent runtime and harness.

The package wraps the simulated machine's sensor and actuator surfaces
behind a deterministic fault layer (:class:`FaultySystem` consulting a
:class:`FaultInjector`), declaratively configured by a
:class:`FaultPlan` — scenario name, per-surface rates, seed.  The
harness plumbs plans through ``run_policy(..., fault_plan=...)``; the
``repro chaos`` CLI runs the scenario catalog and tabulates QoS plus
fault/degradation accounting per scenario.  See ``docs/robustness.md``.
"""

from repro.faults.fleet import (
    FLEET_SCENARIO_NAMES,
    FLEET_SCENARIOS,
    NODE_FAULT_KINDS,
    ZERO_NODE_FAULTS,
    FleetFaultReport,
    FleetSchedule,
    NodeFaultPlan,
    NodeFaultSpec,
    fleet_scenario,
)
from repro.faults.injector import FaultEvent, FaultInjector, FaultySystem
from repro.faults.plan import (
    GLITCH_FACTOR,
    SCENARIO_NAMES,
    SCENARIOS,
    ZERO_FAULTS,
    FaultPlan,
    scenario,
)
from repro.faults.report import FaultReport, merge_counts

__all__ = [
    "FLEET_SCENARIO_NAMES",
    "FLEET_SCENARIOS",
    "GLITCH_FACTOR",
    "NODE_FAULT_KINDS",
    "SCENARIO_NAMES",
    "SCENARIOS",
    "ZERO_FAULTS",
    "ZERO_NODE_FAULTS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultySystem",
    "FleetFaultReport",
    "FleetSchedule",
    "NodeFaultPlan",
    "NodeFaultSpec",
    "fleet_scenario",
    "merge_counts",
    "scenario",
]
