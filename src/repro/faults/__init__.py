"""Seeded fault injection for the Dirigent runtime and harness.

The package wraps the simulated machine's sensor and actuator surfaces
behind a deterministic fault layer (:class:`FaultySystem` consulting a
:class:`FaultInjector`), declaratively configured by a
:class:`FaultPlan` — scenario name, per-surface rates, seed.  The
harness plumbs plans through ``run_policy(..., fault_plan=...)``; the
``repro chaos`` CLI runs the scenario catalog and tabulates QoS plus
fault/degradation accounting per scenario.  See ``docs/robustness.md``.
"""

from repro.faults.injector import FaultEvent, FaultInjector, FaultySystem
from repro.faults.plan import (
    GLITCH_FACTOR,
    SCENARIO_NAMES,
    SCENARIOS,
    ZERO_FAULTS,
    FaultPlan,
    scenario,
)
from repro.faults.report import FaultReport, merge_counts

__all__ = [
    "GLITCH_FACTOR",
    "SCENARIO_NAMES",
    "SCENARIOS",
    "ZERO_FAULTS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultySystem",
    "merge_counts",
    "scenario",
]
