"""Fault plans: declarative, seeded descriptions of what to break.

A :class:`FaultPlan` names a chaos scenario and pins every injection
rate plus the seed all fault draws derive from, so a faulted run is as
reproducible as a clean one: same plan, same mix, same run seed ==>
identical fault event stream, identical metrics, on either simulation
backend (``tests/sim/test_batch_equivalence.py`` asserts it).

Rates are *per opportunity*: a counter fault rate applies to each
``read_counters`` call, an actuation fault rate to each mutating
actuation, a wakeup fault rate to each ``schedule_wakeup``.  A rate of
zero disables the surface entirely — no RNG is drawn for it, so adding
a surface to a plan never perturbs another surface's stream.

The catalog in :data:`SCENARIOS` gives the documented default rates the
acceptance tests and ``repro chaos`` run at; :func:`scenario` builds a
plan from a catalog name and a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import FaultError

#: Multiplier applied to a counter delta by a glitch fault (a counter
#: multiplexing/extrapolation error, far outside physical rates).
GLITCH_FACTOR = 32.0


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of one chaos scenario.

    Attributes:
        scenario: Catalog name (reporting; free-form for custom plans).
        seed: Root seed of every fault stream; combined with the run
            seed by the harness so distinct runs draw distinct faults.
        counter_drop_rate: Per-read probability that a core's counters
            come back frozen at their previously returned values (a
            dropped sample: zero observed progress this period).
        counter_noise_sigma: Lognormal sigma of multiplicative noise on
            per-read counter deltas (0 disables).
        counter_noise_bias: Mean of the log-noise; positive values
            *inflate* observed progress, biasing the predictor
            optimistic — the classic multiplexing-extrapolation error.
        counter_glitch_rate: Per-read probability of a wild glitch: the
            delta is scaled by :data:`GLITCH_FACTOR` (outlier-rejection
            territory).
        wakeup_delay_rate: Per-scheduling probability that the wakeup
            timer fires late by ``wakeup_delay_s``.
        wakeup_delay_s: Extra delay of a delayed wakeup.
        wakeup_miss_rate: Per-scheduling probability that the wakeup is
            missed entirely and fires a full ``wakeup_miss_s`` later
            (one lost sampling period).
        wakeup_miss_s: Extra delay of a missed wakeup (defaults to the
            paper's 5 ms sampling period).
        actuation_fail_rate: Per-call probability that a DVFS grade
            change, frequency step, pause/resume, or LLC repartition is
            silently dropped (detectable only by read-back).
        heartbeat_loss_rate: Per-beat probability that a heartbeat is
            lost in delivery.
        heartbeat_dup_rate: Per-beat probability that a heartbeat is
            delivered twice.
        profile_truncate_segments: Tail segments cut from the offline
            profile handed to the predictor (0 disables; at least one
            segment always survives).
        profile_noise_sigma: Lognormal sigma of per-segment duration
            noise applied to the offline profile (0 disables).
    """

    scenario: str = "none"
    seed: int = 0
    counter_drop_rate: float = 0.0
    counter_noise_sigma: float = 0.0
    counter_noise_bias: float = 0.0
    counter_glitch_rate: float = 0.0
    wakeup_delay_rate: float = 0.0
    wakeup_delay_s: float = 2e-3
    wakeup_miss_rate: float = 0.0
    wakeup_miss_s: float = 5e-3
    actuation_fail_rate: float = 0.0
    heartbeat_loss_rate: float = 0.0
    heartbeat_dup_rate: float = 0.0
    profile_truncate_segments: int = 0
    profile_noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "counter_drop_rate", "counter_glitch_rate", "wakeup_delay_rate",
            "wakeup_miss_rate", "actuation_fail_rate", "heartbeat_loss_rate",
            "heartbeat_dup_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError("%s must be in [0, 1], got %r" % (name, rate))
        for name in (
            "counter_noise_sigma", "profile_noise_sigma", "wakeup_delay_s",
            "wakeup_miss_s",
        ):
            if getattr(self, name) < 0:
                raise FaultError("%s must be >= 0" % name)
        if self.profile_truncate_segments < 0:
            raise FaultError("profile_truncate_segments must be >= 0")

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing at all.

        The harness skips every wrapper for a zero plan, so a zero-fault
        run is *structurally* identical to a plain run — bit-identity is
        by construction, not by luck.
        """
        return (
            self.counter_drop_rate == 0.0
            and self.counter_noise_sigma == 0.0
            and self.counter_glitch_rate == 0.0
            and self.wakeup_delay_rate == 0.0
            and self.wakeup_miss_rate == 0.0
            and self.actuation_fail_rate == 0.0
            and self.heartbeat_loss_rate == 0.0
            and self.heartbeat_dup_rate == 0.0
            and self.profile_truncate_segments == 0
            and self.profile_noise_sigma == 0.0
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """Copy of this plan with a different fault seed."""
        return replace(self, seed=seed)


#: The zero-fault plan: running with it is pinned bit-identical to
#: running with no plan at all.
ZERO_FAULTS = FaultPlan(scenario="none")

#: Documented default scenarios.  The ``sensor-degraded`` rates are the
#: ones the acceptance criteria reference: heavy sample loss plus an
#: optimistic multiplexing bias and occasional wild glitches — enough
#: to drive an unhardened controller into yielding resources it cannot
#: afford, while the hardened runtime detects the fault density and
#: falls back to the static safe policy.
SCENARIOS: Dict[str, FaultPlan] = {
    "none": ZERO_FAULTS,
    "sensor-degraded": FaultPlan(
        scenario="sensor-degraded",
        counter_drop_rate=0.25,
        counter_noise_sigma=0.4,
        counter_noise_bias=0.5,
        counter_glitch_rate=0.05,
    ),
    "actuator-flaky": FaultPlan(
        scenario="actuator-flaky",
        actuation_fail_rate=0.3,
    ),
    "wakeup-storm": FaultPlan(
        scenario="wakeup-storm",
        wakeup_delay_rate=0.3,
        wakeup_miss_rate=0.1,
    ),
    "profile-corrupt": FaultPlan(
        scenario="profile-corrupt",
        profile_truncate_segments=4,
        profile_noise_sigma=0.2,
    ),
    "full-chaos": FaultPlan(
        scenario="full-chaos",
        counter_drop_rate=0.15,
        counter_noise_sigma=0.3,
        counter_noise_bias=0.3,
        counter_glitch_rate=0.03,
        wakeup_delay_rate=0.15,
        wakeup_miss_rate=0.05,
        actuation_fail_rate=0.15,
        profile_truncate_segments=2,
        profile_noise_sigma=0.1,
    ),
}

#: Catalog order used by the chaos suite and CLI listings.
SCENARIO_NAMES: Tuple[str, ...] = tuple(SCENARIOS)


def scenario(name: str, seed: int = 0) -> FaultPlan:
    """Catalog scenario ``name`` with its fault streams seeded by ``seed``.

    Raises:
        FaultError: for a name not in the catalog.
    """
    plan = SCENARIOS.get(name)
    if plan is None:
        raise FaultError(
            "unknown chaos scenario %r (catalog: %s)"
            % (name, ", ".join(SCENARIO_NAMES))
        )
    return plan.with_seed(seed)
