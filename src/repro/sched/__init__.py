"""Reservation-based scheduling layer (the paper's Figure 2 motivation)."""

from repro.sched.reservation import (
    ReservationScheduler,
    TaskStream,
    max_streams,
    packing_gain,
    percentile,
    reservation_for,
)

__all__ = [
    "percentile",
    "reservation_for",
    "TaskStream",
    "ReservationScheduler",
    "max_streams",
    "packing_gain",
]
