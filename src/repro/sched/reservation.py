"""Reservation-based task admission (the paper's Figure 2 motivation).

Section 3.1 argues that high completion-time variance wastes capacity
under reservation-based scheduling: a scheduler that guarantees a latency
percentile must reserve the *tail* of the distribution per task, so
low-variance task streams pack far more densely onto a node.  This module
makes that argument executable:

* :func:`reservation_for` computes the per-task CPU-time reservation that
  guarantees a target percentile of a measured duration distribution;
* :class:`ReservationScheduler` admits periodic task streams onto a node
  of fixed capacity using those reservations;
* :func:`packing_gain` compares how many streams fit under two different
  distributions (e.g. Baseline vs. Dirigent completion times).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ExperimentError


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 1])."""
    if not values:
        raise ExperimentError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ExperimentError("q must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    value = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
    # The two rounded products can overshoot the bracketing samples by an
    # ulp (e.g. equal endpoints with an irrational frac); clamp so the
    # result always lies between the samples it interpolates.
    return min(max(value, ordered[lo]), ordered[hi])


def reservation_for(
    durations: Sequence[float], target_percentile: float = 0.95
) -> float:
    """CPU-time reservation guaranteeing ``target_percentile`` on-time.

    A reservation-based scheduler must budget enough time per task that
    the target fraction of executions fit inside it (the paper cites
    statistical rate-monotonic scheduling [1]).
    """
    return percentile(durations, target_percentile)


@dataclass(frozen=True)
class TaskStream:
    """A periodic latency-critical task stream.

    Attributes:
        name: Stream label.
        period_s: Task inter-arrival period (one task per period).
        reservation_s: CPU time reserved per task.
    """

    name: str
    period_s: float
    reservation_s: float

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ExperimentError("period must be positive")
        if self.reservation_s <= 0:
            raise ExperimentError("reservation must be positive")

    @property
    def utilization(self) -> float:
        """Fraction of one core this stream reserves."""
        return self.reservation_s / self.period_s


class ReservationScheduler:
    """Admission control for task streams on a node of fixed capacity.

    Utilization-based admission: the sum of admitted streams' reserved
    utilizations must not exceed ``capacity`` (in core-equivalents).
    """

    def __init__(self, capacity_cores: float = 1.0) -> None:
        if capacity_cores <= 0:
            raise ExperimentError("capacity must be positive")
        self.capacity_cores = capacity_cores
        self._admitted: List[TaskStream] = []

    @property
    def admitted(self) -> List[TaskStream]:
        """Streams admitted so far."""
        return list(self._admitted)

    @property
    def reserved_utilization(self) -> float:
        """Total reserved utilization in core-equivalents."""
        return sum(stream.utilization for stream in self._admitted)

    @property
    def headroom(self) -> float:
        """Remaining admissible utilization."""
        return self.capacity_cores - self.reserved_utilization

    def try_admit(self, stream: TaskStream) -> bool:
        """Admit ``stream`` if its reservation fits; returns success."""
        if stream.utilization > self.headroom + 1e-12:
            return False
        self._admitted.append(stream)
        return True

    def admit_max(self, stream: TaskStream) -> int:
        """Admit as many copies of ``stream`` as fit; returns the count."""
        count = 0
        while self.try_admit(stream):
            count += 1
        return count


def max_streams(
    durations: Sequence[float],
    period_s: float,
    capacity_cores: float = 1.0,
    target_percentile: float = 0.95,
) -> int:
    """How many copies of a task stream fit on ``capacity_cores``.

    Args:
        durations: Measured completion-time distribution of the task.
        period_s: Stream period (must exceed the reservation).
        capacity_cores: Node capacity in core-equivalents.
        target_percentile: Percentile the reservation must guarantee.
    """
    reservation = reservation_for(durations, target_percentile)
    if reservation > period_s:
        return 0
    scheduler = ReservationScheduler(capacity_cores)
    return scheduler.admit_max(
        TaskStream(name="stream", period_s=period_s, reservation_s=reservation)
    )


def packing_gain(
    low_variance_durations: Sequence[float],
    high_variance_durations: Sequence[float],
    period_s: float,
    capacity_cores: float = 4.0,
    target_percentile: float = 0.95,
) -> float:
    """Packing-density gain of a low- over a high-variance distribution.

    This is Figure 2 in numbers: type-B (low variance) streams admit more
    densely than type-A (high variance) ones at the same percentile goal.
    """
    low = max_streams(
        low_variance_durations, period_s, capacity_cores, target_percentile
    )
    high = max_streams(
        high_variance_durations, period_s, capacity_cores, target_percentile
    )
    if high == 0:
        raise ExperimentError(
            "high-variance streams do not fit at all at this period"
        )
    return low / high
