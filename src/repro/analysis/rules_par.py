"""PAR rules: share-nothing parallel sweep workers.

The sweep engine's parallel == serial guarantee rests on workers being
pure: a cell's result may depend only on the cell's arguments, never on
worker identity, scheduling order, or state smuggled through the parent
process.  ``ProcessPoolExecutor`` additionally requires submitted
callables to be picklable — importable at top level under their
``__qualname__``.

* ``PAR001`` — callables submitted to a pool (``pool.submit(f, ...)``,
  ``pool.map(f, ...)``) must be module-level functions: lambdas and
  functions nested inside other functions either fail to pickle or,
  worse, capture closure state the worker will not have.
* ``PAR002`` — worker functions (module-level functions submitted to a
  pool in the same module) must not mutate module-level state: no
  ``global`` rebinding, no subscript/attribute stores on module-level
  names, no mutating method calls (``append``/``clear``/...) on them.
  Such writes land in the *worker's* copy of the module and are lost —
  or, under a ``fork`` start method, differ by scheduling history.
* ``PAR003`` — a pool's ``initializer=`` callable is held to the same
  bar as the workers it warms: module level (picklable, closure-free)
  and free of direct module-state mutation in its own body.  An impure
  initializer is worse than an impure worker — it runs before any cell
  and taints *every* result the pool produces.

All rules are scoped to modules that actually use a process pool, so
ordinary code pays nothing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    call_name,
    register,
)

#: Pool constructors whose instances dispatch work to other processes.
POOL_CONSTRUCTORS = ("ProcessPoolExecutor",
                     "concurrent.futures.ProcessPoolExecutor",
                     "futures.ProcessPoolExecutor",
                     "multiprocessing.Pool", "Pool")

#: Pool methods that take a callable to run in a worker.
SUBMIT_METHODS = {"submit": 0, "map": 0, "imap": 0, "imap_unordered": 0,
                  "apply_async": 0, "starmap": 0}

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "sort", "reverse",
    "appendleft", "popleft",
})


def _pool_names(tree: ast.Module) -> Set[str]:
    """Names bound to process-pool instances anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        value: Optional[ast.AST] = None
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            value, targets = node.context_expr, [node.optional_vars]
        if value is None or not isinstance(value, ast.Call):
            continue
        if call_name(value) in POOL_CONSTRUCTORS:
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _submissions(tree: ast.Module, pools: Set[str]):
    """Yield ``(call, func_expr)`` for every pool submission."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in SUBMIT_METHODS:
            continue
        if not (isinstance(func.value, ast.Name)
                and func.value.id in pools):
            continue
        index = SUBMIT_METHODS[func.attr]
        if len(node.args) > index:
            yield node, node.args[index]


def _initializers(tree: ast.Module):
    """Yield the ``initializer=`` expression of each pool constructor."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if call_name(node) not in POOL_CONSTRUCTORS:
            continue
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                yield keyword.value


def _function_index(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """Module-level function definitions by name."""
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside other functions."""
    nested: Set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
            continue
        body = outer.body if not isinstance(outer, ast.Lambda) else []
        for stmt in body:
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    nested.add(inner.name)
    return nested


@register
class WorkerMustBeImportable(Rule):
    """PAR001: pool-submitted callables must live at module level."""

    id = "PAR001"
    severity = "error"
    description = (
        "callable submitted to a process pool is not a module-level "
        "function: lambdas and nested functions do not pickle and may "
        "capture parent-only closure state"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        pools = _pool_names(module.tree)
        if not pools:
            return
        top_level = _function_index(module.tree)
        nested = _nested_function_names(module.tree) - set(top_level)
        for call, func_expr in _submissions(module.tree, pools):
            if isinstance(func_expr, ast.Lambda):
                yield self.finding(
                    module, func_expr,
                    "lambda submitted to a process pool; define a "
                    "module-level function instead",
                )
            elif (isinstance(func_expr, ast.Name)
                    and func_expr.id in nested):
                yield self.finding(
                    module, func_expr,
                    "nested function %r submitted to a process pool; "
                    "hoist it to module level so it pickles and carries "
                    "no closure state" % func_expr.id,
                )


@register
class WorkerMustNotMutateModuleState(Rule):
    """PAR002: worker functions must not write module-level state."""

    id = "PAR002"
    severity = "error"
    description = (
        "pool worker function mutates module-level state (global "
        "rebinding or in-place mutation of a module-level name): the "
        "write happens in the worker process and breaks parallel == "
        "serial equivalence"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        pools = _pool_names(module.tree)
        if not pools:
            return
        top_level = _function_index(module.tree)
        worker_names = {
            func_expr.id
            for _, func_expr in _submissions(module.tree, pools)
            if isinstance(func_expr, ast.Name) and func_expr.id in top_level
        }
        module_names = module.top_level_names()
        for name in sorted(worker_names):
            yield from self._check_worker(
                module, top_level[name], module_names
            )

    def _check_worker(
        self,
        module: SourceModule,
        worker: ast.FunctionDef,
        module_names: Set[str],
    ) -> Iterator[Finding]:
        local_names: Set[str] = {a.arg for a in worker.args.args}
        for node in ast.walk(worker):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store,)
            ):
                local_names.add(node.id)
        globals_declared: Set[str] = set()
        for node in ast.walk(worker):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
                yield self.finding(
                    module, node,
                    "worker %r declares global %s; module state written "
                    "in a worker process is lost or order-dependent"
                    % (worker.name, ", ".join(node.names)),
                )
            elif isinstance(node, (ast.Subscript, ast.Attribute)):
                if not isinstance(node.ctx, (ast.Store, ast.Del)):
                    continue
                base = node.value
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if (isinstance(base, ast.Name)
                        and base.id in module_names
                        and base.id not in local_names):
                    yield self.finding(
                        module, node,
                        "worker %r writes into module-level %r; workers "
                        "must communicate only through their return "
                        "value (or the content-addressed disk cache)"
                        % (worker.name, base.id),
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATING_METHODS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in module_names
                        and func.value.id not in local_names):
                    yield self.finding(
                        module, node,
                        "worker %r calls %s.%s(), mutating module-level "
                        "state from a worker process"
                        % (worker.name, func.value.id, func.attr),
                    )


@register
class PoolInitializerMustBePure(WorkerMustNotMutateModuleState):
    """PAR003: pool initializers face the same bar as workers."""

    id = "PAR003"
    severity = "error"
    description = (
        "process-pool initializer is not a module-level pure callable: "
        "it must pickle by qualified name and must not mutate module "
        "state, because it runs in every worker before any cell does"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        top_level = _function_index(module.tree)
        nested = _nested_function_names(module.tree) - set(top_level)
        module_names = module.top_level_names()
        for init_expr in _initializers(module.tree):
            if isinstance(init_expr, ast.Lambda):
                yield self.finding(
                    module, init_expr,
                    "lambda used as a pool initializer; define a "
                    "module-level function instead",
                )
            elif isinstance(init_expr, ast.Name):
                if init_expr.id in nested:
                    yield self.finding(
                        module, init_expr,
                        "nested function %r used as a pool initializer; "
                        "hoist it to module level so it pickles and "
                        "carries no closure state" % init_expr.id,
                    )
                elif init_expr.id in top_level:
                    yield from self._check_worker(
                        module, top_level[init_expr.id], module_names
                    )
            else:
                yield self.finding(
                    module, init_expr,
                    "pool initializer is not a plain module-level "
                    "function reference",
                )
