"""Content-hash incremental cache for ``repro lint``.

The analyzer is fast, but the CI gate and editor integrations run it on
every save; an incremental cache makes the warm path near-free.  The
design mirrors the kernel disk cache's honesty contract — a cache key
must fold in *everything* the cached value depends on:

* **Module rules** cache per file, keyed by the file's root-relative
  path and content hash.  A warm hit replays the stored findings and
  suppression tallies without parsing the file.
* **Project rules** cache per run, keyed by the hash of every analyzed
  file's ``(relpath, sha)`` pair plus each project rule's
  :meth:`~repro.analysis.core.ProjectRule.project_state_fingerprint`
  (rules that consult state outside the analyzed sources — the on-disk
  kernel cache — fold that state in via the fingerprint).
* The whole cache is invalidated when the analyzer itself changes: the
  store embeds a fingerprint of every source file in
  :mod:`repro.analysis`, so editing a rule never replays stale
  findings.

The store is one JSON document under ``.repro_cache/lint/`` (the
repository's cache directory, already git-ignored and skipped by file
collection), written atomically via rename.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Finding

#: Store format version; bump on layout changes.
CACHE_VERSION = 1

#: Store location relative to the lint root.
CACHE_SUBDIR = Path(".repro_cache") / "lint"


def analyzer_fingerprint() -> str:
    """Hash of every analyzer source file (rules included).

    Any edit to the analyzer package — a new rule, a changed message,
    a driver fix — yields a different fingerprint and therefore a cold
    cache.
    """
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.read_bytes())
        digest.update(b"\x01")
    return digest.hexdigest()


class LintCache:
    """Findings cache shared by module and project rule passes.

    The driver (:func:`repro.analysis.core.run_analysis`) owns the
    lookup/store protocol; this class only persists it.
    """

    def __init__(self, root: Path,
                 cache_dir: Optional[Path] = None) -> None:
        self.directory = (Path(cache_dir) if cache_dir is not None
                          else Path(root) / CACHE_SUBDIR)
        self.path = self.directory / "findings.json"
        self._fingerprint = analyzer_fingerprint()
        self._modules: Dict[str, Dict[str, object]] = {}
        self._project: Optional[Dict[str, object]] = None
        self._dirty = False
        self._load()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if (not isinstance(document, dict)
                or document.get("version") != CACHE_VERSION
                or document.get("analyzer") != self._fingerprint):
            return
        modules = document.get("modules")
        if isinstance(modules, dict):
            self._modules = modules
        project = document.get("project")
        if isinstance(project, dict):
            self._project = project

    def save(self) -> None:
        """Atomically persist the store (no-op when nothing changed)."""
        if not self._dirty:
            return
        document = {
            "version": CACHE_VERSION,
            "analyzer": self._fingerprint,
            "modules": self._modules,
            "project": self._project,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix="findings-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        self._dirty = False

    # -- module entries ----------------------------------------------------

    def lookup_module(
        self, relkey: str, sha: str
    ) -> Optional[Tuple[List[Finding], Dict[str, int]]]:
        entry = self._modules.get(relkey)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            return None
        return (_decode_findings(entry.get("findings")),
                _decode_suppressed(entry.get("suppressed")))

    def store_module(self, relkey: str, sha: str,
                     findings: List[Finding],
                     suppressed_by_rule: Dict[str, int]) -> None:
        self._modules[relkey] = {
            "sha": sha,
            "findings": [f.as_dict() for f in findings],
            "suppressed": dict(suppressed_by_rule),
        }
        self._dirty = True

    # -- the project entry -------------------------------------------------

    def lookup_project(
        self, key: str
    ) -> Optional[Tuple[List[Finding], Dict[str, int]]]:
        entry = self._project
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        return (_decode_findings(entry.get("findings")),
                _decode_suppressed(entry.get("suppressed")))

    def store_project(self, key: str, findings: List[Finding],
                      suppressed_by_rule: Dict[str, int]) -> None:
        self._project = {
            "key": key,
            "findings": [f.as_dict() for f in findings],
            "suppressed": dict(suppressed_by_rule),
        }
        self._dirty = True


def _decode_findings(rows: object) -> List[Finding]:
    findings: List[Finding] = []
    if not isinstance(rows, list):
        return findings
    for row in rows:
        if not isinstance(row, dict):
            continue
        try:
            findings.append(Finding(
                rule=str(row["rule"]),
                severity=str(row["severity"]),
                path=str(row["path"]),
                line=int(row["line"]),
                col=int(row["col"]),
                message=str(row["message"]),
            ))
        except (KeyError, TypeError, ValueError):
            continue
    return findings


def _decode_suppressed(mapping: object) -> Dict[str, int]:
    if not isinstance(mapping, dict):
        return {}
    result: Dict[str, int] = {}
    for rule_id, count in mapping.items():
        try:
            result[str(rule_id)] = int(count)
        except (TypeError, ValueError):
            continue
    return result
