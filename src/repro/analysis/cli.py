"""``repro lint`` — run the determinism & invariant analyzer.

Usage (via the package CLI)::

    repro lint                          # analyze the shipped repro package
    repro lint src tests               # analyze explicit paths
    repro lint --format=json           # machine-readable report (CI)
    repro lint --format=sarif          # SARIF 2.1.0 log (code scanning)
    repro lint --select=DET,ENV003     # rule families or exact ids
    repro lint --list-rules            # registry dump
    repro lint --baseline              # filter committed baseline findings
    repro lint --update-baseline       # rewrite the baseline file
    repro lint --changed               # only files changed in git
    repro lint --cache                 # incremental content-hash cache

Exit status is 0 when no error-severity finding survives suppression
and baseline filtering, 1 otherwise — the CI static-analysis job gates
on exactly this.
"""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.cache import LintCache
from repro.analysis.core import (
    Rule,
    collect_files,
    default_rules,
    run_analysis,
)
from repro.analysis.reporters import FORMATS, render, render_rule_list


def default_lint_root() -> Path:
    """Directory containing the installed ``repro`` package.

    Analyzing relative to this root gives modules relpaths like
    ``repro/sim/config.py``, which is what path-scoped rules match on.
    """
    import repro

    return Path(repro.__file__).resolve().parent.parent


def select_rules(rules: Sequence[Rule],
                 select: Optional[str]) -> List[Rule]:
    """Filter ``rules`` by a comma-separated id/family-prefix list.

    ``--select=DET`` keeps the whole DET family; ``--select=ENV003``
    keeps one rule.  Unknown tokens raise so typos fail loudly instead
    of silently linting nothing.
    """
    if not select:
        return list(rules)
    tokens = [token.strip() for token in select.split(",") if token.strip()]
    chosen: List[Rule] = []
    for token in tokens:
        matched = [rule for rule in rules if rule.id.startswith(token)]
        if not matched:
            known = ", ".join(rule.id for rule in rules)
            raise SystemExit(
                "repro lint: unknown rule selector %r (known: %s)"
                % (token, known)
            )
        for rule in matched:
            if rule not in chosen:
                chosen.append(rule)
    return chosen


def git_changed_files(root: Path) -> Optional[Set[Path]]:
    """Resolved paths of files changed in the enclosing git worktree.

    Covers staged, unstaged, and untracked changes (``git status
    --porcelain``).  Returns None when ``root`` is not inside a git
    checkout (or git is unavailable) so the caller can fail loudly.
    """
    try:
        toplevel = subprocess.run(
            ["git", "-C", str(root), "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    changed: Set[Path] = set()
    for line in status.splitlines():
        if len(line) < 4:
            continue
        payload = line[3:]
        if " -> " in payload:  # rename: gate on the new name
            payload = payload.split(" -> ", 1)[1]
        payload = payload.strip().strip('"')
        if payload:
            changed.add((Path(toplevel) / payload).resolve())
    return changed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static determinism & hot-path invariant analyzer.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze "
             "(default: the installed repro package)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids or family prefixes "
             "(e.g. DET,ENV003); default: all rules",
    )
    parser.add_argument(
        "--root", default=None,
        help="root for scope-relative paths "
             "(default: the package parent for the default target, "
             "the current directory for explicit paths)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE, default=None,
        metavar="PATH",
        help="filter findings recorded in a baseline file before "
             "gating (default path: %s)" % DEFAULT_BASELINE,
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file with the current findings "
             "and exit 0",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="analyze only files changed in the git worktree "
             "(staged, unstaged, untracked)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="reuse findings for content-unchanged files via the "
             "incremental cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="incremental cache location "
             "(default: <root>/.repro_cache/lint)",
    )
    return parser


def run_lint(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro lint``; returns the process exit code."""
    options = build_parser().parse_args(argv)
    rules = select_rules(default_rules(), options.select)

    if options.list_rules:
        print(render_rule_list(rules, options.fmt))
        return 0

    if options.paths:
        paths = [Path(p) for p in options.paths]
        root = Path(options.root) if options.root else Path.cwd()
    else:
        root = default_lint_root()
        if options.root:
            root = Path(options.root)
        paths = [root / "repro"]

    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        raise SystemExit(
            "repro lint: no such path: %s" % ", ".join(missing)
        )

    if options.changed:
        changed = git_changed_files(root)
        if changed is None:
            raise SystemExit(
                "repro lint: --changed requires a git checkout "
                "enclosing the lint root"
            )
        paths = [p for p in collect_files(paths)
                 if p.resolve() in changed]

    cache = None
    if options.cache:
        if options.cache_dir:
            lint_cache_dir = Path(options.cache_dir)
        else:
            # Share the repository cache root (REPRO_CACHE_DIR aware)
            # with the result and kernel caches instead of anchoring at
            # the lint root, which may be a source subdirectory.
            from repro.sim.config import cache_dir as repro_cache_dir

            lint_cache_dir = Path(repro_cache_dir()) / "lint"
        cache = LintCache(root, cache_dir=lint_cache_dir)

    result = run_analysis(paths, rules=rules, root=root, cache=cache)
    findings = result.findings

    baseline_path = Path(options.baseline) if options.baseline else None
    baselined = stale_count = None
    if options.update_baseline:
        baseline_path = baseline_path or Path(DEFAULT_BASELINE)
        save_baseline(baseline_path, findings, root)
        print("repro lint: baseline %s updated with %d finding(s)"
              % (baseline_path, len(findings)))
        return 0
    if baseline_path is not None:
        entries = load_baseline(baseline_path)
        findings, baselined, stale = apply_baseline(
            findings, entries, root)
        stale_count = len(stale)

    print(render(
        findings, options.fmt,
        checked_files=result.checked_files,
        suppressed=result.suppressed,
        rule_stats={rule_id: stats.as_dict()
                    for rule_id, stats in result.rule_stats.items()},
        cache_stats=result.cache_stats,
        baselined=baselined,
        stale_baseline=stale_count,
        rules=rules,
        root=root,
    ))
    return 1 if any(f.severity == "error" for f in findings) else 0
