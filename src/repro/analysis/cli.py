"""``repro lint`` — run the determinism & invariant analyzer.

Usage (via the package CLI)::

    repro lint                          # analyze the shipped repro package
    repro lint src tests               # analyze explicit paths
    repro lint --format=json           # machine-readable report (CI)
    repro lint --select=DET,ENV003     # rule families or exact ids
    repro lint --list-rules            # registry dump

Exit status is 0 when no error-severity finding survives suppression
filtering, 1 otherwise — the CI static-analysis job gates on exactly
this.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.core import (
    Rule,
    analyze_paths,
    collect_files,
    default_rules,
)
from repro.analysis.reporters import FORMATS, render, render_rule_list


def default_lint_root() -> Path:
    """Directory containing the installed ``repro`` package.

    Analyzing relative to this root gives modules relpaths like
    ``repro/sim/config.py``, which is what path-scoped rules match on.
    """
    import repro

    return Path(repro.__file__).resolve().parent.parent


def select_rules(rules: Sequence[Rule],
                 select: Optional[str]) -> List[Rule]:
    """Filter ``rules`` by a comma-separated id/family-prefix list.

    ``--select=DET`` keeps the whole DET family; ``--select=ENV003``
    keeps one rule.  Unknown tokens raise so typos fail loudly instead
    of silently linting nothing.
    """
    if not select:
        return list(rules)
    tokens = [token.strip() for token in select.split(",") if token.strip()]
    chosen: List[Rule] = []
    for token in tokens:
        matched = [rule for rule in rules if rule.id.startswith(token)]
        if not matched:
            known = ", ".join(rule.id for rule in rules)
            raise SystemExit(
                "repro lint: unknown rule selector %r (known: %s)"
                % (token, known)
            )
        for rule in matched:
            if rule not in chosen:
                chosen.append(rule)
    return chosen


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static determinism & hot-path invariant analyzer.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze "
             "(default: the installed repro package)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids or family prefixes "
             "(e.g. DET,ENV003); default: all rules",
    )
    parser.add_argument(
        "--root", default=None,
        help="root for scope-relative paths "
             "(default: the package parent for the default target, "
             "the current directory for explicit paths)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def run_lint(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro lint``; returns the process exit code."""
    options = build_parser().parse_args(argv)
    rules = select_rules(default_rules(), options.select)

    if options.list_rules:
        print(render_rule_list(rules, options.fmt))
        return 0

    if options.paths:
        paths = [Path(p) for p in options.paths]
        root = Path(options.root) if options.root else Path.cwd()
    else:
        root = default_lint_root()
        if options.root:
            root = Path(options.root)
        paths = [root / "repro"]

    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        raise SystemExit(
            "repro lint: no such path: %s" % ", ".join(missing)
        )

    checked = len(collect_files(paths))
    findings = analyze_paths(paths, rules=rules, root=root)
    print(render(findings, options.fmt, checked_files=checked))
    return 1 if any(f.severity == "error" for f in findings) else 0
