"""GEN rules: audit of the span-compiled kernel code generator.

:mod:`repro.sim.spanplan` builds Python source at runtime and
``exec``-compiles it into the simulator's hottest loop.  The generated
kernels are trusted to be bit-identical to the scalar reference *and*
to be pure straight-line float code: every constant closure-bound, no
global lookups (the exec namespace deliberately has empty
``__builtins__``), and no attribute chasing inside the lane loops.
These rules parse the very source strings the generator hands to
``exec()`` — via its kernel-template entry points — and verify that
contract on the AST, so a codegen regression fails lint before it can
reach a benchmark.

* ``GEN001`` (per module) — ``exec``/``eval`` hygiene: any module that
  calls ``exec()`` must pass an explicit namespace (no implicit
  globals) and must export the kernel-template entry points
  (``template_shapes``/``generate_kernel_source``) that make its
  generated code auditable.
* ``GEN002`` (project) — the generated-kernel audit proper, run over
  :func:`repro.sim.spanplan.template_shapes`:

  - the generated module must consist of exactly one factory function
    binding all constants through closure cells — no imports, no
    ``global`` statements;
  - every call inside the kernel must target an allowlisted name
    (the math closures ``e_``/``lg_``/``cs_``/``sn_``/``sq_``/``ln_``,
    the cell-axis array reductions ``an_``/``mn_``, the per-lane RNG
    draws ``rnd_<i>``, ``memo_get``, ``acc_e``) or an allowlisted
    method (``advance``, ``complete_execution``, ``append``,
    ``clear``) on a bound name;
  - no name anywhere in the generated code may resolve to a global
    (checked with :mod:`symtable` — with empty ``__builtins__`` a
    global lookup is a latent ``NameError``);
  - inside the hot ``while`` loops, attribute access is restricted to
    the completion-path allowlist (``progress``,
    ``execution_misses``, ``_target_total`` and the allowlisted
    methods) on plain bound names — never chained, never on call
    results.

* ``GEN003`` (project) — the *persistent* kernel cache audit: every
  current-code-version entry in the on-disk kernel cache
  (``.repro_cache/kernels/``) must be byte-identical — by source hash —
  to what ``generate_kernel_source(shape)`` produces today, and must
  itself pass the GEN002 source audit.  A divergent entry means a
  doctored or stale file would be ``exec``-compiled instead of fresh
  codegen; an empty or disabled cache yields no findings.
"""

from __future__ import annotations

import ast
import re
import symtable
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Set

from repro.analysis.core import (
    Finding,
    ProjectRule,
    Rule,
    SourceModule,
    call_name,
    register,
)

#: Module suffix of the kernel code generator.
SPANPLAN_MODULE_SUFFIX = "repro/sim/spanplan.py"

#: Entry points a codegen module must export to be auditable.
TEMPLATE_ENTRY_POINTS = ("template_shapes", "generate_kernel_source")

#: Plain-name callables the generated kernels may invoke.  ``an_`` and
#: ``mn_`` are the cell-axis kernels' array ``any``/``min`` reductions
#: (bound by the vector driver; numpy never enters the codegen module).
ALLOWED_CALLS = re.compile(
    r"^(e_|lg_|cs_|sn_|sq_|ln_|ms_|an_|mn_|memo_get|acc_e|rnd_\d+)$"
)

#: Methods the generated kernels may invoke (on plain bound names).
ALLOWED_METHODS = frozenset({
    "advance", "complete_execution", "append", "clear",
})

#: Attributes tolerated inside the hot loops (completion path reads and
#: write-backs on closure-bound lane objects).
LOOP_ATTRIBUTES = frozenset({
    "progress", "execution_misses", "_target_total",
}) | ALLOWED_METHODS


@dataclass(frozen=True)
class KernelViolation:
    """One contract breach inside a generated kernel source."""

    line: int
    message: str


def audit_kernel_source(source: str,
                        origin: str = "<kernel>") -> List[KernelViolation]:
    """Audit one generated kernel source string.

    Returns the list of contract violations (empty for a conforming
    kernel).  Used by the ``GEN002`` project rule over the shipped
    templates and by tests over doctored sources and real compiled
    kernels.
    """
    violations: List[KernelViolation] = []
    try:
        tree = ast.parse(source, filename=origin)
    except SyntaxError as exc:
        return [KernelViolation(exc.lineno or 1,
                                "generated source does not parse: %s"
                                % exc.msg)]

    # -- module shape: one factory, nothing else, no imports/globals --
    if not (len(tree.body) == 1
            and isinstance(tree.body[0], ast.FunctionDef)):
        violations.append(KernelViolation(
            1, "generated module must be exactly one factory function "
               "(constants enter through closure cells only)"))
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            violations.append(KernelViolation(
                node.lineno, "generated code must not import"))
        elif isinstance(node, ast.Global):
            violations.append(KernelViolation(
                node.lineno, "generated code must not declare globals"))

    # -- call allowlist --
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if not ALLOWED_CALLS.match(func.id):
                violations.append(KernelViolation(
                    node.lineno,
                    "call to non-allowlisted name %r" % func.id))
        elif isinstance(func, ast.Attribute):
            if func.attr not in ALLOWED_METHODS:
                violations.append(KernelViolation(
                    node.lineno,
                    "call to non-allowlisted method .%s()" % func.attr))
            elif not isinstance(func.value, ast.Name):
                violations.append(KernelViolation(
                    node.lineno,
                    "method call receiver must be a bound name, not a "
                    "chained expression"))
        else:
            violations.append(KernelViolation(
                node.lineno, "call target must be a simple name"))

    # -- no global name resolution anywhere (empty __builtins__) --
    try:
        table = symtable.symtable(source, origin, "exec")
    except SyntaxError:  # already reported above
        table = None
    if table is not None:
        stack = [table]
        while stack:
            scope = stack.pop()
            stack.extend(scope.get_children())
            if scope.get_type() != "function":
                continue
            for symbol in scope.get_symbols():
                if symbol.is_referenced() and symbol.is_global():
                    violations.append(KernelViolation(
                        scope.get_lineno(),
                        "name %r in scope %r resolves to a global; every "
                        "binding must come from a closure cell or local"
                        % (symbol.get_name(), scope.get_name())))

    # -- in-loop attribute discipline --
    for node in ast.walk(tree):
        if not isinstance(node, ast.While):
            continue
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Attribute):
                continue
            if inner.attr not in LOOP_ATTRIBUTES:
                violations.append(KernelViolation(
                    inner.lineno,
                    "attribute %r accessed inside a lane loop; hoist it "
                    "into a closure binding" % inner.attr))
            elif not isinstance(inner.value, ast.Name):
                violations.append(KernelViolation(
                    inner.lineno,
                    "chained attribute access inside a lane loop"))
    return violations


@register
class ExecHygiene(Rule):
    """GEN001: exec() only with an explicit, auditable namespace."""

    id = "GEN001"
    severity = "error"
    description = (
        "exec()/eval() without an explicit namespace, or in a module "
        "that does not export kernel-template entry points "
        "(template_shapes/generate_kernel_source) making its generated "
        "code auditable"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        exec_calls = [
            node for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
            and call_name(node) in ("exec", "eval")
        ]
        if not exec_calls:
            return
        top_level = module.top_level_names()
        missing = [
            name for name in TEMPLATE_ENTRY_POINTS if name not in top_level
        ]
        for call in exec_calls:
            if len(call.args) < 2:
                yield self.finding(
                    module, call,
                    "%s() without an explicit namespace executes against "
                    "module globals; pass a dedicated dict (with empty "
                    "__builtins__) instead" % call_name(call),
                )
            if missing:
                yield self.finding(
                    module, call,
                    "module calls %s() but does not export %s; generated "
                    "code must be auditable through kernel-template "
                    "entry points"
                    % (call_name(call), " and ".join(missing)),
                )


@register
class GeneratedKernelAudit(ProjectRule):
    """GEN002: the shipped kernel templates obey the codegen contract."""

    id = "GEN002"
    severity = "error"
    description = (
        "a span-kernel template generates code that breaks the codegen "
        "contract (non-allowlisted call, global name resolution, or "
        "attribute access inside a lane loop)"
    )

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        spanplan = next(
            (m for m in modules
             if m.path_matches(SPANPLAN_MODULE_SUFFIX)),
            None,
        )
        if spanplan is None:
            return
        try:
            from repro.sim.spanplan import (
                generate_kernel_source,
                template_shapes,
            )
        except ImportError as exc:
            yield Finding(
                rule=self.id, severity=self.severity,
                path=str(spanplan.path), line=1, col=0,
                message="cannot import kernel-template entry points: %s"
                        % exc,
            )
            return
        seen: Set[str] = set()
        for shape in template_shapes():
            source = generate_kernel_source(shape)
            for violation in audit_kernel_source(
                source, origin="<spanplan %r>" % (shape,)
            ):
                message = (
                    "template shape %r generates non-conforming code "
                    "(generated line %d): %s"
                    % (shape, violation.line, violation.message)
                )
                if message in seen:
                    continue
                seen.add(message)
                yield Finding(
                    rule=self.id, severity=self.severity,
                    path=str(spanplan.path), line=1, col=0,
                    message=message,
                )


@register
class KernelDiskCacheAudit(ProjectRule):
    """GEN003: on-disk kernel sources match today's generator exactly."""

    id = "GEN003"
    severity = "error"
    description = (
        "a persistent kernel-cache entry diverges from what "
        "generate_kernel_source() produces for its shape (or fails the "
        "generated-code audit): the sweep engine would exec stale or "
        "doctored code instead of fresh codegen"
    )

    def project_state_fingerprint(self) -> str:
        """Stamp of the on-disk kernel cache this rule audits.

        The incremental lint cache may only replay this rule's result
        while the kernel store is unchanged, so the stamp folds in
        every entry's shape and source hash.
        """
        try:
            from repro.experiments.diskcache import get_kernel_cache

            cache = get_kernel_cache()
            if not cache.enabled:
                return "disabled"
            return _sha256("\x1f".join(sorted(
                "%r=%s" % (shape, _sha256(source))
                for shape, source in cache.entries()
            )))
        except Exception:
            return "unavailable"

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        spanplan = next(
            (m for m in modules
             if m.path_matches(SPANPLAN_MODULE_SUFFIX)),
            None,
        )
        if spanplan is None:
            return
        try:
            from repro.experiments.diskcache import get_kernel_cache
            from repro.sim.spanplan import generate_kernel_source
        except ImportError as exc:
            yield Finding(
                rule=self.id, severity=self.severity,
                path=str(spanplan.path), line=1, col=0,
                message="cannot import kernel-cache entry points: %s" % exc,
            )
            return
        cache = get_kernel_cache()
        if not cache.enabled:
            return
        for shape, stored in cache.entries():
            try:
                expected = generate_kernel_source(shape)
            except Exception as exc:  # unknown shape: flag, don't crash
                yield Finding(
                    rule=self.id, severity=self.severity,
                    path=str(spanplan.path), line=1, col=0,
                    message="cached kernel shape %r is not generatable "
                            "by the current code: %s" % (shape, exc),
                )
                continue
            if _sha256(stored) != _sha256(expected):
                yield Finding(
                    rule=self.id, severity=self.severity,
                    path=str(spanplan.path), line=1, col=0,
                    message="cached kernel for shape %r diverges from "
                            "generate_kernel_source() (stored %s != "
                            "generated %s); clear it with `repro cache "
                            "kernels clear`"
                            % (shape, _sha256(stored)[:12],
                               _sha256(expected)[:12]),
                )
            for violation in audit_kernel_source(
                stored, origin="<kernel cache %r>" % (shape,)
            ):
                yield Finding(
                    rule=self.id, severity=self.severity,
                    path=str(spanplan.path), line=1, col=0,
                    message="cached kernel for shape %r fails the source "
                            "audit (generated line %d): %s"
                            % (shape, violation.line, violation.message),
                )


def _sha256(source: str) -> str:
    import hashlib

    return hashlib.sha256(source.encode("utf-8")).hexdigest()
