"""ENV rules: one funnel for environment knobs, honest cache keys.

The persistent disk cache treats results as pure functions of their key
parts; an environment variable that changes results but is read outside
the declared funnel silently poisons that contract (the
``DEFAULT_EXECUTIONS`` import-time read fixed alongside this analyzer
was exactly this bug: workers observed a value frozen at import, and
late ``REPRO_EXECUTIONS`` changes were ignored).

* ``ENV001`` — ``os.environ`` / ``os.getenv`` may be *read* only inside
  :mod:`repro.sim.config`, the typed accessor module whose
  :data:`repro.sim.config.KNOBS` registry declares every knob.  Writes
  (``os.environ[k] = v``) remain legal anywhere — the CLI exports the
  resolved backend to workers that way.
* ``ENV002`` — neither raw environment reads nor knob accessors may
  execute at import time (module body, class body, decorator, or
  argument default).  Import-time reads freeze the value per process.
* ``ENV003`` — cross-check (project rule): every knob whose registry
  entry declares a ``cache_key_symbol`` must have that symbol appear
  inside the experiment harness's disk-cache key tuples, so cached
  cells can never be served across differing knob values.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Finding,
    ProjectRule,
    Rule,
    SourceModule,
    call_name,
    dotted_name,
    register,
)

#: The only module allowed to read the environment.
CONFIG_MODULE_SUFFIX = "repro/sim/config.py"

#: Harness module whose cache-key tuples ENV003 inspects.
HARNESS_MODULE_SUFFIX = "repro/experiments/harness.py"

#: Variable names treated as cache-key tuples in the harness.
CACHE_KEY_NAMES = ("key", "disk_key")


def _knob_registry() -> Tuple[Sequence, Set[str]]:
    """The declared knobs and their accessor names.

    Imported lazily so the analyzer can still lint arbitrary trees (the
    rules degrade to raw ``os.environ`` policing when :mod:`repro.sim`
    is not importable).
    """
    try:
        from repro.sim.config import KNOBS
    except ImportError:  # pragma: no cover - repro is always importable here
        return (), set()
    return KNOBS, {knob.accessor for knob in KNOBS}


def _environ_read(node: ast.AST) -> Optional[str]:
    """Describe the environment read ``node`` performs, or None.

    Recognizes ``os.environ.get/setdefault/pop(...)``, ``os.getenv``,
    ``os.environ[...]`` in load context, and ``... in os.environ``.
    """
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("os.getenv", "getenv"):
            return name
        if name in ("os.environ.get", "environ.get",
                    "os.environ.setdefault", "environ.setdefault",
                    "os.environ.pop", "environ.pop",
                    "os.environ.items", "environ.items",
                    "os.environ.copy", "environ.copy"):
            return name
    elif isinstance(node, ast.Subscript):
        if (dotted_name(node.value) in ("os.environ", "environ")
                and isinstance(node.ctx, ast.Load)):
            return "os.environ[...]"
    elif isinstance(node, ast.Compare):
        for comparator in node.comparators:
            if dotted_name(comparator) in ("os.environ", "environ"):
                return "in os.environ"
    return None


@register
class EnvironReadOutsideConfig(Rule):
    """ENV001: environment reads only through the config accessors."""

    id = "ENV001"
    severity = "error"
    description = (
        "os.environ read outside repro/sim/config.py: declare the knob "
        "in repro.sim.config.KNOBS and read it through its typed "
        "accessor so workers, tests, and cache keys agree on its value"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if module.path_matches(CONFIG_MODULE_SUFFIX):
            return
        for node in ast.walk(module.tree):
            what = _environ_read(node)
            if what is not None:
                yield self.finding(
                    module, node,
                    "%s read outside the config accessor module; add an "
                    "accessor to repro.sim.config instead" % what,
                )


@register
class ImportTimeEnvRead(Rule):
    """ENV002: no environment access while a module imports."""

    id = "ENV002"
    severity = "error"
    description = (
        "environment knob evaluated at import time (module constant, "
        "class body, or argument default): the value freezes per "
        "process and late changes are silently ignored"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        _, accessors = _knob_registry()
        import_time = module.import_time_nodes
        for node in ast.walk(module.tree):
            if node not in import_time:
                continue
            what = _environ_read(node)
            if what is None and isinstance(node, ast.Call):
                name = call_name(node)
                if name is not None and name.split(".")[-1] in accessors:
                    what = "%s()" % name
            if what is not None:
                yield self.finding(
                    module, node,
                    "%s executes at import time; resolve the knob inside "
                    "the function that needs it" % what,
                )


def _cache_key_symbols(harness: SourceModule) -> Set[str]:
    """Identifiers appearing inside the harness's cache-key tuples.

    A cache-key tuple is the value of an assignment to ``key`` /
    ``disk_key``, or a tuple passed as the ``parts`` argument of a
    ``.get``/``.put`` call on the disk cache.
    """
    tuples: List[ast.AST] = []
    for node in ast.walk(harness.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Name)
                        and target.id in CACHE_KEY_NAMES
                        and isinstance(node.value, ast.Tuple)):
                    tuples.append(node.value)
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name and name.split(".")[-1] in ("get", "put"):
                for arg in node.args[1:2]:
                    if isinstance(arg, ast.Tuple):
                        tuples.append(arg)
    symbols: Set[str] = set()
    for tuple_node in tuples:
        for node in ast.walk(tuple_node):
            if isinstance(node, ast.Name):
                symbols.add(node.id)
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name:
                    symbols.add(name.split(".")[-1])
    return symbols


@register
class CacheKeyCrossCheck(ProjectRule):
    """ENV003: result-relevant knobs must be folded into cache keys."""

    id = "ENV003"
    severity = "error"
    description = (
        "a knob declared cache-relevant in repro.sim.config.KNOBS does "
        "not appear in the experiment harness's disk-cache key tuples; "
        "cached results could be served across differing knob values"
    )

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        harness = next(
            (m for m in modules if m.path_matches(HARNESS_MODULE_SUFFIX)),
            None,
        )
        if harness is None:
            # Not analyzing the repository tree (e.g. a fixture dir).
            return
        knobs, _ = _knob_registry()
        symbols = _cache_key_symbols(harness)
        for knob in knobs:
            if knob.cache_key_symbol is None:
                continue
            if knob.cache_key_symbol not in symbols:
                yield Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=str(harness.path),
                    line=1,
                    col=0,
                    message=(
                        "knob %s is declared cache-relevant (symbol %r) "
                        "but that symbol never appears in a cache-key "
                        "tuple in %s"
                        % (knob.name, knob.cache_key_symbol,
                           HARNESS_MODULE_SUFFIX)
                    ),
                )
