"""Rule framework of the determinism & invariant analyzer.

The analyzer is a small AST-based lint engine specialized to this
repository's correctness contract: the perf work of PRs 1-3 made the
simulator's results depend on invariants (bit-exact kernels, honest
cache keys, share-nothing sweep workers) that runtime tests can only
sample.  The rules here check them mechanically on every file, the way
Dirigent itself continuously audits execution against a profiled
contract.

Structure:

* :class:`Finding` — one diagnostic, with rule id, severity, location.
* :class:`Rule` — per-module rules; :class:`ProjectRule` — rules that
  need the whole analyzed set (cross-file checks, codegen audits).
* :class:`SourceModule` — a parsed file plus the derived indexes rules
  share: suppression comments, import-time node marking, and a parent
  map.
* :func:`analyze_paths` — the driver: collect files, parse, run every
  registered rule, filter suppressed findings.

Suppressions are inline comments on the offending line::

    t0 = time.time()  # repro-lint: disable=DET001
    x = f()           # repro-lint: disable        (all rules)

Rules register themselves with the :func:`register` decorator; importing
:mod:`repro.analysis.rules_det` (etc.) populates the registry, which
:func:`default_rules` does on demand.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Finding severities, in gating order.  ``error`` findings fail
#: ``repro lint`` (exit 1); ``warning`` findings are reported only.
SEVERITIES = ("error", "warning")

#: Inline suppression syntax: ``# repro-lint: disable=RULE1,RULE2`` or a
#: blanket ``# repro-lint: disable``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<rules>[A-Z0-9,\s]+))?"
)

#: Directory names never analyzed.
_SKIP_DIRS = {"__pycache__", ".git", ".repro_cache"}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    Attributes:
        rule: Rule identifier (e.g. ``"DET001"``).
        severity: ``"error"`` or ``"warning"``.
        path: File the finding is in (as given to the analyzer).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: Human-readable description of the violation.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """``path:line:col`` for text reporters."""
        return "%s:%d:%d" % (self.path, self.line, self.col)

    def as_dict(self) -> Dict[str, object]:
        """JSON-reporter shape."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class SourceModule:
    """A parsed source file plus the indexes rules share.

    Attributes:
        path: Filesystem path of the file.
        relpath: Path relative to the analysis root, POSIX-style (rules
            match scopes — e.g. ``sim/`` — against this).
        text: Raw source text.
        tree: Parsed :mod:`ast` module.
        suppressions: line -> set of suppressed rule ids; the sentinel
            ``"*"`` suppresses every rule on that line.
    """

    def __init__(self, path: Path, relpath: str, text: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = tree
        self.suppressions = _collect_suppressions(text)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._import_time: Optional[Set[ast.AST]] = None

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the module tree (built lazily)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    @property
    def import_time_nodes(self) -> Set[ast.AST]:
        """Nodes whose code executes while the module is being imported.

        Covers module-level statements, class bodies, decorators,
        argument defaults and annotations of module/class-level ``def``s
        — everything that runs before the first caller ever invokes a
        function.  Bodies of functions (and lambdas) are excluded.
        """
        if self._import_time is None:
            marked: Set[ast.AST] = set()

            def mark(node: ast.AST, import_time: bool) -> None:
                if import_time:
                    marked.add(node)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # Decorators, defaults, and annotations evaluate at
                    # def-time (import time for top-level/class defs);
                    # the body does not.
                    for dec in node.decorator_list:
                        mark(dec, import_time)
                    args = node.args
                    for default in list(args.defaults) + [
                        d for d in args.kw_defaults if d is not None
                    ]:
                        mark(default, import_time)
                    for child in node.body:
                        mark(child, False)
                elif isinstance(node, ast.Lambda):
                    for default in list(node.args.defaults) + [
                        d for d in node.args.kw_defaults if d is not None
                    ]:
                        mark(default, import_time)
                    mark(node.body, False)
                else:
                    for child in ast.iter_child_nodes(node):
                        mark(child, import_time)

            for stmt in self.tree.body:
                mark(stmt, True)
            self._import_time = marked
        return self._import_time

    def path_matches(self, *suffixes: str) -> bool:
        """True when the module's relative path ends with any suffix."""
        return any(self.relpath.endswith(suffix) for suffix in suffixes)

    def in_scope(self, scope: Optional[str]) -> bool:
        """True when the module lies under ``scope`` (``None`` = all)."""
        if scope is None:
            return True
        return ("/%s" % scope) in ("/" + self.relpath)

    def top_level_names(self) -> Set[str]:
        """Names bound by module-level statements (defs, assigns, imports)."""
        names: Set[str] = set()
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    names.update(_target_names(target))
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                names.update(_target_names(stmt.target))
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name)
        return names

    def suppressed(self, finding: Finding) -> bool:
        """True when an inline comment silences this finding."""
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "*" in rules or finding.rule in rules


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_target_names(element))
    return names


def _collect_suppressions(text: str) -> Dict[int, Set[str]]:
    """Parse ``# repro-lint: disable[=...]`` comments, by line."""
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            raw = match.group("rules")
            if raw is None:
                rules = {"*"}
            else:
                rules = {r.strip() for r in raw.split(",") if r.strip()}
            suppressions.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return suppressions


# ---------------------------------------------------------------------------
# Rules and registry
# ---------------------------------------------------------------------------


class Rule:
    """Base class for per-module rules.

    Subclasses set ``id``, ``severity``, and ``description`` and
    implement :meth:`check_module`.  The driver instantiates each rule
    once per run.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A rule that runs once over the whole analyzed module set."""

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        """Yield findings for the analyzed set as a whole."""
        raise NotImplementedError


#: Registered rule classes by id, in registration order.
REGISTRY: Dict[str, type] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError("rule %r has no id" % rule_cls)
    if rule_cls.id in REGISTRY and REGISTRY[rule_cls.id] is not rule_cls:
        raise ValueError("duplicate rule id %s" % rule_cls.id)
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(
            "rule %s has invalid severity %r" % (rule_cls.id,
                                                 rule_cls.severity)
        )
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def default_rules() -> List[Rule]:
    """Instantiate every registered rule (importing the rule modules)."""
    # Imported here so the registry is populated exactly once, on first
    # use, without import cycles at package-init time.
    from repro.analysis import rules_det, rules_env, rules_gen, rules_par  # noqa: F401
    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Dotted name of an expression (``a.b.c``), or None if not one."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """Dotted name a call targets (``a.b.c`` for ``a.b.c(...)``)."""
    return dotted_name(call.func)


def is_set_expression(node: ast.AST) -> bool:
    """True for expressions that are unambiguously unordered sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand paths into the sorted list of ``.py`` files to analyze."""
    files: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS or ".egg-info" in str(candidate):
                    continue
                files.append(candidate)
    return files


def load_module(path: Path, root: Optional[Path] = None) -> SourceModule:
    """Parse one file into a :class:`SourceModule`.

    Raises:
        SyntaxError: when the file does not parse (reported by the
            driver as an analyzer-level finding).
    """
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    if root is not None:
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
    else:
        relpath = path.as_posix()
    return SourceModule(path, relpath, text, tree)


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over ``paths``.

    Returns findings sorted by (path, line, rule) with inline
    suppressions already filtered out.  Files that fail to parse yield
    a synthetic ``PARSE`` error finding instead of aborting the run.
    """
    if rules is None:
        rules = default_rules()
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    findings: List[Finding] = []
    modules: List[SourceModule] = []
    for path in collect_files([Path(p) for p in paths]):
        try:
            module = load_module(path, root=root)
        except SyntaxError as exc:
            findings.append(Finding(
                rule="PARSE",
                severity="error",
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message="file does not parse: %s" % exc.msg,
            ))
            continue
        modules.append(module)
        for rule in module_rules:
            for finding in rule.check_module(module):
                if not module.suppressed(finding):
                    findings.append(finding)
    by_path = {str(m.path): m for m in modules}
    for rule in project_rules:
        for finding in rule.check_project(modules):
            module = by_path.get(finding.path)
            if module is None or not module.suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_rule_info(rules: Iterable[Rule]) -> Iterator[Dict[str, str]]:
    """Rule metadata rows for reporters and ``--list-rules``."""
    for rule in rules:
        yield {
            "id": rule.id,
            "severity": rule.severity,
            "description": rule.description,
        }
