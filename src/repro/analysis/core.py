"""Rule framework of the determinism & invariant analyzer.

The analyzer is a small AST-based lint engine specialized to this
repository's correctness contract: the perf work of PRs 1-3 made the
simulator's results depend on invariants (bit-exact kernels, honest
cache keys, share-nothing sweep workers) that runtime tests can only
sample.  The rules here check them mechanically on every file, the way
Dirigent itself continuously audits execution against a profiled
contract.

Structure:

* :class:`Finding` — one diagnostic, with rule id, severity, location.
* :class:`Rule` — per-module rules; :class:`ProjectRule` — rules that
  need the whole analyzed set (cross-file checks, codegen audits).
* :class:`SourceModule` — a parsed file plus the derived indexes rules
  share: suppression comments, import-time node marking, and a parent
  map.
* :func:`analyze_paths` — the driver: collect files, parse, run every
  registered rule, filter suppressed findings.

Suppressions are inline comments on the offending line::

    t0 = time.time()  # repro-lint: disable=DET001
    x = f()           # repro-lint: disable        (all rules)

Rules register themselves with the :func:`register` decorator; importing
:mod:`repro.analysis.rules_det` (etc.) populates the registry, which
:func:`default_rules` does on demand.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Finding severities, in gating order.  ``error`` findings fail
#: ``repro lint`` (exit 1); ``warning`` findings are reported only.
SEVERITIES = ("error", "warning")

#: Inline suppression syntax: ``# repro-lint: disable=RULE1,RULE2`` or a
#: blanket ``# repro-lint: disable``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<rules>[A-Z0-9,\s]+))?"
)

#: Directory names never analyzed.
_SKIP_DIRS = {"__pycache__", ".git", ".repro_cache"}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    Attributes:
        rule: Rule identifier (e.g. ``"DET001"``).
        severity: ``"error"`` or ``"warning"``.
        path: File the finding is in (as given to the analyzer).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: Human-readable description of the violation.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """``path:line:col`` for text reporters."""
        return "%s:%d:%d" % (self.path, self.line, self.col)

    def as_dict(self) -> Dict[str, object]:
        """JSON-reporter shape."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class SourceModule:
    """A parsed source file plus the indexes rules share.

    Attributes:
        path: Filesystem path of the file.
        relpath: Path relative to the analysis root, POSIX-style (rules
            match scopes — e.g. ``sim/`` — against this).
        text: Raw source text.
        tree: Parsed :mod:`ast` module.
        suppressions: line -> set of suppressed rule ids; the sentinel
            ``"*"`` suppresses every rule on that line.
    """

    def __init__(self, path: Path, relpath: str, text: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = tree
        self.suppressions = _collect_suppressions(text)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._import_time: Optional[Set[ast.AST]] = None
        self._decorator_owners: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the module tree (built lazily)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    @property
    def import_time_nodes(self) -> Set[ast.AST]:
        """Nodes whose code executes while the module is being imported.

        Covers module-level statements, class bodies, decorators,
        argument defaults and annotations of module/class-level ``def``s
        — everything that runs before the first caller ever invokes a
        function.  Bodies of functions (and lambdas) are excluded.
        """
        if self._import_time is None:
            marked: Set[ast.AST] = set()

            def mark(node: ast.AST, import_time: bool) -> None:
                if import_time:
                    marked.add(node)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # Decorators, defaults, and annotations evaluate at
                    # def-time (import time for top-level/class defs);
                    # the body does not.
                    for dec in node.decorator_list:
                        mark(dec, import_time)
                    args = node.args
                    for default in list(args.defaults) + [
                        d for d in args.kw_defaults if d is not None
                    ]:
                        mark(default, import_time)
                    for child in node.body:
                        mark(child, False)
                elif isinstance(node, ast.Lambda):
                    for default in list(node.args.defaults) + [
                        d for d in node.args.kw_defaults if d is not None
                    ]:
                        mark(default, import_time)
                    mark(node.body, False)
                else:
                    for child in ast.iter_child_nodes(node):
                        mark(child, import_time)

            for stmt in self.tree.body:
                mark(stmt, True)
            self._import_time = marked
        return self._import_time

    def decorator_owner(self, node: ast.AST) -> Optional[ast.AST]:
        """The decorated ``def``/``class`` owning ``node``, or None.

        Findings anchored at nodes *inside* a decorator expression are
        reported at the owning definition's line, so an inline
        ``# repro-lint: disable=RULE`` placed on the ``def`` line
        suppresses them (the natural place reviewers put it).
        """
        if self._decorator_owners is None:
            owners: Dict[ast.AST, ast.AST] = {}
            for owner in ast.walk(self.tree):
                if not isinstance(owner, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                    continue
                for dec in owner.decorator_list:
                    for inner in ast.walk(dec):
                        owners[inner] = owner
            self._decorator_owners = owners
        return self._decorator_owners.get(node)

    def path_matches(self, *suffixes: str) -> bool:
        """True when the module's relative path ends with any suffix."""
        return any(self.relpath.endswith(suffix) for suffix in suffixes)

    def in_scope(self, scope: Optional[str]) -> bool:
        """True when the module lies under ``scope`` (``None`` = all)."""
        if scope is None:
            return True
        return ("/%s" % scope) in ("/" + self.relpath)

    def top_level_names(self) -> Set[str]:
        """Names bound by module-level statements (defs, assigns, imports)."""
        names: Set[str] = set()
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    names.update(_target_names(target))
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                names.update(_target_names(stmt.target))
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name)
        return names

    def suppressed(self, finding: Finding) -> bool:
        """True when an inline comment silences this finding."""
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "*" in rules or finding.rule in rules


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_target_names(element))
    return names


def _collect_suppressions(text: str) -> Dict[int, Set[str]]:
    """Parse ``# repro-lint: disable[=...]`` comments, by line."""
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            raw = match.group("rules")
            if raw is None:
                rules = {"*"}
            else:
                rules = {r.strip() for r in raw.split(",") if r.strip()}
            suppressions.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return suppressions


# ---------------------------------------------------------------------------
# Rules and registry
# ---------------------------------------------------------------------------


class Rule:
    """Base class for per-module rules.

    Subclasses set ``id``, ``severity``, and ``description`` and
    implement :meth:`check_module`.  The driver instantiates each rule
    once per run.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    #: "module" for per-file rules, "project" for whole-set rules;
    #: surfaced by ``--list-rules`` and used by the incremental cache
    #: (module-rule findings cache per file, project rules per run).
    kind: str = "module"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``.

        A node inside a decorator expression anchors at the decorated
        definition's ``def``/``class`` line instead, so suppressions
        placed on the definition line apply.
        """
        anchor = module.decorator_owner(node) or node
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=str(module.path),
            line=getattr(anchor, "lineno", 1),
            col=getattr(anchor, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A rule that runs once over the whole analyzed module set."""

    kind = "project"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        """Yield findings for the analyzed set as a whole."""
        raise NotImplementedError

    def project_state_fingerprint(self) -> str:
        """Stamp of external state this rule's result depends on.

        The incremental lint cache reuses a cached project-rule result
        only while the analyzed sources *and* this stamp are unchanged.
        Rules that consult state outside the analyzed files (e.g. the
        on-disk kernel cache) override this to fold that state in; the
        default covers rules that are pure functions of the sources.
        """
        return ""


#: Registered rule classes by id, in registration order.
REGISTRY: Dict[str, type] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError("rule %r has no id" % rule_cls)
    if rule_cls.id in REGISTRY and REGISTRY[rule_cls.id] is not rule_cls:
        raise ValueError("duplicate rule id %s" % rule_cls.id)
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(
            "rule %s has invalid severity %r" % (rule_cls.id,
                                                 rule_cls.severity)
        )
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def default_rules() -> List[Rule]:
    """Instantiate every registered rule (importing the rule modules)."""
    # Imported here so the registry is populated exactly once, on first
    # use, without import cycles at package-init time.
    from repro.analysis import (  # noqa: F401
        rules_cov,
        rules_det,
        rules_env,
        rules_flo,
        rules_gen,
        rules_par,
    )
    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Dotted name of an expression (``a.b.c``), or None if not one."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """Dotted name a call targets (``a.b.c`` for ``a.b.c(...)``)."""
    return dotted_name(call.func)


def is_set_expression(node: ast.AST) -> bool:
    """True for expressions that are unambiguously unordered sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand paths into the sorted list of ``.py`` files to analyze.

    Overlapping inputs (``repro lint src src/repro``, a file listed
    twice, a directory plus a file inside it) are deduplicated by
    resolved path, so each file is analyzed — and each finding counted
    — exactly once.
    """
    files: List[Path] = []
    seen: Set[Path] = set()

    def add(candidate: Path) -> None:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            files.append(candidate)

    for path in paths:
        if path.is_file() and path.suffix == ".py":
            add(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS or ".egg-info" in str(candidate):
                    continue
                add(candidate)
    return files


def module_relpath(path: Path, root: Optional[Path] = None) -> str:
    """POSIX path of ``path`` relative to ``root`` (scope matching)."""
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()
    return path.as_posix()


def load_module(path: Path, root: Optional[Path] = None) -> SourceModule:
    """Parse one file into a :class:`SourceModule`.

    Raises:
        SyntaxError: when the file does not parse (reported by the
            driver as an analyzer-level finding).
    """
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceModule(path, module_relpath(path, root), text, tree)


@dataclass
class RuleStats:
    """Per-rule run accounting (surfaced in the JSON summary)."""

    findings: int = 0
    suppressed: int = 0
    time_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "findings": self.findings,
            "suppressed": self.suppressed,
            "time_s": round(self.time_s, 6),
        }


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced, for reporters and the CLI."""

    findings: List[Finding]
    checked_files: int
    rule_stats: Dict[str, RuleStats] = field(default_factory=dict)
    cache_stats: Optional[Dict[str, object]] = None

    @property
    def suppressed(self) -> int:
        """Total findings silenced by inline suppressions."""
        return sum(stats.suppressed for stats in self.rule_stats.values())


def _stats_for(rule_stats: Dict[str, RuleStats], rule_id: str) -> RuleStats:
    stats = rule_stats.get(rule_id)
    if stats is None:
        stats = rule_stats[rule_id] = RuleStats()
    return stats


def run_analysis(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
    cache=None,
) -> AnalysisResult:
    """Run ``rules`` (default: all registered) over ``paths``.

    Findings come back sorted by (path, line, rule) with inline
    suppressions already filtered out; files that fail to parse yield a
    synthetic ``PARSE`` error finding instead of aborting the run.
    ``cache`` (a :class:`repro.analysis.cache.LintCache`) reuses
    module-rule findings for files whose content hash is unchanged and
    the whole project-rule pass when *no* analyzed file changed — a
    fully warm run never parses a single file.
    """
    if rules is None:
        rules = default_rules()
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    rule_stats: Dict[str, RuleStats] = {r.id: RuleStats() for r in rules}
    findings: List[Finding] = []

    entries: List[tuple] = []  # (path, relkey, text, content_sha)
    for path in collect_files([Path(p) for p in paths]):
        text = path.read_text(encoding="utf-8")
        entries.append((path, module_relpath(path, root), text,
                        _content_sha(text)))

    project_key = None
    cached_project = None
    if cache is not None and project_rules:
        state = "\x1f".join(sorted(
            "%s=%s" % (rule.id, rule.project_state_fingerprint())
            for rule in project_rules
        ))
        project_key = _content_sha("\x1f".join(
            sorted("%s=%s" % (relkey, sha)
                   for _, relkey, _, sha in entries)
        ) + "\x1e" + state)
        cached_project = cache.lookup_project(project_key)
    # Project rules need the parsed module set, so a project-cache miss
    # forces parsing even content-unchanged files (their module-rule
    # findings still come from the cache).
    need_all_modules = bool(project_rules) and cached_project is None

    modules: List[SourceModule] = []
    files_reused = 0
    for path, relkey, text, sha in entries:
        cached_mod = cache.lookup_module(relkey, sha) if cache else None
        if cached_mod is not None:
            mod_findings, suppressed_by_rule = cached_mod
            files_reused += 1
            findings.extend(mod_findings)
            for finding in mod_findings:
                _stats_for(rule_stats, finding.rule).findings += 1
            for rule_id, count in suppressed_by_rule.items():
                _stats_for(rule_stats, rule_id).suppressed += count
            if not need_all_modules:
                continue
        try:
            module = load_module(path, root=root)
        except SyntaxError as exc:
            if cached_mod is None:
                parse_finding = Finding(
                    rule="PARSE",
                    severity="error",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message="file does not parse: %s" % exc.msg,
                )
                findings.append(parse_finding)
                _stats_for(rule_stats, "PARSE").findings += 1
                if cache is not None:
                    cache.store_module(relkey, sha, [parse_finding], {})
            continue
        modules.append(module)
        if cached_mod is not None:
            continue  # parsed only for the project pass
        mod_findings = []
        suppressed_by_rule: Dict[str, int] = {}
        for rule in module_rules:
            stats = rule_stats[rule.id]
            started = time.perf_counter()
            for finding in rule.check_module(module):
                if module.suppressed(finding):
                    stats.suppressed += 1
                    suppressed_by_rule[rule.id] = (
                        suppressed_by_rule.get(rule.id, 0) + 1
                    )
                else:
                    mod_findings.append(finding)
                    stats.findings += 1
            stats.time_s += time.perf_counter() - started
        findings.extend(mod_findings)
        if cache is not None:
            cache.store_module(relkey, sha, mod_findings,
                               suppressed_by_rule)

    if cached_project is not None:
        project_findings, suppressed_by_rule = cached_project
        findings.extend(project_findings)
        for finding in project_findings:
            _stats_for(rule_stats, finding.rule).findings += 1
        for rule_id, count in suppressed_by_rule.items():
            _stats_for(rule_stats, rule_id).suppressed += count
    else:
        by_path = {str(m.path): m for m in modules}
        project_findings = []
        suppressed_by_rule = {}
        for rule in project_rules:
            stats = rule_stats[rule.id]
            started = time.perf_counter()
            for finding in rule.check_project(modules):
                module = by_path.get(finding.path)
                if module is not None and module.suppressed(finding):
                    stats.suppressed += 1
                    suppressed_by_rule[rule.id] = (
                        suppressed_by_rule.get(rule.id, 0) + 1
                    )
                else:
                    project_findings.append(finding)
                    stats.findings += 1
            stats.time_s += time.perf_counter() - started
        findings.extend(project_findings)
        if cache is not None and project_key is not None:
            cache.store_project(project_key, project_findings,
                                suppressed_by_rule)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    cache_stats = None
    if cache is not None:
        cache_stats = {
            "enabled": True,
            "files_reused": files_reused,
            "files_analyzed": len(entries) - files_reused,
            "project_reused": cached_project is not None,
        }
        cache.save()
    return AnalysisResult(
        findings=findings,
        checked_files=len(entries),
        rule_stats=rule_stats,
        cache_stats=cache_stats,
    )


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """:func:`run_analysis` returning just the finding list."""
    return run_analysis(paths, rules=rules, root=root).findings


def _content_sha(text: str) -> str:
    import hashlib

    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def iter_rule_info(rules: Iterable[Rule]) -> Iterator[Dict[str, str]]:
    """Rule metadata rows for reporters and ``--list-rules``."""
    for rule in rules:
        yield {
            "id": rule.id,
            "severity": rule.severity,
            "kind": rule.kind,
            "description": rule.description,
        }
