"""COV rules: cross-backend state-coverage audit.

Four backends advance the same machine state — the scalar reference
kernel (``Machine.tick``), the batch engine, the span-compiled kernels,
and the multi-cell vector driver — and the runtime equivalence suites
can only *sample* their agreement.  The #1 silent-corruption risk as
the simulator grows is a new hot-state field that the scalar kernel
mutates and another backend never mirrors: every sampled run still
matches until a workload touches the forgotten field.

These project rules close that hole statically.  An AST def-use pass
extracts the set of state mutations in the scalar hot path — attribute
stores, stores through hoisted aliases (``clock = self.clock``;
``cnt_i, cnt_c, cnt_a, cnt_m = self._cnt_arrays``), mutating method
calls on machine sub-objects and processes, RNG draws through hoisted
bound-method tables, and calls of state-advancing callable attributes
— and cross-checks it against the machine-readable mirrored-state
registries the backends export:

* ``COV001`` — scalar extraction vs the vector backend's
  :data:`repro.sim.vector.CELL_COLUMNS`.  A hot-state mutation absent
  from the registry (and not in the machine module's
  ``SCALAR_ONLY_STATE`` allowlist) is an error; so is a registry entry
  with no scalar counterpart (stale documentation) and a stale
  allowlist row.
* ``COV002`` — scalar extraction vs the span-kernel registry
  :data:`repro.sim.spanplan.KERNEL_STATE`, plus a shape-arity audit:
  every ``template_shapes()`` entry must have exactly the arity its
  field registry (``SHAPE_FIELDS`` / ``CELL_SHAPE_FIELDS``) declares,
  so a new shape axis cannot land without the audit learning about it.
* ``COV003`` — the experiment harness's declared
  ``CACHE_KEY_FIELDS`` registry vs its actual disk-cache
  ``get``/``put`` call sites: undeclared namespaces, declared-but-
  unused namespaces, and key tuples missing a declared identifier are
  all errors.

The registries are read from the *analyzed* modules' ASTs when those
modules are part of the run (so fixture trees are self-contained), and
from the live package otherwise (so ``repro lint --changed`` with only
``machine.py`` in the set still cross-checks).  Like the other project
rules, each rule skips silently when its subject module is not in the
analyzed set.

Naming convention shared by the extraction and the registries: plain
machine attributes (``_rho``), per-process members
(``process.progress``), mutating process method calls
(``process.advance()``), and state-advancing callable attributes
(``_cache_tick()``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Set

from repro.analysis.core import (
    Finding,
    ProjectRule,
    SourceModule,
    call_name,
    register,
)

#: Module suffixes of the audited subjects.
MACHINE_MODULE_SUFFIX = "repro/sim/machine.py"
VECTOR_MODULE_SUFFIX = "repro/sim/vector.py"
SPANPLAN_MODULE_SUFFIX = "repro/sim/spanplan.py"
HARNESS_MODULE_SUFFIX = "repro/experiments/harness.py"

#: The scalar reference class and its hot-path entry points.
MACHINE_CLASS = "Machine"
HOT_METHODS = ("tick", "dispatch_events", "settle_cache")

#: Attributes whose elements are processes: a name bound by iterating
#: or indexing one of these becomes process-valued, and mutations
#: through it are recorded as ``process.<member>`` entries.
PROCESS_SOURCES = frozenset({"_procs_by_core", "_b_proc"})

#: Name of the scalar-only allowlist parsed from the machine module.
SCALAR_ONLY_NAME = "SCALAR_ONLY_STATE"

#: Receiver names treated as the disk cache in the harness (COV003).
DISK_RECEIVERS = frozenset({"disk", "cache"})


# ---------------------------------------------------------------------------
# Scalar hot-path def-use extraction
# ---------------------------------------------------------------------------


def _self_attr(node: ast.AST, self_name: str) -> Optional[str]:
    """Attribute name for ``self.<attr>`` expressions, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name):
        return node.attr
    return None


class _MethodExtraction:
    """Def-use state for one method of the machine class."""

    def __init__(self, func: ast.FunctionDef, mutated: Set[str],
                 self_calls: Set[str]) -> None:
        self.func = func
        self.self_name = func.args.args[0].arg if func.args.args else "self"
        self.mutated = mutated          # shared across methods
        self.self_calls = self_calls    # shared recursion worklist
        self.alias: Dict[str, str] = {}        # local -> machine attr
        self.element_of: Dict[str, str] = {}   # loop var -> machine attr
        self.process_names: Set[str] = set()

    # -- pass 1: aliases --------------------------------------------------

    def collect_aliases(self) -> None:
        for node in ast.walk(self.func):
            if not isinstance(node, ast.Assign):
                continue
            attr = _self_attr(node.value, self.self_name)
            if attr is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.alias[target.id] = attr
                elif isinstance(target, ast.Tuple):
                    # cnt_i, cnt_c, cnt_a, cnt_m = self._cnt_arrays —
                    # each unpacked name aliases the source attribute.
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            self.alias[element.id] = attr

    def _attr_of(self, node: ast.AST) -> Optional[str]:
        """Machine attribute an expression refers to (direct or alias)."""
        attr = _self_attr(node, self.self_name)
        if attr is not None:
            return attr
        if isinstance(node, ast.Name):
            return self.alias.get(node.id)
        return None

    # -- pass 2: process-valued names and element bindings ----------------

    def collect_bindings(self) -> None:
        for node in ast.walk(self.func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr = node.iter
                target = node.target
                if (isinstance(iter_expr, ast.Call)
                        and call_name(iter_expr) == "enumerate"
                        and iter_expr.args):
                    # for core, proc in enumerate(self._procs_by_core)
                    attr = self._attr_of(iter_expr.args[0])
                    if (attr in PROCESS_SOURCES
                            and isinstance(target, ast.Tuple)
                            and len(target.elts) == 2
                            and isinstance(target.elts[1], ast.Name)):
                        self.process_names.add(target.elts[1].id)
                else:
                    attr = self._attr_of(iter_expr)
                    if attr is not None and isinstance(target, ast.Name):
                        if attr in PROCESS_SOURCES:
                            self.process_names.add(target.id)
                        self.element_of[target.id] = attr
            elif isinstance(node, ast.Assign):
                # proc = procs_a[i] / proc = self._procs_by_core[core]
                if (isinstance(node.value, ast.Subscript)
                        and self._attr_of(node.value.value)
                        in PROCESS_SOURCES):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.process_names.add(target.id)

    # -- pass 3: mutations -------------------------------------------------

    def _record_store(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element)
            return
        if isinstance(target, ast.Subscript):
            attr = self._attr_of(target.value)
            if attr is not None:
                self.mutated.add(attr)
            return
        if isinstance(target, ast.Attribute):
            base = target.value
            attr = _self_attr(target, self.self_name)
            if attr is not None:
                self.mutated.add(attr)
                return
            base_attr = self._attr_of(base)
            if base_attr is not None:
                # clock.tick = ... / self.clock.tick = ...
                self.mutated.add(base_attr)
                return
            if isinstance(base, ast.Name) and base.id in self.process_names:
                self.mutated.add("process.%s" % target.attr)

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            receiver_attr = _self_attr(func, self.self_name)
            if receiver_attr is not None:
                # self.<name>(...): a def on the class is analyzed
                # recursively; anything else is a state-advancing
                # callable attribute (e.g. the hoisted
                # ``self._cache_tick = cache.tick_update``).
                self.self_calls.add(receiver_attr)
                return
            base_attr = self._attr_of(base)
            if base_attr is not None:
                # self.governor.tick(...) / memory.observe(...)
                self.mutated.add(base_attr)
                return
            if isinstance(base, ast.Name) and base.id in self.process_names:
                self.mutated.add("process.%s()" % func.attr)
        elif isinstance(func, ast.Subscript):
            # gauss_fns[core](mu, sigma): a draw through a hoisted
            # bound-method table advances that RNG's state.
            attr = self._attr_of(func.value)
            if attr is not None:
                self.mutated.add(attr)
        elif isinstance(func, ast.Name):
            attr = self.element_of.get(func.id)
            if attr is not None:
                # for listener in self._completion_listeners: listener()
                self.mutated.add(attr)

    def collect_mutations(self) -> None:
        for node in ast.walk(self.func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._record_store(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._record_store(node.target)
            elif isinstance(node, ast.Call):
                self._record_call(node)


def extract_hot_state(module: SourceModule) -> Optional[Set[str]]:
    """Mutation set of the machine class's hot path, or None.

    Returns None when the module has no ``class Machine`` with a
    ``tick`` method (the caller reports that as drift when it expected
    the scalar reference).  Calls of ``self.<method>()`` where the
    method is defined on the class are followed recursively, so helper
    methods reached from the hot entry points (``_occupancy_weights``,
    ``settle_cache``) contribute their mutations too.
    """
    machine = next(
        (node for node in module.tree.body
         if isinstance(node, ast.ClassDef) and node.name == MACHINE_CLASS),
        None,
    )
    if machine is None:
        return None
    methods = {
        stmt.name: stmt for stmt in machine.body
        if isinstance(stmt, ast.FunctionDef)
    }
    if "tick" not in methods:
        return None
    mutated: Set[str] = set()
    worklist = [name for name in HOT_METHODS if name in methods]
    done: Set[str] = set()
    while worklist:
        name = worklist.pop()
        if name in done:
            continue
        done.add(name)
        self_calls: Set[str] = set()
        extraction = _MethodExtraction(methods[name], mutated, self_calls)
        extraction.collect_aliases()
        extraction.collect_bindings()
        extraction.collect_mutations()
        for called in self_calls:
            if called in methods:
                worklist.append(called)
            else:
                mutated.add("%s()" % called)
    return mutated


# ---------------------------------------------------------------------------
# Registry parsing (from analyzed ASTs, with live-package fallback)
# ---------------------------------------------------------------------------


def _module_assign(module: SourceModule, name: str) -> Optional[ast.Assign]:
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
    return None


def _string_constants(node: ast.AST) -> Set[str]:
    """String constants inside a set/frozenset/tuple/list literal."""
    values: Set[str] = set()
    if isinstance(node, ast.Call) and call_name(node) in ("frozenset",
                                                          "set"):
        for arg in node.args:
            values |= _string_constants(arg)
        return values
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                    element.value, str):
                values.add(element.value)
    return values


def parse_registry_keys(module: SourceModule,
                        name: str) -> Optional[Set[str]]:
    """Keys of a module-level ``NAME = {...}`` dict literal, or None."""
    stmt = _module_assign(module, name)
    if stmt is None or not isinstance(stmt.value, ast.Dict):
        return None
    keys: Set[str] = set()
    for key in stmt.value.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
    return keys


def parse_scalar_only(module: SourceModule) -> Set[str]:
    """The machine module's ``SCALAR_ONLY_STATE`` allowlist (may be empty)."""
    stmt = _module_assign(module, SCALAR_ONLY_NAME)
    if stmt is None:
        return set()
    return _string_constants(stmt.value)


def _live_registry_keys(module_name: str, attr: str) -> Optional[Set[str]]:
    """Registry keys from the live package (``--changed`` runs)."""
    try:
        import importlib

        live = importlib.import_module(module_name)
        return set(getattr(live, attr))
    except Exception:
        return None


# ---------------------------------------------------------------------------
# COV001 / COV002: machine hot state vs backend registries
# ---------------------------------------------------------------------------


def _find(modules: Sequence[SourceModule],
          suffix: str) -> Optional[SourceModule]:
    return next((m for m in modules if m.path_matches(suffix)), None)


class _BackendCoverageRule(ProjectRule):
    """Shared cross-check of the scalar extraction vs one registry."""

    registry_suffix = ""       # analyzed module carrying the registry
    registry_module = ""       # live module fallback
    registry_name = ""         # dict name
    backend_label = ""         # human name for messages

    def _registry_finding(self, module: SourceModule,
                          message: str) -> Finding:
        return Finding(
            rule=self.id, severity=self.severity,
            path=str(module.path), line=1, col=0, message=message,
        )

    def coverage_findings(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        machine = _find(modules, MACHINE_MODULE_SUFFIX)
        if machine is None:
            return
        registry_mod = _find(modules, self.registry_suffix)
        if registry_mod is not None:
            registry = parse_registry_keys(registry_mod,
                                           self.registry_name)
            anchor = registry_mod
        else:
            registry = _live_registry_keys(self.registry_module,
                                           self.registry_name)
            anchor = machine
        if registry is None:
            yield self._registry_finding(
                anchor,
                "cannot resolve the %s mirrored-state registry %s.%s "
                "(neither a module-level dict literal in the analyzed "
                "tree nor a live import)"
                % (self.backend_label, self.registry_module,
                   self.registry_name),
            )
            return
        extracted = extract_hot_state(machine)
        if extracted is None:
            yield self._registry_finding(
                machine,
                "machine module defines no `class Machine` with a "
                "`tick` method; the scalar reference hot path is the "
                "anchor of the backend state-coverage audit",
            )
            return
        scalar_only = parse_scalar_only(machine)
        for name in sorted(extracted - registry - scalar_only):
            yield self._registry_finding(
                machine,
                "hot-state mutation %r in the scalar kernel has no "
                "entry in %s (%s) and is not allowlisted in %s; the %s "
                "backend would silently drop it — mirror it or "
                "allowlist it explicitly"
                % (name, self.registry_name, self.registry_module,
                   SCALAR_ONLY_NAME, self.backend_label),
            )
        for name in sorted(registry - extracted):
            yield self._registry_finding(
                anchor,
                "registry entry %r in %s has no counterpart mutation "
                "in the scalar hot path; remove the stale row (or the "
                "scalar kernel lost a mutation it must perform)"
                % (name, self.registry_name),
            )
        for name in sorted(scalar_only & registry):
            yield self._registry_finding(
                machine,
                "%r is declared scalar-only in %s but also appears in "
                "%s; it cannot be both" % (name, SCALAR_ONLY_NAME,
                                           self.registry_name),
            )
        for name in sorted(scalar_only - extracted):
            yield self._registry_finding(
                machine,
                "allowlist entry %r in %s matches no mutation in the "
                "scalar hot path; remove the stale row"
                % (name, SCALAR_ONLY_NAME),
            )


@register
class VectorColumnCoverage(_BackendCoverageRule):
    """COV001: vector CELL_COLUMNS mirrors every scalar hot mutation."""

    id = "COV001"
    severity = "error"
    description = (
        "a hot-state attribute mutated by the scalar Machine.tick is "
        "missing from the vector backend's CELL_COLUMNS registry (or a "
        "registry/allowlist row went stale): the fused cell path would "
        "silently drop the mutation"
    )
    registry_suffix = VECTOR_MODULE_SUFFIX
    registry_module = "repro.sim.vector"
    registry_name = "CELL_COLUMNS"
    backend_label = "multi-cell vector"

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        yield from self.coverage_findings(modules)


@register
class KernelStateCoverage(_BackendCoverageRule):
    """COV002: span-kernel KERNEL_STATE + template shape arity."""

    id = "COV002"
    severity = "error"
    description = (
        "a hot-state attribute mutated by the scalar Machine.tick is "
        "missing from the span-kernel KERNEL_STATE registry, or a "
        "template_shapes() entry does not match the declared "
        "SHAPE_FIELDS/CELL_SHAPE_FIELDS arity"
    )
    registry_suffix = SPANPLAN_MODULE_SUFFIX
    registry_module = "repro.sim.spanplan"
    registry_name = "KERNEL_STATE"
    backend_label = "span-compiled"

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        yield from self.coverage_findings(modules)
        spanplan = _find(modules, SPANPLAN_MODULE_SUFFIX)
        if spanplan is None:
            return
        try:
            from repro.sim.spanplan import (
                CELL_SHAPE_FIELDS,
                SHAPE_FIELDS,
                template_shapes,
            )
        except ImportError as exc:
            yield self._registry_finding(
                spanplan,
                "cannot import the shape-field registries: %s" % exc,
            )
            return
        for shape in template_shapes():
            if shape and shape[0] == "cell":
                fields, label = CELL_SHAPE_FIELDS, "CELL_SHAPE_FIELDS"
            else:
                fields, label = SHAPE_FIELDS, "SHAPE_FIELDS"
            if len(shape) != len(fields):
                yield self._registry_finding(
                    spanplan,
                    "template shape %r has %d fields but %s declares "
                    "%d (%s); extend the registry (and the kernel "
                    "audit) when adding a shape axis"
                    % (shape, len(shape), label, len(fields),
                       ", ".join(fields)),
                )


# ---------------------------------------------------------------------------
# COV003: harness cache-key field registry vs call sites
# ---------------------------------------------------------------------------


def _enclosing_function(module: SourceModule,
                        node: ast.AST) -> Optional[ast.AST]:
    parents = module.parents
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def _tuple_symbols(tuple_node: ast.AST) -> Set[str]:
    """Identifiers inside a cache-key tuple (ENV003's convention).

    A direct ``resolve_backend()`` call and a ``backend`` local are the
    same value by construction, so both map to the ``backend`` symbol.
    """
    symbols: Set[str] = set()
    for node in ast.walk(tuple_node):
        if isinstance(node, ast.Name):
            symbols.add(node.id)
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name:
                symbols.add(name.split(".")[-1])
    if "resolve_backend" in symbols:
        symbols.add("backend")
    return symbols


def _parse_key_fields(
    module: SourceModule,
) -> Optional[Dict[str, Sequence[str]]]:
    stmt = _module_assign(module, "CACHE_KEY_FIELDS")
    if stmt is None or not isinstance(stmt.value, ast.Dict):
        return None
    fields: Dict[str, Sequence[str]] = {}
    for key, value in zip(stmt.value.keys, stmt.value.values):
        if not (isinstance(key, ast.Constant)
                and isinstance(key.value, str)):
            continue
        fields[key.value] = sorted(_string_constants(value))
    return fields


@register
class CacheKeyFieldCoverage(ProjectRule):
    """COV003: disk-cache namespaces and key fields match the registry."""

    id = "COV003"
    severity = "error"
    description = (
        "a disk-cache get/put in the experiment harness uses an "
        "undeclared namespace, omits a declared key field, or the "
        "CACHE_KEY_FIELDS registry declares a namespace no call site "
        "uses"
    )

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        harness = _find(modules, HARNESS_MODULE_SUFFIX)
        if harness is None:
            return
        declared = _parse_key_fields(harness)
        if declared is None:
            yield Finding(
                rule=self.id, severity=self.severity,
                path=str(harness.path), line=1, col=0,
                message=(
                    "harness declares no module-level CACHE_KEY_FIELDS "
                    "dict; every disk-cache namespace must declare the "
                    "identifiers its key tuples fold in"
                ),
            )
            return
        registry_line = _module_assign(harness, "CACHE_KEY_FIELDS").lineno
        used: Set[str] = set()
        for node in ast.walk(harness.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in ("get", "put")
                    and isinstance(func.value, ast.Name)
                    and func.value.id in DISK_RECEIVERS):
                continue
            if len(node.args) < 2:
                continue
            namespace_arg = node.args[0]
            if not (isinstance(namespace_arg, ast.Constant)
                    and isinstance(namespace_arg.value, str)):
                continue
            namespace = namespace_arg.value
            used.add(namespace)
            if namespace not in declared:
                yield Finding(
                    rule=self.id, severity=self.severity,
                    path=str(harness.path), line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "disk-cache namespace %r is not declared in "
                        "CACHE_KEY_FIELDS; declare its required key "
                        "fields" % namespace
                    ),
                )
                continue
            key_tuple = self._resolve_key(harness, node)
            if key_tuple is None:
                yield Finding(
                    rule=self.id, severity=self.severity,
                    path=str(harness.path), line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "cannot resolve the key tuple of this %r "
                        "disk-cache call to a tuple literal; use an "
                        "inline tuple or a same-function `key = (...)` "
                        "assignment so the audit can see its fields"
                        % namespace
                    ),
                )
                continue
            missing = [
                symbol for symbol in declared[namespace]
                if symbol not in _tuple_symbols(key_tuple)
            ]
            if missing:
                yield Finding(
                    rule=self.id, severity=self.severity,
                    path=str(harness.path), line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "key tuple of this %r disk-cache call omits "
                        "declared field(s) %s; cached results could be "
                        "served across differing values"
                        % (namespace, ", ".join(sorted(missing)))
                    ),
                )
        for namespace in sorted(set(declared) - used):
            yield Finding(
                rule=self.id, severity=self.severity,
                path=str(harness.path), line=registry_line, col=0,
                message=(
                    "CACHE_KEY_FIELDS declares namespace %r but no "
                    "disk-cache call site uses it; remove the stale "
                    "row" % namespace
                ),
            )

    def _resolve_key(self, module: SourceModule,
                     call: ast.Call) -> Optional[ast.AST]:
        key_expr = call.args[1]
        if isinstance(key_expr, ast.Tuple):
            return key_expr
        if not isinstance(key_expr, ast.Name):
            return None
        scope = _enclosing_function(module, call)
        if scope is None:
            return None
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Name)
                        and target.id == key_expr.id
                        and isinstance(node.value, ast.Tuple)):
                    return node.value
        return None
