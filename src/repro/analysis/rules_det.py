"""DET rules: determinism of simulation results.

Every result this repository produces must be a pure function of
``(machine config, workload, run parameters, seed, code version)`` —
the disk cache, the parallel sweep engine, and the scalar/batch/
span-compiled equivalence suites all assume it.  These rules reject the
code patterns that silently break that purity:

* ``DET001`` — wall-clock or entropy read at import time.  A module
  constant initialized from ``time.time()`` / ``random.random()``
  changes between processes, so sweep workers and the parent disagree.
* ``DET002`` — use of the process-global RNG (``random.random()`` and
  friends) or an unseeded ``random.Random()``.  All simulator
  randomness must flow from seeded per-stream generators
  (:func:`repro.sim.timebase.derive_rng`), or parallel == serial breaks.
* ``DET003`` — iteration directly over a set in ``sim/`` hot paths.
  Set order depends on insertion history and string-hash randomization,
  so float accumulation over a set reorders across runs; iterate a
  sorted or list-backed view instead.
* ``DET004`` — ``sum()``/``math.fsum()`` over a set expression.  Float
  addition is not associative; an unordered reduction feeding counters
  or energy totals is unreproducible.  (Flagged everywhere, not just
  ``sim/`` — sums of measured floats appear in metrics and figures
  too.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    call_name,
    is_set_expression,
    register,
)

#: Call targets that read a wall clock or entropy source.
NONDETERMINISTIC_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
})

#: Methods of the module-level shared RNG in :mod:`random`.
GLOBAL_RNG_CALLS = frozenset({
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.lognormvariate",
    "random.expovariate",
    "random.betavariate",
    "random.gammavariate",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.seed",
})


@register
class ImportTimeNondeterminism(Rule):
    """DET001: no wall-clock/entropy reads while a module imports."""

    id = "DET001"
    severity = "error"
    description = (
        "module-import-time call to a wall clock or entropy source "
        "(time.time, datetime.now, random.random, ...): the value is "
        "frozen per process, so sweep workers and tests diverge"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        import_time = module.import_time_nodes
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node not in import_time:
                continue
            name = call_name(node)
            if name in NONDETERMINISTIC_CALLS or name in GLOBAL_RNG_CALLS:
                yield self.finding(
                    module, node,
                    "%s() called at import time; module state must not "
                    "depend on when or where the import happened" % name,
                )


@register
class SharedOrUnseededRng(Rule):
    """DET002: no process-global or unseeded RNG anywhere."""

    id = "DET002"
    severity = "error"
    description = (
        "process-global random.* call or unseeded random.Random(): "
        "simulator randomness must come from seeded per-stream "
        "generators (repro.sim.timebase.derive_rng)"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in GLOBAL_RNG_CALLS:
                yield self.finding(
                    module, node,
                    "%s() uses the process-global RNG; derive a seeded "
                    "stream instead (repro.sim.timebase.derive_rng)" % name,
                )
            elif name in ("random.Random", "Random") and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    module, node,
                    "unseeded random.Random() seeds from OS entropy; pass "
                    "an explicit seed so runs reproduce",
                )


@register
class SetIterationInHotPath(Rule):
    """DET003: no direct set iteration in ``sim/`` hot paths."""

    id = "DET003"
    severity = "error"
    description = (
        "iteration directly over a set in sim/ (for-loop or "
        "comprehension): unordered iteration feeding float math "
        "reorders accumulation between runs; sort first"
    )

    #: Only the simulator's hot paths are gated; elsewhere set iteration
    #: is usually feeding order-insensitive logic.
    scope = "sim/"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_scope(self.scope):
            return
        for node in ast.walk(module.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if is_set_expression(it):
                    yield self.finding(
                        module, it,
                        "iterating an unordered set in a sim/ hot path; "
                        "wrap in sorted() to pin accumulation order",
                    )


@register
class SumOverSet(Rule):
    """DET004: no float reduction over an unordered set."""

    id = "DET004"
    severity = "error"
    description = (
        "sum()/math.fsum() over a set expression: float addition is "
        "order-sensitive and set order is not reproducible"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if call_name(node) not in ("sum", "math.fsum", "fsum"):
                continue
            arg = node.args[0]
            targets = [arg]
            if isinstance(arg, ast.GeneratorExp):
                targets.extend(gen.iter for gen in arg.generators)
            for target in targets:
                if is_set_expression(target):
                    yield self.finding(
                        module, node,
                        "reduction over an unordered set; sort the "
                        "elements before accumulating floats",
                    )
                    break
