"""Finding reporters for ``repro lint``.

Three formats:

* **text** — one ``path:line:col: SEVERITY RULE message`` row per
  finding plus a summary line; for humans and CI logs.
* **json** — a stable machine-readable document (``version`` field,
  findings as objects, severity tallies, per-rule timing/suppression
  stats, cache and baseline accounting); for the CI gate and editor
  integrations.  Consumers should key on ``summary.errors`` for the
  pass/fail decision, mirroring the CLI's exit code.
* **sarif** — a SARIF 2.1.0 log (one run, the analyzer as the tool
  driver, every rule as tool metadata); for code-scanning UIs and the
  CI artifact upload.

JSON document history: version 1 had ``findings`` + ``summary``
(findings/errors/warnings/checked_files); version 2 adds
``summary.suppressed``, baseline accounting (``summary.baselined``,
``summary.stale_baseline_entries`` when a baseline is active), the
per-rule ``rule_stats`` map, and the ``cache`` block when the
incremental cache is enabled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.core import Finding, Rule, iter_rule_info

#: Format names accepted by ``repro lint --format``.
FORMATS = ("text", "json", "sarif")

#: Schema version of the JSON report document.
JSON_VERSION = 2

#: SARIF log format pinning.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    """Severity tallies for a finding list."""
    errors = sum(1 for f in findings if f.severity == "error")
    return {
        "findings": len(findings),
        "errors": errors,
        "warnings": len(findings) - errors,
    }


def render_text(findings: Sequence[Finding],
                checked_files: Optional[int] = None,
                suppressed: Optional[int] = None,
                baselined: Optional[int] = None) -> str:
    """Human-readable report, one row per finding plus a summary."""
    lines: List[str] = []
    for finding in findings:
        lines.append("%s: %s %s %s" % (
            finding.location(), finding.severity, finding.rule,
            finding.message,
        ))
    summary = summarize(findings)
    checked = "" if checked_files is None else (
        " in %d files" % checked_files
    )
    extras = []
    if suppressed:
        extras.append("%d suppressed" % suppressed)
    if baselined:
        extras.append("%d baselined" % baselined)
    extra = " (%s)" % ", ".join(extras) if extras else ""
    if summary["findings"]:
        lines.append("%d finding(s)%s: %d error(s), %d warning(s)%s" % (
            summary["findings"], checked, summary["errors"],
            summary["warnings"], extra,
        ))
    else:
        lines.append("no findings%s%s" % (checked, extra))
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                checked_files: Optional[int] = None,
                suppressed: Optional[int] = None,
                rule_stats: Optional[Dict[str, object]] = None,
                cache_stats: Optional[Dict[str, object]] = None,
                baselined: Optional[int] = None,
                stale_baseline: Optional[int] = None) -> str:
    """Machine-readable report (sorted keys, trailing-newline-free)."""
    document: Dict[str, object] = {
        "version": JSON_VERSION,
        "findings": [finding.as_dict() for finding in findings],
        "summary": summarize(findings),
    }
    summary = document["summary"]
    if checked_files is not None:
        summary["checked_files"] = checked_files
    if suppressed is not None:
        summary["suppressed"] = suppressed
    if baselined is not None:
        summary["baselined"] = baselined
    if stale_baseline is not None:
        summary["stale_baseline_entries"] = stale_baseline
    if rule_stats is not None:
        document["rule_stats"] = rule_stats
    if cache_stats is not None:
        document["cache"] = cache_stats
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_uri(path: str, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return Path(path).resolve().relative_to(
                root.resolve()).as_posix()
        except ValueError:
            pass
    return Path(path).as_posix()


def render_sarif(findings: Sequence[Finding],
                 rules: Optional[Iterable[Rule]] = None,
                 root: Optional[Path] = None) -> str:
    """SARIF 2.1.0 log: one run, the analyzer as the tool driver.

    Paths are relativized to ``root`` (the analysis root) so the log is
    portable across checkouts; severities map 1:1 onto SARIF levels.
    """
    rule_rows = list(iter_rule_info(rules)) if rules is not None else []
    driver: Dict[str, object] = {
        "name": "repro-lint",
        "rules": [
            {
                "id": row["id"],
                "shortDescription": {"text": row["description"]},
                "defaultConfiguration": {"level": row["severity"]},
                "properties": {"kind": row["kind"]},
            }
            for row in rule_rows
        ],
    }
    results = [
        {
            "ruleId": finding.rule,
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(finding.path, root),
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    },
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render(findings: Sequence[Finding], fmt: str,
           checked_files: Optional[int] = None,
           suppressed: Optional[int] = None,
           rule_stats: Optional[Dict[str, object]] = None,
           cache_stats: Optional[Dict[str, object]] = None,
           baselined: Optional[int] = None,
           stale_baseline: Optional[int] = None,
           rules: Optional[Iterable[Rule]] = None,
           root: Optional[Path] = None) -> str:
    """Dispatch on ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "json":
        return render_json(findings, checked_files,
                           suppressed=suppressed, rule_stats=rule_stats,
                           cache_stats=cache_stats, baselined=baselined,
                           stale_baseline=stale_baseline)
    if fmt == "text":
        return render_text(findings, checked_files,
                           suppressed=suppressed, baselined=baselined)
    if fmt == "sarif":
        return render_sarif(findings, rules=rules, root=root)
    raise ValueError("unknown format %r (expected one of %s)"
                     % (fmt, ", ".join(FORMATS)))


def render_rule_list(rules: Iterable[Rule], fmt: str) -> str:
    """``--list-rules`` output in either format.

    Project rules (whole-set cross-checks like the COV family) are
    marked: a ``kind`` column in text, a ``kind`` field in JSON.
    """
    rows = list(iter_rule_info(rules))
    if fmt == "json":
        return json.dumps({"version": JSON_VERSION, "rules": rows},
                          indent=2, sort_keys=True)
    lines = ["%-8s %-8s %-8s %s" % (row["id"], row["severity"],
                                    row["kind"], row["description"])
             for row in rows]
    return "\n".join(lines)
