"""Finding reporters for ``repro lint``.

Two formats:

* **text** — one ``path:line:col: SEVERITY RULE message`` row per
  finding plus a summary line; for humans and CI logs.
* **json** — a stable machine-readable document (``version`` field,
  findings as objects, severity tallies); for the CI gate and editor
  integrations.  Consumers should key on ``summary.errors`` for the
  pass/fail decision, mirroring the CLI's exit code.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.core import Finding, Rule, iter_rule_info

#: Format names accepted by ``repro lint --format``.
FORMATS = ("text", "json")

#: Schema version of the JSON report document.
JSON_VERSION = 1


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    """Severity tallies for a finding list."""
    errors = sum(1 for f in findings if f.severity == "error")
    return {
        "findings": len(findings),
        "errors": errors,
        "warnings": len(findings) - errors,
    }


def render_text(findings: Sequence[Finding],
                checked_files: Optional[int] = None) -> str:
    """Human-readable report, one row per finding plus a summary."""
    lines: List[str] = []
    for finding in findings:
        lines.append("%s: %s %s %s" % (
            finding.location(), finding.severity, finding.rule,
            finding.message,
        ))
    summary = summarize(findings)
    checked = "" if checked_files is None else (
        " in %d files" % checked_files
    )
    if summary["findings"]:
        lines.append("%d finding(s)%s: %d error(s), %d warning(s)" % (
            summary["findings"], checked, summary["errors"],
            summary["warnings"],
        ))
    else:
        lines.append("no findings%s" % checked)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                checked_files: Optional[int] = None) -> str:
    """Machine-readable report (sorted keys, trailing-newline-free)."""
    document = {
        "version": JSON_VERSION,
        "findings": [finding.as_dict() for finding in findings],
        "summary": summarize(findings),
    }
    if checked_files is not None:
        document["summary"]["checked_files"] = checked_files
    return json.dumps(document, indent=2, sort_keys=True)


def render(findings: Sequence[Finding], fmt: str,
           checked_files: Optional[int] = None) -> str:
    """Dispatch on ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "json":
        return render_json(findings, checked_files)
    if fmt == "text":
        return render_text(findings, checked_files)
    raise ValueError("unknown format %r (expected one of %s)"
                     % (fmt, ", ".join(FORMATS)))


def render_rule_list(rules: Iterable[Rule], fmt: str) -> str:
    """``--list-rules`` output in either format."""
    rows = list(iter_rule_info(rules))
    if fmt == "json":
        return json.dumps({"version": JSON_VERSION, "rules": rows},
                          indent=2, sort_keys=True)
    lines = ["%-8s %-8s %s" % (row["id"], row["severity"],
                               row["description"]) for row in rows]
    return "\n".join(lines)
