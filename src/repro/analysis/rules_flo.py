"""FLO rules: determinism dataflow over RNG instances and seeds.

The DET family polices *call sites* — no wall-clock reads, no
process-global ``random.*`` draws, no unseeded constructors.  That is
flow-blind: ``random.Random(int(time.time()))`` passes DET002 (it has
a seed argument) yet every run replays differently, and two fault
surfaces sharing one module-level ``random.Random(7)`` pass too while
silently coupling their draw sequences.

The FLO family adds the dataflow half.  A lightweight intra-procedural
reaching-definitions pass (union over assignments, flow-insensitive,
nested scopes excluded) answers the question "where does this seed
come from?":

* ``FLO001`` — every RNG seed must flow from configuration: literals,
  parameters, attributes (``self.config.seed``) and unknown names are
  clean; any value reaching the seed through a nondeterministic call
  (wall clock, global RNG draws, ``id()``) taints the construction.
* ``FLO002`` — no RNG instance shared across cells or fault surfaces:
  an RNG constructed at import time (module body, class body, or a
  default argument) is one stream shared by every consumer in the
  process, and two all-constant constructions with identical arguments
  in different function scopes are the same stream in disguise.
* ``FLO003`` — no re-seeding or re-construction inside an explicit
  ``for``/``while`` loop in simulator code: per-iteration reseeding
  collapses the stream and couples draws across iterations.
  Comprehensions are exempt on purpose — the sanctioned per-core
  pattern hoists one derived RNG per lane at init time
  (``[derive_rng(seed, "jitter-core-%d" % c) for c in cores]``).

Taint sources reuse the DET family's ``NONDETERMINISTIC_CALLS`` and
``GLOBAL_RNG_CALLS`` tables so the two families cannot drift apart.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Rule, SourceModule, call_name, register
from repro.analysis.rules_det import GLOBAL_RNG_CALLS, NONDETERMINISTIC_CALLS

#: Calls that construct a deterministic RNG stream.
RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "Random",
    "derive_rng",
    "timebase.derive_rng",
})

#: Additional taint sources beyond the DET tables: values that vary
#: across processes even when every call is "deterministic".
IDENTITY_CALLS = frozenset({"id", "hash"})


def _is_taint_call(name: Optional[str]) -> bool:
    if name is None:
        return False
    return (name in NONDETERMINISTIC_CALLS
            or name in GLOBAL_RNG_CALLS
            or name in IDENTITY_CALLS)


def _enclosing_scope(module: SourceModule, node: ast.AST) -> ast.AST:
    """Nearest enclosing function, else the module itself."""
    current = module.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = module.parents.get(current)
    return module.tree


def _assigned_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_assigned_names(element))
    return names


def _scope_assignments(scope: ast.AST) -> Dict[str, List[ast.AST]]:
    """Name -> assigned value expressions, within one scope only.

    Flow-insensitive union over every assignment; nested function and
    class bodies are separate scopes and are skipped.
    """
    env: Dict[str, List[ast.AST]] = {}
    stack: List[ast.AST] = list(getattr(scope, "body", []))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name in _assigned_names(target):
                    env.setdefault(name, []).append(stmt.value)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None:
                for name in _assigned_names(stmt.target):
                    env.setdefault(name, []).append(stmt.value)
        for attr in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, attr, []))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(handler.body)
    return env


def _taint_source(expr: ast.AST, env: Dict[str, List[ast.AST]],
                  visited: Set[str]) -> Optional[str]:
    """Name of the nondeterministic call a value derives from, or None.

    Parameters, attributes, literals, and names with no assignment in
    the scope are clean — the point is provenance *within* the scope;
    cross-function flow is the caller's FLO001 problem at its own
    construction sites.
    """
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if _is_taint_call(name):
                return name
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in visited:
                continue
            visited.add(node.id)
            for value in env.get(node.id, []):
                source = _taint_source(value, env, visited)
                if source is not None:
                    return source
    return None


def _seed_exprs(node: ast.Call) -> List[ast.AST]:
    """Argument expressions that act as the seed of a construction."""
    exprs: List[ast.AST] = list(node.args)
    exprs.extend(kw.value for kw in node.keywords if kw.value is not None)
    return exprs


def _is_reseed_call(node: ast.Call) -> bool:
    """True for ``<rng>.seed(...)`` method calls (not ``random.seed``)."""
    func = node.func
    return (isinstance(func, ast.Attribute)
            and func.attr == "seed"
            and bool(node.args)
            and call_name(node) not in GLOBAL_RNG_CALLS)


@register
class SeedProvenance(Rule):
    """FLO001: every RNG seed must flow from configuration."""

    id = "FLO001"
    severity = "error"
    description = (
        "an RNG seed derives from a nondeterministic source (wall "
        "clock, global RNG draw, id()/hash()); seeds must flow from "
        "config/plan arguments so runs replay deterministically"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        env_by_scope: Dict[ast.AST, Dict[str, List[ast.AST]]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in RNG_CONSTRUCTORS and node.args:
                seed_exprs = _seed_exprs(node)
            elif _is_reseed_call(node):
                seed_exprs = list(node.args)
            else:
                continue
            scope = _enclosing_scope(module, node)
            env = env_by_scope.get(scope)
            if env is None:
                env = _scope_assignments(scope)
                env_by_scope[scope] = env
            for expr in seed_exprs:
                source = _taint_source(expr, env, set())
                if source is not None:
                    yield self.finding(
                        module, node,
                        "RNG seed derives from %s(); a seed must flow "
                        "from config/plan arguments (e.g. "
                        "derive_rng(config.seed, stream)) or the run "
                        "cannot be replayed" % source,
                    )
                    break


@register
class SharedRngInstance(Rule):
    """FLO002: no RNG instance shared across cells or fault surfaces."""

    id = "FLO002"
    severity = "error"
    description = (
        "an RNG is constructed at import time (shared by every "
        "consumer in the process) or two function scopes construct "
        "the identical constant-seeded stream; each cell/fault "
        "surface needs its own derived stream"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        import_time = module.import_time_nodes
        constant_sites: Dict[Tuple[str, Tuple[object, ...]],
                             List[Tuple[ast.AST, ast.Call]]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in RNG_CONSTRUCTORS:
                continue
            if node in import_time:
                yield self.finding(
                    module, node,
                    "RNG constructed at import time is one stream "
                    "shared by every cell and fault surface in the "
                    "process; construct per-run from a derived seed "
                    "instead",
                )
                continue
            constants = self._constant_args(node)
            if constants is None:
                continue
            scope = _enclosing_scope(module, node)
            key = (name.split(".")[-1], constants)
            constant_sites.setdefault(key, []).append((scope, node))
        for (short_name, constants), sites in sorted(
                constant_sites.items(),
                key=lambda item: item[1][0][1].lineno):
            scopes = {scope for scope, _ in sites}
            if len(scopes) < 2:
                continue
            ordered = sorted(sites, key=lambda item: item[1].lineno)
            first_line = ordered[0][1].lineno
            for _, node in ordered[1:]:
                yield self.finding(
                    module, node,
                    "%s(%s) duplicates the constant-seeded stream "
                    "constructed at line %d in another scope; two "
                    "surfaces drawing from identical streams are "
                    "correlated — derive distinct streams per surface"
                    % (short_name,
                       ", ".join(repr(value) for value in constants),
                       first_line),
                )

    @staticmethod
    def _constant_args(node: ast.Call) -> Optional[Tuple[object, ...]]:
        values: List[object] = []
        for expr in _seed_exprs(node):
            if not isinstance(expr, ast.Constant):
                return None
            values.append(expr.value)
        if not values:
            return None
        return tuple(values)


@register
class ReseedInLoop(Rule):
    """FLO003: no RNG reseeding/construction inside simulator loops."""

    id = "FLO003"
    severity = "error"
    description = (
        "an RNG is re-seeded or re-constructed inside an explicit "
        "for/while loop in simulator code; per-iteration reseeding "
        "collapses the stream and couples draws across iterations — "
        "hoist the construction out of the loop"
    )
    scope = "sim/"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_scope(self.scope):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not (name in RNG_CONSTRUCTORS or _is_reseed_call(node)):
                continue
            loop = self._enclosing_loop(module, node)
            if loop is None:
                continue
            what = ("re-seeded" if _is_reseed_call(node)
                    else "constructed")
            yield self.finding(
                module, node,
                "RNG %s inside a %s loop; hoist it out (one derived "
                "stream per lane, e.g. a per-core comprehension at "
                "init time) so iterations draw from a single advancing "
                "stream" % (what,
                            "while" if isinstance(loop, ast.While)
                            else "for"),
            )

    @staticmethod
    def _enclosing_loop(module: SourceModule,
                        node: ast.AST) -> Optional[ast.AST]:
        current = module.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.For, ast.AsyncFor, ast.While)):
                return current
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                return None
            current = module.parents.get(current)
        return None
