"""Static determinism & hot-path invariant analyzer (``repro lint``).

AST-based lint engine specialized to this repository's correctness
contract.  Four rule families:

* **DET** — determinism: no wall-clock/entropy at import time, no
  process-global or unseeded RNG, no unordered-set iteration or
  reductions feeding float accumulation (:mod:`.rules_det`).
* **ENV** — environment hygiene: every knob read through the typed
  accessors in :mod:`repro.sim.config`, never at import time, and
  cache-relevant knobs folded into disk-cache keys (:mod:`.rules_env`).
* **PAR** — share-nothing sweep workers: pool-submitted callables
  importable at top level and free of module-state mutation
  (:mod:`.rules_par`).
* **GEN** — codegen audit: the span-kernel generator's exec hygiene and
  the generated kernels' call/attribute/global discipline
  (:mod:`.rules_gen`).

Run it with ``repro lint`` (see :mod:`.cli`), extend it by subclassing
:class:`~repro.analysis.core.Rule` with the
:func:`~repro.analysis.core.register` decorator — see
``docs/static-analysis.md``.
"""

from repro.analysis.core import (
    Finding,
    ProjectRule,
    REGISTRY,
    Rule,
    SourceModule,
    analyze_paths,
    default_rules,
    register,
)
from repro.analysis.cli import run_lint

__all__ = [
    "Finding",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "SourceModule",
    "analyze_paths",
    "default_rules",
    "register",
    "run_lint",
]
