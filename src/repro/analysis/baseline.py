"""Findings baseline for ``repro lint``.

A baseline freezes the analyzer's current findings so a new rule (or a
stricter one) can land and gate *new* violations immediately while the
pre-existing ones are burned down incrementally.  The workflow:

* ``repro lint --update-baseline`` writes every current finding to
  ``.repro-lint-baseline.json`` (committed to the repository).
* ``repro lint --baseline`` filters findings that match a baseline
  entry before gating; the JSON summary reports how many were
  baselined and how many baseline entries went stale (fixed findings
  whose rows should be deleted).

Entries are matched by a ``(rule, path, message)`` fingerprint with the
path relativized to the analysis root — line numbers are deliberately
excluded so unrelated edits above a baselined finding do not un-baseline
it.  Multiplicity is respected: two identical findings need two
baseline rows.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding

#: Default baseline filename, resolved against the current directory.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

#: Schema version of the baseline document.
BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def finding_fingerprint(finding: Finding,
                        root: Optional[Path]) -> Fingerprint:
    """Stable identity of a finding: (rule, root-relative path, message)."""
    return (finding.rule, _relative_path(finding.path, root),
            finding.message)


def _relative_path(path: str, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return Path(path).resolve().relative_to(
                root.resolve()).as_posix()
        except ValueError:
            pass
    return Path(path).as_posix()


def load_baseline(path: Path) -> List[Fingerprint]:
    """Fingerprints stored in a baseline file.

    Raises ``SystemExit`` with a usable message on a missing or
    malformed file — a CI gate must fail loudly, not lint un-baselined.
    """
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(
            "repro lint: baseline file %s does not exist "
            "(create it with --update-baseline)" % path
        )
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(
            "repro lint: cannot read baseline file %s: %s" % (path, exc)
        )
    if (not isinstance(document, dict)
            or document.get("version") != BASELINE_VERSION
            or not isinstance(document.get("findings"), list)):
        raise SystemExit(
            "repro lint: baseline file %s is not a version-%d baseline "
            "document" % (path, BASELINE_VERSION)
        )
    entries: List[Fingerprint] = []
    for row in document["findings"]:
        if not isinstance(row, dict):
            continue
        entries.append((str(row.get("rule", "")),
                        str(row.get("path", "")),
                        str(row.get("message", ""))))
    return entries


def save_baseline(path: Path, findings: Sequence[Finding],
                  root: Optional[Path]) -> None:
    """Write the current findings as the new baseline."""
    rows = [
        {"rule": rule, "path": rel, "message": message}
        for rule, rel, message in sorted(
            finding_fingerprint(f, root) for f in findings
        )
    ]
    document = {"version": BASELINE_VERSION, "findings": rows}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding],
    entries: Sequence[Fingerprint],
    root: Optional[Path],
) -> Tuple[List[Finding], int, List[Fingerprint]]:
    """Split findings into (surviving, baselined count, stale entries).

    Each baseline entry absorbs at most one matching finding; leftover
    entries are *stale* — the finding they froze is fixed and the row
    should be removed (``--update-baseline`` does that).
    """
    budget: Dict[Fingerprint, int] = Counter(entries)
    surviving: List[Finding] = []
    baselined = 0
    for finding in findings:
        fp = finding_fingerprint(finding, root)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            baselined += 1
        else:
            surviving.append(finding)
    stale = sorted(
        fp for fp, remaining in budget.items() for _ in range(remaining)
    )
    return surviving, baselined, stale
