"""Chaos suite: Dirigent QoS under seeded fault-injection scenarios.

Runs the managed (Dirigent) configuration against each chaos scenario of
the catalog (:data:`repro.faults.SCENARIOS`) and reports QoS alongside
the fault and degradation accounting.  Deadlines are always taken from
the *clean* Baseline run — faults must not move the goalposts — and the
machine itself stays fault-free (only the runtime's sensor/actuator view
is corrupted), so success ratios measure how well the control loop copes
with bad inputs, not a different workload.

Chaos runs are never disk-cached: they are cheap at smoke sizes and the
fault surface is exactly what the cache key does not capture.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Tuple

from repro.cluster import Cluster, ClusterNode, ClusterResult
from repro.core.policies import BASELINE, DIRIGENT
from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult
from repro.experiments.harness import (
    RunResult,
    default_executions,
    run_policy,
)
from repro.experiments.mixes import Mix, mix_by_name
from repro.experiments.parallel import run_grid
from repro.experiments.report import sweep_summary
from repro.faults import (
    FLEET_SCENARIO_NAMES,
    SCENARIO_NAMES,
    fleet_scenario,
    scenario,
)

#: Mixes the chaos suite (and the CI smoke job) exercises by default:
#: one cache-sensitive and one compute-bound FG against the streaming
#: BG the paper leans on.
DEFAULT_CHAOS_MIXES: Tuple[str, ...] = ("bodytrack bwaves", "ferret bwaves")


def run_chaos(
    mixes: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    executions: Optional[int] = None,
    warmup: int = 3,
    seed: int = 0,
) -> FigureResult:
    """Run the chaos scenario suite and tabulate QoS plus fault stats.

    Args:
        mixes: Mix names to run (default :data:`DEFAULT_CHAOS_MIXES`).
        scenarios: Scenario names (default: the full catalog, including
            the zero-fault ``"none"`` control row).
        executions: Measured FG executions per run.
        warmup: Executions discarded before measurement.
        seed: Experiment seed; also folded into the fault streams.
    """
    mix_names = tuple(mixes) if mixes else DEFAULT_CHAOS_MIXES
    scenario_names = tuple(scenarios) if scenarios else SCENARIO_NAMES
    # Warm the clean-Baseline deadlines through the (parallel, cached)
    # sweep engine before the serial chaos cells ask for them one by
    # one.  Executions are resolved first so the warm sweep's cache
    # keys match what each chaos cell's `deadlines_for` will look up.
    resolved = (
        executions if executions is not None else default_executions()
    )
    warm_sweep = run_grid(
        [mix_by_name(name) for name in mix_names],
        [BASELINE],
        executions=resolved,
        warmup=warmup,
        seed=seed,
    )
    rows: List[Tuple[object, ...]] = []
    hardened = None
    for mix_name in mix_names:
        mix = mix_by_name(mix_name)
        for name in scenario_names:
            result = run_chaos_cell(
                mix, name, executions=executions, warmup=warmup, seed=seed
            )
            report = result.fault_report
            if report is None:
                raise ExperimentError(
                    "chaos run of %r produced no fault report" % mix_name
                )
            hardened = report.hardening_enabled
            rows.append((
                mix.name,
                name,
                "%.3f" % result.fg_success_ratio,
                "%.4f" % result.fg_stats.mean_s,
                report.total_injected,
                report.samples_dropped,
                report.rejected_samples,
                report.actuations_retried,
                report.actuations_failed,
                report.degraded_entries,
                report.safe_entries,
                "%.1f%%" % (
                    100.0 * report.degraded_fraction(result.elapsed_s)
                ),
            ))
    return FigureResult(
        name="chaos",
        title="FG QoS under fault injection (Dirigent, hardening %s)"
        % ("on" if hardened else "OFF"),
        headers=(
            "Mix", "Scenario", "Success", "MeanS", "Injected", "Drops",
            "Rejected", "Retried", "ActFail", "DegEnter", "SafeEnter",
            "Degraded",
        ),
        rows=tuple(rows),
        notes=(
            "deadlines come from the clean Baseline run; the machine is "
            "fault-free — only the runtime's sensor/actuator view is "
            "corrupted",
            "hardening kill switch: REPRO_DEGRADED_MODE=0",
        ) + tuple(
            "baseline warm-up %s" % line for line in sweep_summary(warm_sweep)
        ),
    )


def run_chaos_cell(
    mix: Mix,
    scenario_name: str,
    executions: Optional[int] = None,
    warmup: int = 3,
    seed: int = 0,
) -> RunResult:
    """One chaos cell: the Dirigent policy on ``mix`` under a scenario."""
    return run_policy(
        mix,
        DIRIGENT,
        executions=executions,
        warmup=warmup,
        seed=seed,
        fault_plan=scenario(scenario_name, seed=seed),
    )


#: Mix the fleet chaos suite runs on every node by default.  The FG has
#: enough headroom under Dirigent that fleet attainment is governed by
#: the control plane (detection + re-placement), not by per-node misses.
DEFAULT_FLEET_MIX = "raytrace rs"

#: Fleet chaos defaults: node count and per-node measured executions.
DEFAULT_FLEET_NODES = 5
DEFAULT_FLEET_EXECUTIONS = 10


def build_fleet(
    num_nodes: int = DEFAULT_FLEET_NODES,
    mix_names: Optional[Sequence[str]] = None,
    executions: int = DEFAULT_FLEET_EXECUTIONS,
    warmup: int = 3,
    seed: int = 0,
) -> List[ClusterNode]:
    """Construct the chaos fleet: Dirigent nodes over round-robin mixes.

    Nodes are named ``n0..n<N-1>`` and seeded ``seed + i`` so every
    node's trajectory is distinct but the fleet as a whole is a pure
    function of ``seed``.
    """
    if num_nodes < 2:
        raise ExperimentError("a fleet needs at least two nodes")
    names = tuple(mix_names) if mix_names else (DEFAULT_FLEET_MIX,)
    return [
        ClusterNode(
            "n%d" % i,
            mix_by_name(names[i % len(names)]),
            DIRIGENT,
            executions=executions,
            seed=seed + i,
            warmup=warmup,
        )
        for i in range(num_nodes)
    ]


def run_fleet_cell(
    scenario_name: str,
    num_nodes: int = DEFAULT_FLEET_NODES,
    mix_names: Optional[Sequence[str]] = None,
    executions: int = DEFAULT_FLEET_EXECUTIONS,
    warmup: int = 3,
    seed: int = 0,
    vectorized: bool = False,
) -> ClusterResult:
    """One fleet chaos cell: a fresh fleet under one node-fault scenario."""
    cluster = Cluster(
        build_fleet(
            num_nodes,
            mix_names=mix_names,
            executions=executions,
            warmup=warmup,
            seed=seed,
        ),
        vectorized=vectorized,
    )
    return cluster.run(fault_plan=fleet_scenario(scenario_name, seed=seed))


def _signature_digest(result: ClusterResult) -> str:
    """Short stable digest of the fleet event signature.

    The digest is a pure function of the (sorted, rounded) event tuple,
    so equal digests across backends certify equal control-plane
    histories without printing the whole stream.
    """
    report = result.fleet_report
    signature = report.event_signature if report else ()
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()[:12]


def _mean_ms(values: Sequence[float]) -> str:
    if not values:
        return "-"
    return "%.0f" % (1000.0 * sum(values) / len(values))


def run_fleet_chaos(
    scenarios: Optional[Sequence[str]] = None,
    num_nodes: int = DEFAULT_FLEET_NODES,
    mixes: Optional[Sequence[str]] = None,
    executions: int = DEFAULT_FLEET_EXECUTIONS,
    warmup: int = 3,
    seed: int = 0,
    vectorized: bool = False,
) -> FigureResult:
    """Run the fleet scenario catalog and tabulate fleet-wide QoS.

    Each row is one scenario over a fresh fleet: fleet-wide FG deadline
    attainment (stranded executions count as missed), failover traffic,
    detection/recovery latencies, and the event-signature digest that
    the cross-backend determinism check compares.

    Baseline deadlines are warmed through the parallel sweep engine
    first, exactly like the single-node suite, so the serial fleet
    cells find them cached.
    """
    scenario_names = (
        tuple(scenarios) if scenarios else FLEET_SCENARIO_NAMES
    )
    mix_names = tuple(mixes) if mixes else (DEFAULT_FLEET_MIX,)
    warm_sweep = run_grid(
        [mix_by_name(name) for name in mix_names],
        [BASELINE],
        executions=executions,
        warmup=warmup,
        seed=seed,
    )
    rows: List[Tuple[object, ...]] = []
    failover_enabled = True
    for name in scenario_names:
        result = run_fleet_cell(
            name,
            num_nodes=num_nodes,
            mix_names=mix_names,
            executions=executions,
            warmup=warmup,
            seed=seed,
            vectorized=vectorized,
        )
        report = result.fleet_report
        if report is None:
            raise ExperimentError(
                "fleet chaos run of %r produced no fleet report" % name
            )
        failover_enabled = report.failover_enabled
        rows.append((
            name,
            num_nodes,
            "%.3f" % result.fg_success_ratio,
            report.total_injected,
            result.failovers,
            result.failover_retries,
            result.stranded_executions,
            _mean_ms(result.time_to_detection_s),
            _mean_ms(result.time_to_recovery_s),
            report.quarantines,
            report.sheds,
            _signature_digest(result),
        ))
    return FigureResult(
        name="fleet-chaos",
        title="Fleet QoS under node-fault scenarios (failover %s)"
        % ("on" if failover_enabled else "OFF"),
        headers=(
            "Scenario", "Nodes", "Attain", "Injected", "Failover",
            "Retries", "Stranded", "TTDms", "TTRms", "Quar", "Shed",
            "Signature",
        ),
        rows=tuple(rows),
        notes=(
            "attainment counts stranded executions as missed; "
            "signature digests are identical across backends",
            "failover kill switch: REPRO_FLEET_FAILOVER=0; heartbeat "
            "knobs: REPRO_FLEET_SUSPECT_S / REPRO_FLEET_DEAD_S",
        ) + tuple(
            "baseline warm-up %s" % line for line in sweep_summary(warm_sweep)
        ),
    )
