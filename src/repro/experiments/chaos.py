"""Chaos suite: Dirigent QoS under seeded fault-injection scenarios.

Runs the managed (Dirigent) configuration against each chaos scenario of
the catalog (:data:`repro.faults.SCENARIOS`) and reports QoS alongside
the fault and degradation accounting.  Deadlines are always taken from
the *clean* Baseline run — faults must not move the goalposts — and the
machine itself stays fault-free (only the runtime's sensor/actuator view
is corrupted), so success ratios measure how well the control loop copes
with bad inputs, not a different workload.

Chaos runs are never disk-cached: they are cheap at smoke sizes and the
fault surface is exactly what the cache key does not capture.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.policies import BASELINE, DIRIGENT
from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult
from repro.experiments.harness import (
    RunResult,
    default_executions,
    run_policy,
)
from repro.experiments.mixes import Mix, mix_by_name
from repro.experiments.parallel import run_grid
from repro.experiments.report import sweep_summary
from repro.faults import SCENARIO_NAMES, scenario

#: Mixes the chaos suite (and the CI smoke job) exercises by default:
#: one cache-sensitive and one compute-bound FG against the streaming
#: BG the paper leans on.
DEFAULT_CHAOS_MIXES: Tuple[str, ...] = ("bodytrack bwaves", "ferret bwaves")


def run_chaos(
    mixes: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    executions: Optional[int] = None,
    warmup: int = 3,
    seed: int = 0,
) -> FigureResult:
    """Run the chaos scenario suite and tabulate QoS plus fault stats.

    Args:
        mixes: Mix names to run (default :data:`DEFAULT_CHAOS_MIXES`).
        scenarios: Scenario names (default: the full catalog, including
            the zero-fault ``"none"`` control row).
        executions: Measured FG executions per run.
        warmup: Executions discarded before measurement.
        seed: Experiment seed; also folded into the fault streams.
    """
    mix_names = tuple(mixes) if mixes else DEFAULT_CHAOS_MIXES
    scenario_names = tuple(scenarios) if scenarios else SCENARIO_NAMES
    # Warm the clean-Baseline deadlines through the (parallel, cached)
    # sweep engine before the serial chaos cells ask for them one by
    # one.  Executions are resolved first so the warm sweep's cache
    # keys match what each chaos cell's `deadlines_for` will look up.
    resolved = (
        executions if executions is not None else default_executions()
    )
    warm_sweep = run_grid(
        [mix_by_name(name) for name in mix_names],
        [BASELINE],
        executions=resolved,
        warmup=warmup,
        seed=seed,
    )
    rows: List[Tuple[object, ...]] = []
    hardened = None
    for mix_name in mix_names:
        mix = mix_by_name(mix_name)
        for name in scenario_names:
            result = run_chaos_cell(
                mix, name, executions=executions, warmup=warmup, seed=seed
            )
            report = result.fault_report
            if report is None:
                raise ExperimentError(
                    "chaos run of %r produced no fault report" % mix_name
                )
            hardened = report.hardening_enabled
            rows.append((
                mix.name,
                name,
                "%.3f" % result.fg_success_ratio,
                "%.4f" % result.fg_stats.mean_s,
                report.total_injected,
                report.samples_dropped,
                report.rejected_samples,
                report.actuations_retried,
                report.actuations_failed,
                report.degraded_entries,
                report.safe_entries,
                "%.1f%%" % (
                    100.0 * report.degraded_fraction(result.elapsed_s)
                ),
            ))
    return FigureResult(
        name="chaos",
        title="FG QoS under fault injection (Dirigent, hardening %s)"
        % ("on" if hardened else "OFF"),
        headers=(
            "Mix", "Scenario", "Success", "MeanS", "Injected", "Drops",
            "Rejected", "Retried", "ActFail", "DegEnter", "SafeEnter",
            "Degraded",
        ),
        rows=tuple(rows),
        notes=(
            "deadlines come from the clean Baseline run; the machine is "
            "fault-free — only the runtime's sensor/actuator view is "
            "corrupted",
            "hardening kill switch: REPRO_DEGRADED_MODE=0",
        ) + tuple(
            "baseline warm-up %s" % line for line in sweep_summary(warm_sweep)
        ),
    )


def run_chaos_cell(
    mix: Mix,
    scenario_name: str,
    executions: Optional[int] = None,
    warmup: int = 3,
    seed: int = 0,
) -> RunResult:
    """One chaos cell: the Dirigent policy on ``mix`` under a scenario."""
    return run_policy(
        mix,
        DIRIGENT,
        executions=executions,
        warmup=warmup,
        seed=seed,
        fault_plan=scenario(scenario_name, seed=seed),
    )
