"""Parallel sweep engine: fan mix x policy x seed cells across processes.

Figure drivers are embarrassingly parallel at the cell level — every
(mix, policy, executions, seed) run is an independent simulation — but
cells share expensive prerequisites: the mix's Baseline run (deadlines),
its static-partition sweep, and the FG benchmark's offline profile.  The
engine therefore schedules in two phases:

1. **Prepare**: one cell per mix computes the shared prerequisites and
   publishes them through the persistent disk cache
   (:mod:`repro.experiments.diskcache`).
2. **Policy cells**: all (mix, policy) cells fan out; each worker reads
   the warm prerequisites from disk and stores its result there too.

Workers communicate exclusively through the content-addressed disk
cache, so results are *identical* to a serial sweep: every cell derives
its RNG streams from ``(config.seed, mix.name, seed)`` alone, never
from worker identity or scheduling order
(``tests/experiments/test_parallel.py`` asserts equality).

Worker count comes from, in order: the ``workers`` argument,
:func:`set_default_workers` (the CLI's ``--workers``), the
``REPRO_WORKERS`` environment variable, then ``os.cpu_count()``.  Any
failure to stand up the process pool degrades to the serial path.

Policy cells are dispatched **lane-packed**: instead of one cell per
pool task, each task carries a pack of K cells grouped by mix, so a
worker that has warmed a mix's prerequisites (profile, baseline,
partition — all memoized in-process by :mod:`repro.experiments.harness`)
runs that mix's remaining policies against its warm in-memory caches
rather than re-deserializing them from the disk cache per cell.  Packing
changes scheduling only, never results.  ``REPRO_PACK_CELLS`` overrides
the per-pack cell cap.

With ``seeds`` the grid grows a Monte-Carlo axis — every
(mix, policy, seed) combination is a cell — and lane packing
generalizes to **machine packing**: under the vector backend
(``REPRO_SIM_BACKEND=vector``) packs group by (mix, policy) so each
worker advances a whole seed batch through one
:class:`~repro.sim.vector.MultiCell` driver
(:func:`~repro.experiments.harness.run_policy_batch`), fusing agreeing
cells into cell-axis kernels; ``REPRO_VECTOR_CELLS`` caps the machines
per kernel inside the driver.  Machine packing, like lane packing,
changes scheduling only — per-cell results stay bit-identical to
serial single-seed runs and share the same disk-cache entries.

The engine degrades rather than dies: a pool that cannot be created (or
collapses during the prepare phase) falls back to the serial path with
the cause logged and recorded in :attr:`SweepResult.fallback_reason`;
with ``REPRO_CELL_TIMEOUT_S`` set, a pack whose worker exceeds the
per-cell budget — or is stranded by a dying pool — is *lost* and its
cells are recomputed serially once (:attr:`SweepResult.retried`), with
unrecoverable cells counted in :attr:`SweepResult.failed` instead of
aborting the sweep.  Lost-cell recovery cannot change values: every
cell's result depends only on its arguments, never on where it ran.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import Policy
from repro.experiments.harness import (
    DEFAULT_WARMUP,
    RunResult,
    find_static_partition,
    get_profile,
    measure_baseline,
    run_policy_batch,
    run_policy_cached,
)
from repro.experiments.mixes import Mix
from repro.sim.batch import BACKEND_VECTOR, resolve_backend
from repro.sim.config import (
    ENV_CELL_TIMEOUT_S,
    ENV_PACK_CELLS,
    MachineConfig,
    default_executions,
    env_cell_timeout_s,
    env_pack_cells,
    env_workers,
)

_log = logging.getLogger(__name__)

_default_workers: Optional[int] = None

__all__ = ["ENV_PACK_CELLS", "SweepResult", "default_workers", "run_grid",
           "set_default_workers"]


def set_default_workers(workers: int) -> None:
    """Set the process-wide default worker count (CLI ``--workers``)."""
    global _default_workers
    _default_workers = max(1, workers)


def default_workers() -> int:
    """Resolve the worker count: override, REPRO_WORKERS, CPU count."""
    if _default_workers is not None:
        return _default_workers
    env = env_workers()
    if env is not None:
        return env
    return os.cpu_count() or 1


@dataclass
class SweepResult:
    """Outcome of one grid sweep.

    Attributes:
        results: RunResult per ``(mix.name, policy.name)`` cell — or
            per ``(mix.name, policy.name, seed)`` when the sweep ran
            with an explicit ``seeds`` axis.
        cell_timings: Wall-clock seconds spent producing each cell
            (near zero for cache hits).
        prepare_timings: Wall-clock seconds of each mix's prepare phase
            (parallel mode only).
        workers: Worker processes the sweep ran with (1 = serial).
        mode: ``"serial"`` or ``"parallel"``.
        elapsed_s: End-to-end wall-clock time of the sweep.
        pack_sizes: Cells carried by each pool task (parallel mode only;
            empty for serial sweeps).
        retried: Cells recovered by the serial retry after their worker
            timed out (``REPRO_CELL_TIMEOUT_S``) or the pool died
            mid-sweep.
        failed: Cells that also failed the serial retry; their keys are
            absent from ``results``.
        failures: ``(mix, policy, reason)`` per failed cell.
        fallback_reason: Why a requested parallel sweep ran serially
            instead (None for healthy sweeps).
    """

    results: Dict[Tuple, RunResult] = field(default_factory=dict)
    cell_timings: Dict[Tuple, float] = field(default_factory=dict)
    prepare_timings: Dict[str, float] = field(default_factory=dict)
    workers: int = 1
    mode: str = "serial"
    elapsed_s: float = 0.0
    pack_sizes: List[int] = field(default_factory=list)
    retried: int = 0
    failed: int = 0
    failures: List[Tuple[str, str, str]] = field(default_factory=list)
    fallback_reason: Optional[str] = None

    def get(
        self, mix: Mix, policy: Policy, seed: Optional[int] = None
    ) -> RunResult:
        """The cached cell for ``(mix, policy)`` (or one of its seeds)."""
        if seed is None:
            return self.results[(mix.name, policy.name)]
        return self.results[(mix.name, policy.name, seed)]


def _prepare_cell(args: Tuple) -> Tuple[str, float]:
    """Worker: compute a mix's shared prerequisites (phase 1)."""
    mix, policies, executions, warmup, config, seed = args
    start = time.perf_counter()
    measure_baseline(
        mix, executions=executions, warmup=warmup, config=config, seed=seed
    )
    if any(p.static_partition for p in policies):
        find_static_partition(mix, config=config, seed=seed)
    if any(p.uses_runtime for p in policies):
        get_profile(mix.fg_name, config)
    return mix.name, time.perf_counter() - start


def _policy_cell(args: Tuple) -> Tuple[Tuple, RunResult, float]:
    """Worker: run one (mix, policy, seed) cell (phase 2)."""
    mix, policy, executions, warmup, config, seed, key = args
    start = time.perf_counter()
    result = run_policy_cached(
        mix,
        policy,
        executions=executions,
        warmup=warmup,
        config=config,
        seed=seed,
    )
    return key, result, time.perf_counter() - start


def _seed_groups(pack: List[Tuple]) -> List[List[Tuple]]:
    """Split a pack into runs of cells identical up to the seed."""
    groups: List[List[Tuple]] = []
    signature = None
    for cell in pack:
        sig = (cell[0].name, cell[1], cell[2], cell[3], cell[4])
        if groups and sig == signature:
            groups[-1].append(cell)
        else:
            groups.append([cell])
            signature = sig
    return groups


def _run_pack(pack: List[Tuple]) -> List[Tuple[Tuple, RunResult, float]]:
    """Worker: run a lane pack of cells back to back.

    Cells in a pack share a mix, so after the first cell the worker's
    in-process caches hold the mix's profile, baseline, and partition;
    the remaining cells skip the disk-cache round trips entirely.
    Consecutive cells that differ only in their seed (a machine pack)
    advance as one :func:`~repro.experiments.harness.run_policy_batch`
    seed batch — under the vector backend that is a fused MultiCell
    drive; under the others it degrades to the serial per-seed loop.
    Either way each cell's result is byte-identical to unpacked
    dispatch and lands in the same disk-cache entry.
    """
    out: List[Tuple[Tuple, RunResult, float]] = []
    for group in _seed_groups(pack):
        if len(group) < 2:
            out.append(_policy_cell(group[0]))
            continue
        mix, policy, executions, warmup, config = group[0][:5]
        seeds = [cell[5] for cell in group]
        start = time.perf_counter()
        batch = run_policy_batch(
            mix,
            policy,
            executions=executions,
            warmup=warmup,
            config=config,
            seeds=seeds,
        )
        spent = (time.perf_counter() - start) / len(group)
        out.extend(
            (cell[6], result, spent) for cell, result in zip(group, batch)
        )
    return out


def _pack_cells(
    cells: List[Tuple], workers: int, by_policy: bool = False
) -> List[List[Tuple]]:
    """Group cells into per-mix packs of at most K cells.

    K defaults to an even split of the grid over the workers (so packing
    never *reduces* parallelism when there are spare workers) and can be
    pinned with ``REPRO_PACK_CELLS``.  With ``by_policy`` (a seeded
    sweep under the vector backend) packs group by (mix, policy)
    instead of by mix alone, so each pack is a seed batch the worker
    can advance through one MultiCell driver — machine packing.
    """
    cap = env_pack_cells() or 0
    if cap < 1:
        cap = max(1, -(-len(cells) // max(1, workers)))
    by_group: Dict[Tuple, List[Tuple]] = {}
    for cell in cells:
        key = (cell[0].name, cell[1].name) if by_policy else (cell[0].name,)
        by_group.setdefault(key, []).append(cell)
    packs: List[List[Tuple]] = []
    for group in by_group.values():
        for index in range(0, len(group), cap):
            packs.append(group[index:index + cap])
    return packs


def run_grid(
    mixes: Sequence[Mix],
    policies: Sequence[Policy],
    executions: Optional[int] = None,
    warmup: int = DEFAULT_WARMUP,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
) -> SweepResult:
    """Run every mix x policy (x seed) cell, in parallel when possible.

    Results are keyed by ``(mix.name, policy.name)`` — or
    ``(mix.name, policy.name, seed)`` when an explicit ``seeds`` axis
    is given — and are identical to running
    :func:`repro.experiments.harness.run_policy` serially in any order:
    per-cell RNG seeding depends only on the cell, and cells coordinate
    only through the content-addressed disk cache.

    ``executions`` defaults from ``REPRO_EXECUTIONS`` (resolved here,
    once, so every fanned-out cell sees the same value).  ``seeds``
    turns the sweep into a Monte-Carlo grid; under the vector backend
    the per-(mix, policy) seed batches advance through fused MultiCell
    drivers (see the module docstring).
    """
    if executions is None:
        executions = default_executions()
    config = config or MachineConfig()
    if workers is None:
        workers = default_workers()
    workers = max(1, workers)
    seeded = seeds is not None
    seed_list = list(seeds) if seeded else [seed]
    cells = []
    for mix in mixes:
        for policy in policies:
            for cell_seed in seed_list:
                key = (
                    (mix.name, policy.name, cell_seed) if seeded
                    else (mix.name, policy.name)
                )
                cells.append(
                    (mix, policy, executions, warmup, config, cell_seed,
                     key)
                )
    by_policy = seeded and resolve_backend() == BACKEND_VECTOR
    start = time.perf_counter()
    sweep = SweepResult(workers=workers)
    if workers > 1 and len(cells) > 1:
        lost = _run_parallel(sweep, mixes, policies, cells, workers,
                             by_policy)
        if lost is not None:
            sweep.mode = "parallel"
            _retry_lost_cells(sweep, lost)
            sweep.elapsed_s = time.perf_counter() - start
            return sweep
        # Pool never came up or died before producing results
        # (restricted platform): run serially below, keeping the cause.
        sweep = SweepResult(workers=1,
                            fallback_reason=sweep.fallback_reason)
    sweep.mode = "serial"
    sweep.workers = 1
    for pack in _pack_cells(cells, 1, by_policy):
        for key, result, spent in _run_pack(pack):
            sweep.results[key] = result
            sweep.cell_timings[key] = spent
    sweep.elapsed_s = time.perf_counter() - start
    return sweep


def _retry_lost_cells(sweep: SweepResult, cells: List[Tuple]) -> None:
    """Recompute cells whose worker timed out or died, serially, once.

    Recovery is value-preserving: a cell's result depends only on its
    arguments, so recomputing it in-process yields exactly what the
    worker would have returned.  A cell that fails even here is counted
    and recorded rather than raised — the rest of the sweep is good
    data, and the caller can see exactly what is missing.
    """
    for cell in cells:
        mix, policy = cell[0], cell[1]
        try:
            key, result, spent = _policy_cell(cell)
        except Exception as exc:  # surface, don't abort the sweep
            reason = "%s: %s" % (type(exc).__name__, exc)
            _log.warning("sweep cell (%s, %s) failed on serial retry: %s",
                         mix.name, policy.name, reason)
            sweep.failed += 1
            sweep.failures.append((mix.name, policy.name, reason))
            continue
        sweep.retried += 1
        sweep.results[key] = result
        sweep.cell_timings[key] = spent


def _run_parallel(
    sweep: SweepResult,
    mixes: Sequence[Mix],
    policies: Sequence[Policy],
    cells: List[Tuple],
    workers: int,
    by_policy: bool = False,
) -> Optional[List[Tuple]]:
    """Execute the two-phase fan-out.

    Returns the list of *lost* cells — cells whose pack timed out
    (``REPRO_CELL_TIMEOUT_S``) or was stranded when the pool died —
    for the caller to retry serially; an empty list means a fully
    healthy parallel sweep.  Returns None when no pool could be created
    or it collapsed before producing any policy-cell results, with the
    cause logged and recorded in ``sweep.fallback_reason``; the sweep
    is still fully computable in-process.
    """
    executions, warmup, config = cells[0][2:5]
    needs_prepare = any(
        p.uses_runtime or p.static_partition or not _is_baseline(p)
        for p in policies
    )
    # One prepare cell per distinct (mix, seed) — with a seeds axis the
    # Baseline/partition prerequisites are per-seed too.
    seen_prepare = set()
    prepare_args = []
    for cell in cells:
        pair = (cell[0].name, cell[5])
        if pair not in seen_prepare:
            seen_prepare.add(pair)
            prepare_args.append(
                (cell[0], tuple(policies), executions, warmup, config,
                 cell[5])
            )
    packs = _pack_cells(cells, workers, by_policy)
    timeout_s = env_cell_timeout_s()
    timed_out = False
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(cells)))
    except (OSError, RuntimeError, PermissionError) as exc:
        _fall_back(sweep, exc)
        return None
    try:
        try:
            if needs_prepare and len(mixes) > 0:
                chunk = _chunksize(len(prepare_args), workers)
                for name, spent in pool.map(
                    _prepare_cell, prepare_args, chunksize=chunk
                ):
                    sweep.prepare_timings[name] = spent
            sweep.pack_sizes = [len(pack) for pack in packs]
            futures = [(pack, pool.submit(_run_pack, pack))
                       for pack in packs]
        except (OSError, BrokenProcessPool, RuntimeError,
                PermissionError) as exc:
            # No fork/spawn, no semaphores, or the pool died during the
            # prepare phase: nothing collected yet, recompute serially.
            _fall_back(sweep, exc)
            return None
        lost: List[Tuple] = []
        pool_broken = False
        for pack, future in futures:
            if pool_broken:
                lost.extend(pack)
                continue
            try:
                if timeout_s is not None:
                    pack_results = future.result(
                        timeout=timeout_s * len(pack)
                    )
                else:
                    pack_results = future.result()
            except FutureTimeoutError:
                _log.warning(
                    "sweep pack of %d cells exceeded the %.1fs/cell "
                    "budget (%s); retrying its cells serially",
                    len(pack), timeout_s, ENV_CELL_TIMEOUT_S,
                )
                timed_out = True
                future.cancel()
                lost.extend(pack)
            except BrokenProcessPool as exc:
                _log.warning(
                    "worker pool died mid-sweep (%s); retrying the "
                    "remaining cells serially", exc,
                )
                pool_broken = True
                lost.extend(pack)
            else:
                for key, result, spent in pack_results:
                    sweep.results[key] = result
                    sweep.cell_timings[key] = spent
        return lost
    finally:
        # A timed-out worker may still be running; abandon it rather
        # than letting shutdown block result delivery on its completion.
        pool.shutdown(wait=not timed_out, cancel_futures=True)


def _fall_back(sweep: SweepResult, exc: BaseException) -> None:
    """Record a whole-sweep serial fallback and discard partial state."""
    reason = "%s: %s" % (type(exc).__name__, exc)
    _log.warning("parallel sweep unavailable (%s); running serially",
                 reason)
    sweep.fallback_reason = reason
    sweep.results.clear()
    sweep.cell_timings.clear()
    sweep.prepare_timings.clear()
    sweep.pack_sizes = []


def _is_baseline(policy: Policy) -> bool:
    return (
        not policy.uses_runtime
        and not policy.static_partition
        and policy.static_bg_grade is None
        and policy.static_fg_grade is None
    )


def _chunksize(items: int, workers: int) -> int:
    """Batch cells so pool IPC overhead amortizes over several cells."""
    return max(1, items // (workers * 4))
