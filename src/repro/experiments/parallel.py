"""Parallel sweep engine: fan mix x policy x seed cells across processes.

Figure drivers are embarrassingly parallel at the cell level — every
(mix, policy, executions, seed) run is an independent simulation — but
cells share expensive prerequisites: the mix's Baseline run (deadlines),
its static-partition sweep, and the FG benchmark's offline profile.  The
engine therefore schedules in two phases:

1. **Prepare**: one cell per mix computes the shared prerequisites and
   publishes them through the persistent disk cache
   (:mod:`repro.experiments.diskcache`).
2. **Policy cells**: all (mix, policy) cells fan out; each worker reads
   the warm prerequisites from disk and stores its result there too.

Workers communicate exclusively through the content-addressed disk
cache, so results are *identical* to a serial sweep: every cell derives
its RNG streams from ``(config.seed, mix.name, seed)`` alone, never
from worker identity or scheduling order
(``tests/experiments/test_parallel.py`` asserts equality).

Worker count comes from, in order: the ``workers`` argument,
:func:`set_default_workers` (the CLI's ``--workers``), the
``REPRO_WORKERS`` environment variable, then ``os.cpu_count()``.  Any
failure to stand up the process pool degrades to the serial path.

Policy cells are dispatched **lane-packed**: instead of one cell per
pool task, each task carries a pack of K cells grouped by mix, so a
worker that has warmed a mix's prerequisites (profile, baseline,
partition — all memoized in-process by :mod:`repro.experiments.harness`)
runs that mix's remaining policies against its warm in-memory caches
rather than re-deserializing them from the disk cache per cell.  Packing
changes scheduling only, never results.  ``REPRO_PACK_CELLS`` overrides
the per-pack cell cap.

With ``seeds`` the grid grows a Monte-Carlo axis — every
(mix, policy, seed) combination is a cell — and lane packing
generalizes to **machine packing**: under the vector backend
(``REPRO_SIM_BACKEND=vector``) packs group by (mix, policy) so each
worker advances a whole seed batch through one
:class:`~repro.sim.vector.MultiCell` driver
(:func:`~repro.experiments.harness.run_policy_batch`), fusing agreeing
cells into cell-axis kernels; ``REPRO_VECTOR_CELLS`` caps the machines
per kernel inside the driver.  Machine packing, like lane packing,
changes scheduling only — per-cell results stay bit-identical to
serial single-seed runs and share the same disk-cache entries.

The engine degrades rather than dies: a pool that cannot be created (or
collapses during the prepare phase) falls back to the serial path with
the cause logged and recorded in :attr:`SweepResult.fallback_reason`;
with ``REPRO_CELL_TIMEOUT_S`` set, a pack whose worker exceeds the
per-cell budget — or is stranded by a dying pool — is *lost* and its
cells are recomputed serially once (:attr:`SweepResult.retried`), with
unrecoverable cells counted in :attr:`SweepResult.failed` instead of
aborting the sweep.  Lost-cell recovery cannot change values: every
cell's result depends only on its arguments, never on where it ran.

**Warm workers.** Repeated small sweeps (policy tournaments, fleet
grids) used to pay full cold start on every call: a fresh pool, a fresh
``exec`` of every span kernel per worker, static pack assignment, and a
pickled object graph per result row.  Four mechanisms remove that
overhead, all result-neutral and individually kill-switchable:

* **Pool reuse** (``REPRO_POOL_REUSE``): a module-level
  :class:`WorkerPool` keeps the executor alive across consecutive
  :func:`run_grid` calls.  The pool's generation key folds in the
  worker count, the code-version tag, and a fingerprint of every
  declared env knob; any change — or a broken/timed-out pool — retires
  the workers and respawns.
* **Warm initializer**: respawned workers run :func:`_warm_worker`
  once, preloading compiled span kernels from the persistent kernel
  cache (``REPRO_KERNEL_DISK_CACHE``, see
  :mod:`repro.experiments.diskcache`) and pre-seeding the solver memos
  for the sweep's workload phases.
* **Work stealing** (``REPRO_STEAL``): packs are seeded one per worker
  and the remainder drained from a deque as futures complete, with the
  largest remaining pack split at seed-group boundaries when workers
  idle — a straggler pack no longer bounds wall-clock.
* **Columnar transport**: workers return packs as flat
  :class:`~repro.experiments.transport.EncodedPack` columns instead of
  pickled ``RunResult`` graphs; the parent decodes bit-identical
  objects and records the payload size in ``SweepResult.ipc_bytes``.
"""

from __future__ import annotations

import logging
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.policies import Policy
from repro.experiments.diskcache import code_version_tag
from repro.experiments.harness import (
    DEFAULT_WARMUP,
    RunResult,
    find_static_partition,
    get_profile,
    measure_baseline,
    run_policy_batch,
    run_policy_cached,
)
from repro.experiments.mixes import Mix
from repro.experiments.transport import EncodedPack, decode_pack, encode_pack
from repro.sim.batch import BACKEND_VECTOR, resolve_backend
from repro.sim.config import (
    ENV_CELL_TIMEOUT_S,
    ENV_PACK_CELLS,
    MachineConfig,
    default_executions,
    env_cell_timeout_s,
    env_pack_cells,
    env_workers,
    knob_fingerprint,
    pool_reuse_enabled,
    steal_enabled,
)
from repro.sim.perf import warm_solver_tables
from repro.sim.spanplan import consume_kernel_cache_stats, preload_kernels
from repro.workloads.catalog import get_rotate_pair, get_workload

_log = logging.getLogger(__name__)

_default_workers: Optional[int] = None

__all__ = ["ENV_PACK_CELLS", "SweepResult", "default_workers", "last_sweep",
           "run_grid", "set_default_workers", "shutdown_pool"]


def set_default_workers(workers: int) -> None:
    """Set the process-wide default worker count (CLI ``--workers``)."""
    global _default_workers
    _default_workers = max(1, workers)


def default_workers() -> int:
    """Resolve the worker count: override, REPRO_WORKERS, CPU count."""
    if _default_workers is not None:
        return _default_workers
    env = env_workers()
    if env is not None:
        return env
    return os.cpu_count() or 1


@dataclass
class SweepResult:
    """Outcome of one grid sweep.

    Attributes:
        results: RunResult per ``(mix.name, policy.name)`` cell — or
            per ``(mix.name, policy.name, seed)`` when the sweep ran
            with an explicit ``seeds`` axis.
        cell_timings: Wall-clock seconds spent producing each cell
            (near zero for cache hits).
        prepare_timings: Wall-clock seconds of each mix's prepare phase
            (parallel mode only).
        workers: Worker processes the sweep ran with (1 = serial).
        mode: ``"serial"`` or ``"parallel"``.
        elapsed_s: End-to-end wall-clock time of the sweep.
        pack_sizes: Cells carried by each pool task (parallel mode only;
            empty for serial sweeps).
        retried: Cells recovered by the serial retry after their worker
            timed out (``REPRO_CELL_TIMEOUT_S``) or the pool died
            mid-sweep.
        failed: Cells that also failed the serial retry; their keys are
            absent from ``results``.
        failures: ``(mix, policy, reason)`` per failed cell.
        fallback_reason: Why a requested parallel sweep ran serially
            instead (None for healthy sweeps).
        warm_starts: 1 when the sweep ran on a reused (already-live)
            worker pool, 0 for a cold pool or a serial sweep.
        kernels_preloaded: Span kernels compiled ahead of demand by
            pool initializers (summed over workers) and parent-side
            preloads.
        kernel_disk_hits: Kernel sources served from the persistent
            ``.repro_cache/kernels/`` store instead of regenerated
            (workers + parent).
        steals: Packs dispatched on demand after the initial one-per-
            worker seeding (work-stealing mode only).
        packs_split: Packs split in two because workers were idle with
            too few packs queued.
        ipc_bytes: Columnar result payload bytes returned by workers.
    """

    results: Dict[Tuple, RunResult] = field(default_factory=dict)
    cell_timings: Dict[Tuple, float] = field(default_factory=dict)
    prepare_timings: Dict[str, float] = field(default_factory=dict)
    workers: int = 1
    mode: str = "serial"
    elapsed_s: float = 0.0
    pack_sizes: List[int] = field(default_factory=list)
    retried: int = 0
    failed: int = 0
    failures: List[Tuple[str, str, str]] = field(default_factory=list)
    fallback_reason: Optional[str] = None
    warm_starts: int = 0
    kernels_preloaded: int = 0
    kernel_disk_hits: int = 0
    steals: int = 0
    packs_split: int = 0
    ipc_bytes: int = 0

    def get(
        self, mix: Mix, policy: Policy, seed: Optional[int] = None
    ) -> RunResult:
        """The cached cell for ``(mix, policy)`` (or one of its seeds)."""
        if seed is None:
            return self.results[(mix.name, policy.name)]
        return self.results[(mix.name, policy.name, seed)]


def _prepare_cell(args: Tuple) -> Tuple[str, float]:
    """Worker: compute a mix's shared prerequisites (phase 1)."""
    mix, policies, executions, warmup, config, seed = args
    start = time.perf_counter()
    measure_baseline(
        mix, executions=executions, warmup=warmup, config=config, seed=seed
    )
    if any(p.static_partition for p in policies):
        find_static_partition(mix, config=config, seed=seed)
    if any(p.uses_runtime for p in policies):
        get_profile(mix.fg_name, config)
    return mix.name, time.perf_counter() - start


def _policy_cell(args: Tuple) -> Tuple[Tuple, RunResult, float]:
    """Worker: run one (mix, policy, seed) cell (phase 2)."""
    mix, policy, executions, warmup, config, seed, key = args
    start = time.perf_counter()
    result = run_policy_cached(
        mix,
        policy,
        executions=executions,
        warmup=warmup,
        config=config,
        seed=seed,
    )
    return key, result, time.perf_counter() - start


def _seed_groups(pack: List[Tuple]) -> List[List[Tuple]]:
    """Split a pack into runs of cells identical up to the seed."""
    groups: List[List[Tuple]] = []
    signature = None
    for cell in pack:
        sig = (cell[0].name, cell[1], cell[2], cell[3], cell[4])
        if groups and sig == signature:
            groups[-1].append(cell)
        else:
            groups.append([cell])
            signature = sig
    return groups


def _run_pack(pack: List[Tuple]) -> List[Tuple[Tuple, RunResult, float]]:
    """Worker: run a lane pack of cells back to back.

    Cells in a pack share a mix, so after the first cell the worker's
    in-process caches hold the mix's profile, baseline, and partition;
    the remaining cells skip the disk-cache round trips entirely.
    Consecutive cells that differ only in their seed (a machine pack)
    advance as one :func:`~repro.experiments.harness.run_policy_batch`
    seed batch — under the vector backend that is a fused MultiCell
    drive; under the others it degrades to the serial per-seed loop.
    Either way each cell's result is byte-identical to unpacked
    dispatch and lands in the same disk-cache entry.
    """
    out: List[Tuple[Tuple, RunResult, float]] = []
    for group in _seed_groups(pack):
        if len(group) < 2:
            out.append(_policy_cell(group[0]))
            continue
        mix, policy, executions, warmup, config = group[0][:5]
        seeds = [cell[5] for cell in group]
        start = time.perf_counter()
        batch = run_policy_batch(
            mix,
            policy,
            executions=executions,
            warmup=warmup,
            config=config,
            seeds=seeds,
        )
        spent = (time.perf_counter() - start) / len(group)
        out.extend(
            (cell[6], result, spent) for cell, result in zip(group, batch)
        )
    return out


def _run_pack_encoded(pack: List[Tuple]) -> EncodedPack:
    """Worker: run a pack and return it in columnar transport form.

    The kernel-cache counter snapshot rides along so the parent can
    attribute worker-side disk hits and initializer preloads to the
    sweep without the workers sharing any state.
    """
    return encode_pack(_run_pack(pack), consume_kernel_cache_stats())


def _warm_payload(
    mixes: Sequence[Mix], config: MachineConfig
) -> Tuple[Tuple, MachineConfig]:
    """Initializer payload: the sweep's distinct phase specs + config.

    Collected parent-side (phase specs are small frozen dataclasses, so
    the payload pickles cheaply) and handed to every respawned worker's
    :func:`_warm_worker`.
    """
    phases: List[object] = []
    seen = set()
    specs: List[object] = []
    for mix in mixes:
        specs.append(get_workload(mix.fg_name))
        if mix.is_rotate:
            pair = get_rotate_pair(mix.rotate_name)
            specs.append(pair.first)
            specs.append(pair.second)
        else:
            specs.append(get_workload(mix.bg_name))
    for spec in specs:
        for phase in spec.phases:
            key = (spec.name, phase.name)
            if key not in seen:
                seen.add(key)
                phases.append(phase)
    return tuple(phases), config


def _warm_worker(payload: Tuple[Tuple, MachineConfig]) -> None:
    """Pool initializer: warm a fresh worker's per-process caches.

    Runs once per worker process before its first task: compiles the
    shipped template shapes plus every persisted kernel-cache entry
    into the in-process code cache, and pre-seeds the solver memos for
    the sweep's workload phases.  Warming is purely accelerative — a
    seeded memo entry is bit-identical to the one a cold run would
    build — and best-effort: a failure here logs and leaves the worker
    cold rather than breaking the pool.
    """
    phases, config = payload
    try:
        preload_kernels()
        warm_solver_tables(config, phases)
    except Exception:  # pragma: no cover - warming must never kill a pool
        _log.exception("worker warm-up failed; continuing cold")


class WorkerPool:
    """Keeps one ``ProcessPoolExecutor`` alive across consecutive sweeps.

    Reuse is generation-based: the live pool is handed out again only
    while ``(max_workers, code-version tag, env-knob fingerprint)``
    matches the key it was spawned under.  Any mismatch — a knob flip,
    a different worker count, new simulator code — and any unhealthy
    release (timeout, ``BrokenProcessPool``) retires the pool; the next
    acquire respawns with the warm initializer and bumps
    ``generation``.  With ``REPRO_POOL_REUSE`` off, acquire returns a
    plain single-sweep pool exactly as before this layer existed: sized
    to the cell count, no initializer, never retained.
    """

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._key: Optional[Tuple] = None
        self.generation = 0

    def acquire(
        self, workers: int, payload: Tuple[Tuple, MachineConfig]
    ) -> Tuple[ProcessPoolExecutor, bool]:
        """A pool of ``workers`` processes; returns ``(pool, warm)``.

        ``warm`` is True when the returned pool was already alive (its
        workers carry previous sweeps' caches).  May raise whatever the
        executor constructor raises; the caller owns the fallback.
        """
        if not pool_reuse_enabled():
            self.discard()
            return ProcessPoolExecutor(max_workers=workers), False
        key = (workers, code_version_tag(), knob_fingerprint())
        if self._pool is not None and self._key == key:
            return self._pool, True
        self.discard()
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_warm_worker,
            initargs=(payload,),
        )
        self._pool = pool
        self._key = key
        self.generation += 1
        return pool, False

    def release(
        self, pool: ProcessPoolExecutor, keep: bool, wait_workers: bool
    ) -> None:
        """Return a pool after a sweep.

        A healthy retained pool stays alive for the next acquire;
        anything else shuts down (without waiting when a timed-out
        worker may still be wedged on a pack).
        """
        if keep and pool is self._pool and pool_reuse_enabled():
            return
        if pool is self._pool:
            self._pool = None
            self._key = None
        pool.shutdown(wait=wait_workers, cancel_futures=True)

    def discard(self) -> None:
        """Retire the live pool immediately (tests, CLI, invalidation)."""
        pool, self._pool, self._key = self._pool, None, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


_POOL = WorkerPool()

_LAST_SWEEP: Optional[SweepResult] = None


def shutdown_pool() -> None:
    """Retire the module's reused worker pool (if any)."""
    _POOL.discard()


def last_sweep() -> Optional[SweepResult]:
    """The most recently completed sweep (for report footers), or None."""
    return _LAST_SWEEP


def _pack_cells(
    cells: List[Tuple], workers: int, by_policy: bool = False
) -> List[List[Tuple]]:
    """Group cells into per-mix packs of at most K cells.

    K defaults to an even split of the grid over the workers (so packing
    never *reduces* parallelism when there are spare workers) and can be
    pinned with ``REPRO_PACK_CELLS``.  With ``by_policy`` (a seeded
    sweep under the vector backend) packs group by (mix, policy)
    instead of by mix alone, so each pack is a seed batch the worker
    can advance through one MultiCell driver — machine packing.
    """
    cap = env_pack_cells() or 0
    if cap < 1:
        cap = max(1, -(-len(cells) // max(1, workers)))
    by_group: Dict[Tuple, List[Tuple]] = {}
    for cell in cells:
        key = (cell[0].name, cell[1].name) if by_policy else (cell[0].name,)
        by_group.setdefault(key, []).append(cell)
    packs: List[List[Tuple]] = []
    for group in by_group.values():
        for index in range(0, len(group), cap):
            packs.append(group[index:index + cap])
    return packs


def run_grid(
    mixes: Sequence[Mix],
    policies: Sequence[Policy],
    executions: Optional[int] = None,
    warmup: int = DEFAULT_WARMUP,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
) -> SweepResult:
    """Run every mix x policy (x seed) cell, in parallel when possible.

    Results are keyed by ``(mix.name, policy.name)`` — or
    ``(mix.name, policy.name, seed)`` when an explicit ``seeds`` axis
    is given — and are identical to running
    :func:`repro.experiments.harness.run_policy` serially in any order:
    per-cell RNG seeding depends only on the cell, and cells coordinate
    only through the content-addressed disk cache.

    ``executions`` defaults from ``REPRO_EXECUTIONS`` (resolved here,
    once, so every fanned-out cell sees the same value).  ``seeds``
    turns the sweep into a Monte-Carlo grid; under the vector backend
    the per-(mix, policy) seed batches advance through fused MultiCell
    drivers (see the module docstring).
    """
    if executions is None:
        executions = default_executions()
    config = config or MachineConfig()
    if workers is None:
        workers = default_workers()
    workers = max(1, workers)
    seeded = seeds is not None
    seed_list = list(seeds) if seeded else [seed]
    cells = []
    for mix in mixes:
        for policy in policies:
            for cell_seed in seed_list:
                key = (
                    (mix.name, policy.name, cell_seed) if seeded
                    else (mix.name, policy.name)
                )
                cells.append(
                    (mix, policy, executions, warmup, config, cell_seed,
                     key)
                )
    by_policy = seeded and resolve_backend() == BACKEND_VECTOR
    start = time.perf_counter()
    sweep = SweepResult(workers=workers)
    if workers > 1 and len(cells) > 1:
        lost = _run_parallel(sweep, mixes, policies, cells, workers,
                             by_policy)
        if lost is not None:
            sweep.mode = "parallel"
            _retry_lost_cells(sweep, lost)
            return _finish_sweep(sweep, start)
        # Pool never came up or died before producing results
        # (restricted platform): run serially below, keeping the cause.
        sweep = SweepResult(workers=1,
                            fallback_reason=sweep.fallback_reason)
    sweep.mode = "serial"
    sweep.workers = 1
    for pack in _pack_cells(cells, 1, by_policy):
        for key, result, spent in _run_pack(pack):
            sweep.results[key] = result
            sweep.cell_timings[key] = spent
    return _finish_sweep(sweep, start)


def _finish_sweep(sweep: SweepResult, start: float) -> SweepResult:
    """Fold parent-side counters in, stamp timing, publish the sweep.

    Parent-side kernel-cache activity covers serial sweeps, serial
    retries of lost cells, and any preloading the parent process did
    itself; worker-side activity arrived with each pack's columns.
    """
    global _LAST_SWEEP
    counters = consume_kernel_cache_stats()
    sweep.kernel_disk_hits += counters.get("kernel_disk_hits", 0)
    sweep.kernels_preloaded += counters.get("kernels_preloaded", 0)
    sweep.elapsed_s = time.perf_counter() - start
    _LAST_SWEEP = sweep
    return sweep


def _retry_lost_cells(sweep: SweepResult, cells: List[Tuple]) -> None:
    """Recompute cells whose worker timed out or died, serially, once.

    Recovery is value-preserving: a cell's result depends only on its
    arguments, so recomputing it in-process yields exactly what the
    worker would have returned.  A cell that fails even here is counted
    and recorded rather than raised — the rest of the sweep is good
    data, and the caller can see exactly what is missing.
    """
    for cell in cells:
        mix, policy = cell[0], cell[1]
        try:
            key, result, spent = _policy_cell(cell)
        except Exception as exc:  # surface, don't abort the sweep
            reason = "%s: %s" % (type(exc).__name__, exc)
            _log.warning("sweep cell (%s, %s) failed on serial retry: %s",
                         mix.name, policy.name, reason)
            sweep.failed += 1
            sweep.failures.append((mix.name, policy.name, reason))
            continue
        sweep.retried += 1
        sweep.results[key] = result
        sweep.cell_timings[key] = spent


def _run_parallel(
    sweep: SweepResult,
    mixes: Sequence[Mix],
    policies: Sequence[Policy],
    cells: List[Tuple],
    workers: int,
    by_policy: bool = False,
) -> Optional[List[Tuple]]:
    """Execute the two-phase fan-out.

    Returns the list of *lost* cells — cells whose pack timed out
    (``REPRO_CELL_TIMEOUT_S``) or was stranded when the pool died —
    for the caller to retry serially; an empty list means a fully
    healthy parallel sweep.  Returns None when no pool could be created
    or it collapsed before producing any policy-cell results, with the
    cause logged and recorded in ``sweep.fallback_reason``; the sweep
    is still fully computable in-process.
    """
    executions, warmup, config = cells[0][2:5]
    needs_prepare = any(
        p.uses_runtime or p.static_partition or not _is_baseline(p)
        for p in policies
    )
    # One prepare cell per distinct (mix, seed) — with a seeds axis the
    # Baseline/partition prerequisites are per-seed too.
    seen_prepare = set()
    prepare_args = []
    for cell in cells:
        pair = (cell[0].name, cell[5])
        if pair not in seen_prepare:
            seen_prepare.add(pair)
            prepare_args.append(
                (cell[0], tuple(policies), executions, warmup, config,
                 cell[5])
            )
    packs = _pack_cells(cells, workers, by_policy)
    timeout_s = env_cell_timeout_s()
    mix_map = {mix.name: mix for mix in mixes}
    # Without pool reuse the pool is sized to the cell count exactly as
    # before this layer existed; a reusable pool keeps its full width so
    # the generation key (and the forked workers) stay stable across
    # sweeps of different sizes.
    size = workers if pool_reuse_enabled() else min(workers, len(cells))
    try:
        pool, warm = _POOL.acquire(size, _warm_payload(mixes, config))
    except (OSError, RuntimeError, PermissionError) as exc:
        _fall_back(sweep, exc)
        return None
    sweep.warm_starts = 1 if warm else 0
    timed_out = False
    pool_broken = False
    try:
        try:
            if needs_prepare and len(mixes) > 0:
                chunk = _chunksize(len(prepare_args), workers)
                for name, spent in pool.map(
                    _prepare_cell, prepare_args, chunksize=chunk
                ):
                    sweep.prepare_timings[name] = spent
        except (OSError, BrokenProcessPool, RuntimeError,
                PermissionError) as exc:
            # No fork/spawn, no semaphores, or the pool died during the
            # prepare phase: nothing collected yet, recompute serially.
            pool_broken = True
            _fall_back(sweep, exc)
            return None
        if steal_enabled():
            lost, timed_out, pool_broken = _dispatch_stealing(
                sweep, pool, packs, timeout_s, size, mix_map
            )
        else:
            lost, timed_out, pool_broken = _dispatch_static(
                sweep, pool, packs, timeout_s, mix_map
            )
        if lost is None:
            return None
        return lost
    finally:
        # A healthy pool is retained for the next sweep (reuse mode); a
        # timed-out worker may still be running, so abandon it rather
        # than letting shutdown block result delivery on its completion.
        _POOL.release(
            pool,
            keep=not (timed_out or pool_broken),
            wait_workers=not timed_out,
        )


def _dispatch_static(
    sweep: SweepResult,
    pool: ProcessPoolExecutor,
    packs: List[List[Tuple]],
    timeout_s: Optional[float],
    mix_map: Dict[str, Mix],
) -> Tuple[Optional[List[Tuple]], bool, bool]:
    """Pre-PR dispatch: submit every pack up front, collect in order.

    Selected by ``REPRO_STEAL=0``.  Returns ``(lost, timed_out,
    pool_broken)``; ``lost`` is None when the pool died before any
    policy-cell result was collected (whole-sweep serial fallback).
    """
    try:
        sweep.pack_sizes = [len(pack) for pack in packs]
        futures = [(pack, pool.submit(_run_pack_encoded, pack))
                   for pack in packs]
    except (OSError, BrokenProcessPool, RuntimeError,
            PermissionError) as exc:
        _fall_back(sweep, exc)
        return None, False, True
    lost: List[Tuple] = []
    timed_out = False
    pool_broken = False
    for pack, future in futures:
        if pool_broken:
            lost.extend(pack)
            continue
        try:
            if timeout_s is not None:
                payload = future.result(timeout=timeout_s * len(pack))
            else:
                payload = future.result()
        except FutureTimeoutError:
            _log.warning(
                "sweep pack of %d cells exceeded the %.1fs/cell "
                "budget (%s); retrying its cells serially",
                len(pack), timeout_s, ENV_CELL_TIMEOUT_S,
            )
            timed_out = True
            future.cancel()
            lost.extend(pack)
        except BrokenProcessPool as exc:
            _log.warning(
                "worker pool died mid-sweep (%s); retrying the "
                "remaining cells serially", exc,
            )
            pool_broken = True
            lost.extend(pack)
        else:
            _collect_pack(sweep, payload, mix_map)
    return lost, timed_out, pool_broken


def _dispatch_stealing(
    sweep: SweepResult,
    pool: ProcessPoolExecutor,
    packs: List[List[Tuple]],
    timeout_s: Optional[float],
    workers: int,
    mix_map: Dict[str, Mix],
) -> Tuple[List[Tuple], bool, bool]:
    """Adaptive dispatch: seed one pack per worker, steal the rest.

    The remaining packs wait in a largest-first deque and are handed
    out as futures complete; when idle capacity exceeds the queue
    length the largest queued pack is split at a seed-group boundary.
    Which worker runs a pack — and how packs are split — changes
    scheduling only: every cell's result depends on its arguments
    alone, and ``run_policy_batch`` sub-batches are bit-identical to
    the unsplit batch (pinned by the warm-pool determinism suite).

    Per-pack deadlines (``REPRO_CELL_TIMEOUT_S``) run from submission;
    an expired pack is cancelled and its cells lost for the serial
    retry, exactly as in static mode.  Returns ``(lost, timed_out,
    pool_broken)``.
    """
    queue: Deque[List[Tuple]] = deque(
        sorted(packs, key=len, reverse=True)
    )
    while len(queue) < workers and _split_largest(sweep, queue):
        pass
    inflight: Dict[object, Tuple[List[Tuple], Optional[float]]] = {}
    lost: List[Tuple] = []
    timed_out = False
    pool_broken = False
    seeded = 0
    try:
        while queue and seeded < workers:
            _submit_pack(sweep, pool, queue, inflight, timeout_s)
            seeded += 1
    except BrokenProcessPool as exc:
        _log.warning(
            "worker pool died mid-sweep (%s); retrying the remaining "
            "cells serially", exc,
        )
        pool_broken = True
    while inflight and not pool_broken:
        if timeout_s is not None:
            now = time.monotonic()
            budget = max(
                0.0,
                min(d for _, d in inflight.values() if d is not None)
                - now,
            )
        else:
            budget = None
        done, _pending = wait(
            list(inflight), timeout=budget,
            return_when=FIRST_COMPLETED,
        )
        if not done:
            # The wait expired: cancel every overdue pack and keep
            # collecting the rest.
            now = time.monotonic()
            overdue = [
                future for future, (_pack, deadline) in inflight.items()
                if deadline is not None and deadline <= now
            ]
            for future in overdue:
                pack, _deadline = inflight.pop(future)
                _log.warning(
                    "sweep pack of %d cells exceeded the %.1fs/cell "
                    "budget (%s); retrying its cells serially",
                    len(pack), timeout_s, ENV_CELL_TIMEOUT_S,
                )
                timed_out = True
                future.cancel()
                lost.extend(pack)
            continue
        for future in done:
            pack, _deadline = inflight.pop(future)
            try:
                payload = future.result()
            except BrokenProcessPool as exc:
                _log.warning(
                    "worker pool died mid-sweep (%s); retrying the "
                    "remaining cells serially", exc,
                )
                pool_broken = True
                lost.extend(pack)
                continue
            _collect_pack(sweep, payload, mix_map)
        if pool_broken:
            break
        idle = workers - len(inflight)
        while queue and len(queue) < idle and _split_largest(sweep, queue):
            pass
        try:
            while queue and len(inflight) < workers:
                _submit_pack(sweep, pool, queue, inflight, timeout_s)
                sweep.steals += 1
        except BrokenProcessPool as exc:
            _log.warning(
                "worker pool died mid-sweep (%s); retrying the "
                "remaining cells serially", exc,
            )
            pool_broken = True
    if pool_broken:
        for future, (pack, _deadline) in inflight.items():
            future.cancel()
            lost.extend(pack)
        inflight.clear()
    # Packs never dispatched (the pool died, or every worker wedged on
    # a timed-out pack) fall through to the serial retry.
    for pack in queue:
        lost.extend(pack)
    return lost, timed_out, pool_broken


def _submit_pack(
    sweep: SweepResult,
    pool: ProcessPoolExecutor,
    queue: Deque[List[Tuple]],
    inflight: Dict[object, Tuple[List[Tuple], Optional[float]]],
    timeout_s: Optional[float],
) -> None:
    """Dispatch the next queued pack; on submit failure re-queue it."""
    pack = queue.popleft()
    try:
        future = pool.submit(_run_pack_encoded, pack)
    except BrokenProcessPool:
        queue.appendleft(pack)
        raise
    deadline = (
        time.monotonic() + timeout_s * len(pack)
        if timeout_s is not None else None
    )
    inflight[future] = (pack, deadline)
    sweep.pack_sizes.append(len(pack))


def _split_largest(
    sweep: SweepResult, queue: Deque[List[Tuple]]
) -> bool:
    """Split the largest queued pack in two; False when none can split."""
    if not queue:
        return False
    index = max(range(len(queue)), key=lambda i: len(queue[i]))
    pack = queue[index]
    if len(pack) < 2:
        return False
    head, tail = _split_pack(pack)
    del queue[index]
    queue.append(head)
    queue.append(tail)
    sweep.packs_split += 1
    return True


def _split_pack(pack: List[Tuple]) -> Tuple[List[Tuple], List[Tuple]]:
    """Cut a pack near its midpoint, preferring a seed-group boundary.

    A cut inside a seed group merely splits one ``run_policy_batch``
    call into two smaller ones (bit-identical per cell, slightly less
    fusion), so it is allowed when the pack is a single group.
    """
    half = len(pack) // 2
    cut = half
    boundaries = []
    total = 0
    for group in _seed_groups(pack)[:-1]:
        total += len(group)
        boundaries.append(total)
    if boundaries:
        cut = min(boundaries, key=lambda b: abs(b - half))
    return pack[:cut], pack[cut:]


def _collect_pack(
    sweep: SweepResult, payload: object, mix_map: Dict[str, Mix]
) -> None:
    """Merge one pack's worker payload into the sweep.

    Workers return :class:`EncodedPack` columns; plain row lists (test
    doubles monkeypatching the worker) are accepted unchanged.
    """
    if isinstance(payload, EncodedPack):
        sweep.ipc_bytes += payload.nbytes()
        counters = payload.counters
        sweep.kernel_disk_hits += counters.get("kernel_disk_hits", 0)
        sweep.kernels_preloaded += counters.get("kernels_preloaded", 0)
        rows = decode_pack(payload, mix_map)
    else:
        rows = payload
    for key, result, spent in rows:
        sweep.results[key] = result
        sweep.cell_timings[key] = spent


def _fall_back(sweep: SweepResult, exc: BaseException) -> None:
    """Record a whole-sweep serial fallback and discard partial state."""
    reason = "%s: %s" % (type(exc).__name__, exc)
    _log.warning("parallel sweep unavailable (%s); running serially",
                 reason)
    sweep.fallback_reason = reason
    sweep.results.clear()
    sweep.cell_timings.clear()
    sweep.prepare_timings.clear()
    sweep.pack_sizes = []


def _is_baseline(policy: Policy) -> bool:
    return (
        not policy.uses_runtime
        and not policy.static_partition
        and policy.static_bg_grade is None
        and policy.static_fg_grade is None
    )


def _chunksize(items: int, workers: int) -> int:
    """Batch cells so pool IPC overhead amortizes over several cells."""
    return max(1, items // (workers * 4))
