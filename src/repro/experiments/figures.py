"""Per-figure experiment drivers (Section 5 of the paper).

Each ``figN`` function regenerates the rows/series of the corresponding
paper figure and returns a :class:`FigureResult`; the benchmark harness
under ``benchmarks/`` is a thin wrapper around these.  Absolute numbers
come from the simulated substrate, so the reproduction target is the
*shape*: who wins, by roughly what factor, and where crossovers fall.

Runs are cached per process so aggregate figures (10, 13) reuse the
per-mix runs of Figures 9a-9c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.policies import (
    BASELINE,
    DIRIGENT,
    DIRIGENT_FREQ,
    PAPER_POLICIES,
    Policy,
)
from repro.core.runtime import RuntimeOptions
from repro.core.stats import harmonic_mean, mean
from repro.errors import ExperimentError
from repro.experiments.harness import (
    RunResult,
    measure_baseline,
    measure_standalone,
    run_policy,
    run_policy_cached,
)
from repro.experiments.parallel import default_workers, run_grid
from repro.experiments.metrics import histogram, std_reduction
from repro.experiments.mixes import (
    Mix,
    all_single_fg_mixes,
    mix_by_name,
    multi_fg_mixes,
    rotate_bg_mixes,
    single_bg_mixes,
)
from repro.sim.config import MachineConfig, default_executions
from repro.workloads.catalog import (
    foreground_names,
    rotate_pair_names,
    single_bg_names,
    table1_rows,
)


@dataclass(frozen=True)
class FigureResult:
    """Regenerated rows of one paper figure or table.

    Attributes:
        name: Figure identifier (e.g. ``"fig9a"``).
        title: Human-readable description.
        headers: Column names.
        rows: Data rows aligned with ``headers``.
        notes: Free-form remarks (e.g. the paper's reference values).
    """

    name: str
    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]
    notes: Tuple[str, ...] = ()


_RUN_CACHE: Dict[Tuple[str, str, int, int], RunResult] = {}


def _run(
    mix: Mix,
    policy: Policy,
    executions: int,
    seed: int = 0,
    config: Optional[MachineConfig] = None,
    runtime_options: Optional[RuntimeOptions] = None,
) -> RunResult:
    """run_policy with per-process memoization (default options only)."""
    if runtime_options is not None or config is not None:
        return run_policy(
            mix,
            policy,
            executions=executions,
            config=config,
            seed=seed,
            runtime_options=runtime_options,
        )
    key = (mix.name, policy.name, executions, seed)
    result = _RUN_CACHE.get(key)
    if result is None:
        result = run_policy_cached(mix, policy, executions=executions, seed=seed)
        _RUN_CACHE[key] = result
    return result


def _prefetch(
    mixes: Sequence[Mix],
    policies: Sequence[Policy],
    executions: int,
    seed: int,
) -> None:
    """Warm the caches for a mix x policy sweep through the parallel engine.

    With more than one worker available, all cells are computed by
    :func:`repro.experiments.parallel.run_grid` (identical results to
    the serial path) and seeded into the per-process memo; the figure
    drivers then assemble rows from cache hits.  With one worker this is
    a no-op and the drivers compute cells on demand, serially.
    """
    workers = default_workers()
    if workers <= 1:
        return
    sweep = run_grid(
        mixes, policies, executions=executions, seed=seed, workers=workers
    )
    for (mix_name, policy_name), result in sweep.results.items():
        _RUN_CACHE[(mix_name, policy_name, executions, seed)] = result


def clear_run_cache() -> None:
    """Drop memoized policy runs (tests)."""
    _RUN_CACHE.clear()


def _executions(executions: Optional[int]) -> int:
    return default_executions() if executions is None else executions


# ---------------------------------------------------------------------------
# Conceptual figures (Section 1-4 illustrations, regenerated from data)
# ---------------------------------------------------------------------------


def fig1(
    executions: Optional[int] = None, seed: int = 0, bins: int = 18
) -> FigureResult:
    """Figure 1: completion-time pdfs — standalone, contended, "ideal".

    The paper's motivating sketch, regenerated from measured data: the
    standalone curve finishes far ahead of the deadline (wasted headroom),
    free contention pushes mass past the deadline, and Dirigent realizes
    the "ideal" curve concentrated just below it.
    """
    n = _executions(executions)
    mix = mix_by_name("ferret bwaves")
    standalone = measure_standalone(mix.fg_name, executions=n, seed=seed)
    baseline = measure_baseline(mix, executions=n, seed=seed)
    ideal = _run(mix, DIRIGENT, n, seed)
    series = {
        "Standalone": list(standalone.durations_s),
        "Contention": baseline.all_durations,
        "Ideal(Dirigent)": ideal.all_durations,
    }
    lo = min(min(v) for v in series.values())
    hi = max(max(v) for v in series.values())
    rows: List[Tuple[object, ...]] = []
    for name, durations in series.items():
        centers, densities = histogram(durations, bins=bins, lo=lo, hi=hi)
        for center, density in zip(centers, densities):
            rows.append((name, round(center, 4), round(density, 3)))
    return FigureResult(
        name="fig1",
        title="FG Completion-Time PDFs: Standalone / Contention / Ideal",
        headers=("Curve", "ExecTime(s)", "Density"),
        rows=tuple(rows),
        notes=(
            "Deadline (mu+0.3sigma of contention): %.4f s"
            % baseline.deadlines_s[0],
            "Paper: the ideal curve meets throughput and latency targets "
            "precisely, freeing the standalone curve's headroom.",
        ),
    )


def fig2(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 2: reservation-based scheduler efficiency vs. variance.

    Type A tasks (high variance: Baseline completion times) force larger
    per-task reservations than type B tasks (low variance: Dirigent
    completion times), so fewer type-A streams fit on the same capacity.
    """
    from repro.sched.reservation import max_streams, reservation_for

    n = _executions(executions)
    mix = mix_by_name("ferret rs")
    baseline = measure_baseline(mix, executions=n, seed=seed)
    dirigent = _run(mix, DIRIGENT, n, seed)
    type_a = baseline.all_durations
    type_b = dirigent.all_durations
    period = reservation_for(type_a, 0.95) * 1.05
    capacity = 8.0
    rows = (
        (
            "TypeA(Baseline)",
            round(reservation_for(type_a, 0.95), 4),
            max_streams(type_a, period, capacity),
        ),
        (
            "TypeB(Dirigent)",
            round(reservation_for(type_b, 0.95), 4),
            max_streams(type_b, period, capacity),
        ),
    )
    return FigureResult(
        name="fig2",
        title="Reservation-Based Scheduling Efficiency (95%% guarantee, "
        "%.1f-core capacity)" % capacity,
        headers=("TaskType", "ReservationPerTask(s)", "StreamsAdmitted"),
        rows=rows,
        notes=(
            "Stream period: %.4f s" % period,
            "Paper: high-variance (type A) tasks force the scheduler to "
            "expand reservations, wasting capacity.",
        ),
    )


def fig3(**_: object) -> FigureResult:
    """Figure 3: worked example of the execution-time predictor.

    A three-segment profile is traversed under uneven contention; the
    table shows each segment's profiled duration, measured duration, rate
    factor alpha, and Equation 1 penalty, plus the Equation 2 prediction
    made at the end of segment 2 against the actual completion time.
    """
    from repro.core.predictor import CompletionTimePredictor
    from repro.core.profile import ExecutionProfile, ProfileSegment

    dt = 5e-3
    profile = ExecutionProfile(
        "example",
        dt,
        (
            ProfileSegment(dt, 1.2e7),
            ProfileSegment(dt, 0.8e7),
            ProfileSegment(dt, 1.0e7),
        ),
    )
    # Execution with per-segment slowdowns 1.5x, 1.2x, 1.3x.
    slowdowns = (1.5, 1.2, 1.3)
    predictor = CompletionTimePredictor(profile, scaling="alpha")
    bounds = profile.boundaries()
    predictor.start_execution(0.0)
    t = 0.0
    crossings = []
    for bound, slowdown in zip(bounds, slowdowns):
        t += dt * slowdown
        crossings.append(t)
        predictor.observe(t, bound)
    # Re-run to capture the prediction after segment 2.
    predictor2 = CompletionTimePredictor(profile, scaling="alpha")
    predictor2.start_execution(0.0)
    predictor2.observe(crossings[0], bounds[0])
    predictor2.observe(crossings[1], bounds[1])
    prediction_at_2 = predictor2.predict(crossings[1])
    actual = crossings[-1]
    rows = []
    prev_t = 0.0
    for i, (slowdown, cross) in enumerate(zip(slowdowns, crossings)):
        measured = cross - prev_t
        rows.append(
            (
                "S%d" % (i + 1),
                round(dt, 4),
                round(measured, 4),
                round(measured / dt, 3),
                round(measured - dt, 4),
            )
        )
        prev_t = cross
    return FigureResult(
        name="fig3",
        title="Execution-Time Predictor Worked Example (Equations 1-2)",
        headers=(
            "Segment",
            "ProfiledDt(s)",
            "MeasuredDt(s)",
            "Alpha",
            "PenaltyP(s)",
        ),
        rows=tuple(rows),
        notes=(
            "Prediction after segment 2 (Eq. 2, literal alpha scaling): "
            "%.4f s; actual completion: %.4f s" % (prediction_at_2, actual),
            "Paper: the moving average of rate factors scales the "
            "remaining penalties forward.",
        ),
    )


# ---------------------------------------------------------------------------
# Table 1 and workload overviews
# ---------------------------------------------------------------------------


def table1(**_: object) -> FigureResult:
    """Table 1: FG and BG benchmark inventory."""
    return FigureResult(
        name="table1",
        title="FG and BG Benchmarks",
        headers=("Type", "Name", "Description"),
        rows=tuple(table1_rows()),
    )


def fig4(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 4: FG overview — exec time and MPKI, alone vs. contended.

    The contended configuration is one FG task against five ``bwaves``
    BG tasks, as in the paper.
    """
    n = _executions(executions)
    rows: List[Tuple[object, ...]] = []
    for fg in foreground_names():
        alone = measure_standalone(fg, executions=n, seed=seed)
        mix = mix_by_name("%s bwaves" % fg)
        contended = _run(mix, BASELINE, n, seed)
        rows.append(
            (
                fg,
                round(alone.stats.mean_s, 3),
                round(contended.fg_stats.mean_s, 3),
                round(alone.mpki, 3),
                round(contended.fg_mpki, 3),
            )
        )
    return FigureResult(
        name="fig4",
        title="Overview of FG Workloads (alone vs. 5x bwaves)",
        headers=(
            "FG",
            "ExecTimeAlone(s)",
            "ExecTimeContend(s)",
            "MPKIAlone",
            "MPKIContend",
        ),
        rows=tuple(rows),
        notes=(
            "Paper: completion times span 0.5-1.6s; contention inflates "
            "both time and MPKI, most for streamcluster.",
        ),
    )


def fig5(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 5: BG overview — total L3 MPK-FG-I and FG miss share.

    FG is ``ferret``; each BG workload (3 single + 4 rotate pairs) runs
    on the five remaining cores under Baseline.
    """
    n = _executions(executions)
    rows: List[Tuple[object, ...]] = []
    bg_labels = list(single_bg_names()) + list(rotate_pair_names())
    for bg in bg_labels:
        mix = mix_by_name("ferret %s" % bg)
        result = _run(mix, BASELINE, n, seed)
        total_misses = result.fg_misses + result.bg_misses
        total_mpkfi = (
            total_misses / result.fg_instr * 1000.0 if result.fg_instr else 0.0
        )
        share = total_misses and result.fg_misses / total_misses
        rows.append((bg, round(total_mpkfi, 2), round(share, 3)))
    rows.sort(key=lambda r: r[1])
    return FigureResult(
        name="fig5",
        title="Overview of BG Workloads (FG = ferret)",
        headers=("BG", "TotalL3MPK-FG-I", "FGMissShare"),
        rows=tuple(rows),
        notes=(
            "Paper: BG workloads cover a wide spectrum of miss pressure "
            "(total misses per kilo-FG-instruction from ~3 to ~13).",
        ),
    )


# ---------------------------------------------------------------------------
# Predictor accuracy
# ---------------------------------------------------------------------------


def fig6(executions: int = 50, seed: int = 0) -> FigureResult:
    """Figure 6: prediction trace for raytrace with RS, 50 executions.

    Midpoint predictions in the Baseline configuration (no management),
    matching the paper's trace.
    """
    mix = mix_by_name("raytrace rs")
    result = run_policy(
        mix, BASELINE, executions=executions, seed=seed, observe_predictor=True
    )
    rows: List[Tuple[object, ...]] = []
    for record in result.prediction_logs[0][-executions:]:
        rows.append(
            (
                record.execution_index,
                round(record.actual_total_s, 4),
                round(record.predicted_total_s, 4),
                round(record.relative_error, 4),
            )
        )
    return FigureResult(
        name="fig6",
        title="Prediction Trace for Raytrace with RS (Baseline)",
        headers=("Execution", "ExecTime(s)", "Prediction(s)", "Error"),
        rows=tuple(rows),
        notes=("Paper: predicted completion closely tracks actual; errors "
               "stay within a few percent.",),
    )


def fig7(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 7: predictor accuracy for all 35 single-FG mixes.

    Midpoint prediction error (Equation 3) and completion-time standard
    deviation normalized to the mean, per mix, in the Baseline
    configuration.
    """
    n = _executions(executions)
    rows: List[Tuple[object, ...]] = []
    for mix in all_single_fg_mixes():
        result = run_policy(
            mix, BASELINE, executions=n, seed=seed, observe_predictor=True
        )
        errors = [p.relative_error for p in result.prediction_logs[0]]
        if not errors:
            raise ExperimentError("no predictions recorded for %s" % mix.name)
        rows.append(
            (
                mix.name,
                round(mean(errors), 4),
                round(result.fg_stats.normalized_std, 4),
            )
        )
    avg_err = mean([r[1] for r in rows])
    return FigureResult(
        name="fig7",
        title="Prediction Accuracy for all FG-BG mixes (Baseline)",
        headers=("Mix", "AvgError", "NormalizedStd"),
        rows=tuple(rows),
        notes=(
            "Overall average error: %.4f" % avg_err,
            "Paper: overall average 2.4%; all >4%-error points have "
            "streamcluster as FG (worst: rs at 12.5%); std >> error.",
        ),
    )


# ---------------------------------------------------------------------------
# Coarse control / partitioning
# ---------------------------------------------------------------------------


def fig8(
    executions: int = 12,
    seed: int = 0,
    ways_range: Sequence[int] = tuple(range(2, 19)),
    dirigent_executions: int = 60,
) -> FigureResult:
    """Figure 8: exhaustive partition sweep for streamcluster with PCA.

    Sweeps static FG partitions and reports mean FG execution time
    normalized to the smallest partition, plus the partition the coarse
    controller converges to.
    """
    mix = mix_by_name("streamcluster pca")
    sweep_policy = Policy(
        name="PartitionSweep", static_bg_grade=0, static_partition=True
    )
    means: List[Tuple[int, float]] = []
    for ways in ways_range:
        result = run_policy(
            mix,
            sweep_policy,
            deadlines_s=(),
            executions=executions,
            warmup=3,
            seed=seed,
            static_fg_ways=ways,
        )
        means.append((ways, result.fg_stats.mean_s))
    worst = means[0][1]
    rows = [
        (ways, round(m, 4), round(m / worst, 4)) for ways, m in means
    ]
    dirigent = _run(mix, DIRIGENT, dirigent_executions, seed)
    converged = dirigent.partition_history[-1] if dirigent.partition_history else None
    history = dirigent.partition_history
    return FigureResult(
        name="fig8",
        title="Exhaustive Search on Partition Size (streamcluster + PCA)",
        headers=("FGWays", "ExecTimeMean(s)", "NormalizedToSmallest"),
        rows=tuple(rows),
        notes=(
            "Coarse controller partition history: %s" % (history,),
            "Converged FG ways: %s" % converged,
            "Paper: knee of the sweep at 5 ways; Dirigent converges to "
            "the same partition within ~32 executions.",
        ),
    )


# ---------------------------------------------------------------------------
# Main performance comparison
# ---------------------------------------------------------------------------


def _mix_policy_rows(
    mixes: Sequence[Mix], executions: int, seed: int
) -> List[Tuple[object, ...]]:
    rows: List[Tuple[object, ...]] = []
    _prefetch(mixes, PAPER_POLICIES, executions, seed)
    for mix in mixes:
        baseline = measure_baseline(mix, executions=executions, seed=seed)
        for policy in PAPER_POLICIES:
            result = _run(mix, policy, executions, seed)
            bg_rel = (
                result.bg_instr_per_s / baseline.bg_instr_per_s
                if baseline.bg_instr_per_s
                else 0.0
            )
            rows.append(
                (
                    mix.name,
                    policy.name,
                    round(result.fg_success_ratio, 3),
                    round(bg_rel, 3),
                    round(result.fg_stats.mean_s, 4),
                    round(result.fg_stats.std_s, 4),
                )
            )
    return rows


def fig9a(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 9a: FG success and BG throughput, single-BG mixes."""
    rows = _mix_policy_rows(single_bg_mixes(), _executions(executions), seed)
    return FigureResult(
        name="fig9a",
        title="FG and BG Performance: Single BG Workload Mixes",
        headers=("Mix", "Policy", "FGSuccess", "BGThroughput", "FGMean(s)", "FGStd(s)"),
        rows=tuple(rows),
        notes=("BG throughput normalized to Baseline per mix.",),
    )


def fig9b(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 9b: FG success and BG throughput, rotate-BG mixes."""
    rows = _mix_policy_rows(rotate_bg_mixes(), _executions(executions), seed)
    return FigureResult(
        name="fig9b",
        title="FG and BG Performance: Rotate BG Workload Mixes",
        headers=("Mix", "Policy", "FGSuccess", "BGThroughput", "FGMean(s)", "FGStd(s)"),
        rows=tuple(rows),
        notes=("BG throughput normalized to Baseline per mix.",),
    )


def fig9c(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 9c: FG success and BG throughput, multi-FG mixes."""
    rows = _mix_policy_rows(multi_fg_mixes(), _executions(executions), seed)
    return FigureResult(
        name="fig9c",
        title="FG and BG Performance: Multiple FG Workload Mixes",
        headers=("Mix", "Policy", "FGSuccess", "BGThroughput", "FGMean(s)", "FGStd(s)"),
        rows=tuple(rows),
        notes=("Total FG+BG processes always equal the core count.",),
    )


def _summary(
    name: str,
    title: str,
    mixes: Sequence[Mix],
    executions: int,
    seed: int,
    paper_note: str,
) -> FigureResult:
    rows: List[Tuple[object, ...]] = []
    _prefetch(mixes, PAPER_POLICIES, executions, seed)
    for policy in PAPER_POLICIES:
        successes: List[float] = []
        bg_rels: List[float] = []
        for mix in mixes:
            baseline = measure_baseline(mix, executions=executions, seed=seed)
            result = _run(mix, policy, executions, seed)
            successes.append(result.fg_success_ratio)
            if baseline.bg_instr_per_s > 0:
                bg_rels.append(
                    max(result.bg_instr_per_s / baseline.bg_instr_per_s, 1e-9)
                )
        rows.append(
            (
                policy.name,
                round(mean(successes), 3),
                round(harmonic_mean(bg_rels), 3),
            )
        )
    return FigureResult(
        name=name,
        title=title,
        headers=("Policy", "FGSuccess(arith mean)", "BGThroughput(harm mean)"),
        rows=tuple(rows),
        notes=(paper_note,),
    )


def fig10(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 10: summary of all 35 single-FG mixes."""
    return _summary(
        "fig10",
        "Summary of All Single FG Workload Mixes",
        all_single_fg_mixes(),
        _executions(executions),
        seed,
        "Paper: Baseline ~0.59/1.00, StaticFreq ~0.87/0.60, StaticBoth "
        "~0.99/0.61, DirigentFreq ~0.95/0.85, Dirigent ~0.99/0.92.",
    )


def fig13(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 13: summary of all multi-FG mixes."""
    return _summary(
        "fig13",
        "Summary of All Multiple FG Workload Mixes",
        multi_fg_mixes(),
        _executions(executions),
        seed,
        "Paper: same ordering as the single-FG summary; Dirigent keeps "
        ">98% success with the best managed BG throughput.",
    )


# ---------------------------------------------------------------------------
# Distribution views
# ---------------------------------------------------------------------------


def fig11(
    executions: Optional[int] = None, seed: int = 0, bins: int = 24
) -> FigureResult:
    """Figure 11: execution-time pdf curves for ferret with five RS BGs."""
    n = _executions(executions)
    mix = mix_by_name("ferret rs")
    _prefetch([mix], PAPER_POLICIES, n, seed)
    results = {p.name: _run(mix, p, n, seed) for p in PAPER_POLICIES}
    lo = min(min(r.all_durations) for r in results.values())
    hi = max(max(r.all_durations) for r in results.values())
    rows: List[Tuple[object, ...]] = []
    for policy_name, result in results.items():
        centers, densities = histogram(
            result.all_durations, bins=bins, lo=lo, hi=hi
        )
        for center, density in zip(centers, densities):
            rows.append((policy_name, round(center, 4), round(density, 3)))
    return FigureResult(
        name="fig11",
        title="Execution Time Probability Density (ferret + 5x RS)",
        headers=("Policy", "ExecTime(s)", "Density"),
        rows=tuple(rows),
        notes=(
            "Paper: Baseline/StaticFreq stretch wide; DirigentFreq pulls "
            "StaticBoth's two peaks together; Dirigent merges them.",
        ),
    )


def fig12(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 12: BG core frequency distribution, DirigentFreq vs Dirigent."""
    n = _executions(executions)
    mix = mix_by_name("ferret rs")
    rows: List[Tuple[object, ...]] = []
    config = MachineConfig()
    for policy in (DIRIGENT_FREQ, DIRIGENT):
        result = _run(mix, policy, n, seed)
        total = sum(result.bg_grade_histogram.values())
        for grade in range(config.num_grades):
            count = result.bg_grade_histogram.get(grade, 0)
            rows.append(
                (
                    policy.name,
                    "%.1fGHz" % config.freq_grades_ghz[grade],
                    round(count / total, 3) if total else 0.0,
                )
            )
    return FigureResult(
        name="fig12",
        title="BG Core Frequency Distribution (ferret + 5x RS)",
        headers=("Policy", "Frequency", "Probability"),
        rows=tuple(rows),
        notes=(
            "Paper: cache partitioning lets BG cores run at much higher "
            "frequency on average under Dirigent than DirigentFreq.",
        ),
    )


def fig14(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Figure 14: normalized standard deviation for multi-FG mixes."""
    n = _executions(executions)
    rows: List[Tuple[object, ...]] = []
    mixes = multi_fg_mixes()
    _prefetch(mixes, PAPER_POLICIES, n, seed)
    for mix in mixes:
        baseline = measure_baseline(mix, executions=n, seed=seed)
        base_std = baseline.fg_stats.std_s
        for policy in PAPER_POLICIES:
            result = _run(mix, policy, n, seed)
            rows.append(
                (
                    mix.name,
                    policy.name,
                    round(result.fg_stats.std_s / base_std, 3)
                    if base_std > 0
                    else 0.0,
                )
            )
    return FigureResult(
        name="fig14",
        title="Normalized Standard Deviation of Multiple FG Workload Mixes",
        headers=("Mix", "Policy", "StdOverBaseline"),
        rows=tuple(rows),
        notes=(
            "Paper: variance grows with more FG copies sharing the "
            "partition, yet Dirigent still reduces it sharply.",
        ),
    )


def fig15(
    executions: Optional[int] = None,
    seed: int = 0,
    factors: Sequence[float] = (1.00, 1.03, 1.06, 1.09, 1.12, 1.15, 1.18),
    warmup: int = 40,
) -> FigureResult:
    """Figure 15: FG throughput vs. BG performance tradeoff.

    One raytrace FG against five bwaves BGs; the target completion time
    sweeps from the standalone mean upward.  Reports mean FG time
    normalized to standalone, FG sigma normalized to Baseline, and BG
    throughput normalized to Baseline.

    Tight targets are only reachable once the coarse controller has
    grown the FG partition, so the measurement window opens after a
    longer-than-usual warmup (the paper measures the converged system).
    """
    n = _executions(executions)
    mix = mix_by_name("raytrace bwaves")
    standalone = measure_standalone(mix.fg_name, executions=n, seed=seed)
    baseline = measure_baseline(mix, executions=n, seed=seed)
    rows: List[Tuple[object, ...]] = []
    for factor in factors:
        deadline = standalone.stats.mean_s * factor
        result = run_policy(
            mix,
            DIRIGENT,
            deadlines_s=(deadline,),
            executions=n,
            warmup=warmup,
            seed=seed,
        )
        rows.append(
            (
                "%.2fx" % factor,
                round(result.fg_stats.mean_s / standalone.stats.mean_s, 3),
                round(result.fg_stats.std_s / baseline.fg_stats.std_s, 3)
                if baseline.fg_stats.std_s > 0
                else 0.0,
                round(result.bg_instr_per_s / baseline.bg_instr_per_s, 3),
                round(result.fg_success_ratio, 3),
            )
        )
    return FigureResult(
        name="fig15",
        title="Tradeoff Between FG Throughput and BG Performance "
        "(raytrace + 5x bwaves)",
        headers=(
            "Target",
            "FGTimeAvg(vs standalone)",
            "FGTimeStd(vs Baseline)",
            "BGThroughput",
            "FGSuccess",
        ),
        rows=tuple(rows),
        notes=(
            "Paper: Dirigent tracks the target across the sweep (except "
            "1.00x, where collocation leaves no slack) and converts FG "
            "slack into BG throughput.",
        ),
    )


def headline(executions: Optional[int] = None, seed: int = 0) -> FigureResult:
    """Headline claims: sigma reduction vs. BG cost, and the gain over
    coarse time scale schemes.
    """
    n = _executions(executions)
    mixes = all_single_fg_mixes()
    _prefetch(mixes, PAPER_POLICIES, n, seed)
    reductions: Dict[str, List[float]] = {"DirigentFreq": [], "Dirigent": []}
    bg_costs: Dict[str, List[float]] = {"DirigentFreq": [], "Dirigent": []}
    static_bg: List[float] = []
    dirigent_bg: List[float] = []
    for mix in mixes:
        baseline = measure_baseline(mix, executions=n, seed=seed)
        static_both = _run(
            mix, [p for p in PAPER_POLICIES if p.name == "StaticBoth"][0], n, seed
        )
        for policy_name in ("DirigentFreq", "Dirigent"):
            policy = [p for p in PAPER_POLICIES if p.name == policy_name][0]
            result = _run(mix, policy, n, seed)
            reductions[policy_name].append(
                std_reduction(baseline.fg_stats.std_s, result.fg_stats.std_s)
            )
            bg_costs[policy_name].append(
                1.0 - result.bg_instr_per_s / baseline.bg_instr_per_s
            )
            if policy_name == "Dirigent":
                dirigent_bg.append(result.bg_instr_per_s)
                static_bg.append(static_both.bg_instr_per_s)
    gain_vs_static = mean(
        [d / s for d, s in zip(dirigent_bg, static_bg) if s > 0]
    )
    rows = (
        (
            "DirigentFreq",
            round(mean(reductions["DirigentFreq"]), 3),
            round(mean(bg_costs["DirigentFreq"]), 3),
        ),
        (
            "Dirigent",
            round(mean(reductions["Dirigent"]), 3),
            round(mean(bg_costs["Dirigent"]), 3),
        ),
    )
    return FigureResult(
        name="headline",
        title="Headline: sigma reduction vs. BG performance cost",
        headers=("Policy", "AvgStdReduction", "AvgBGPerfLoss"),
        rows=rows,
        notes=(
            "Dirigent BG throughput vs StaticBoth (coarse schemes): "
            "%.2fx" % gain_vs_static,
            "Paper: Dirigent 85% sigma reduction at 9% BG loss "
            "(DirigentFreq: 70% at 15%); ~30% better BG throughput than "
            "coarse time scale schemes.",
        ),
    )


#: Registry of all figure drivers by identifier.
FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "table1": table1,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9a": fig9a,
    "fig9b": fig9b,
    "fig9c": fig9c,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "headline": headline,
}
