"""Persistent content-addressed cache for experiment results.

Policy runs, baselines, standalone measurements, offline profiles, and
partition-sweep results are pure functions of (machine configuration,
workload/mix, run parameters, seed, simulator code).  This module gives
them a durable home under ``.repro_cache/`` so repeated figure
generation — and, crucially, parallel sweeps that fan cells out across
worker processes — never recompute a cell twice.

Keys are sha256 digests over the canonical ``repr`` of every key part
plus a *code version tag* derived from the source bytes of the modules
that determine simulation results; editing the simulator invalidates
the whole cache automatically.  Values are pickled.  Writes go to a
temporary file in the destination directory followed by an atomic
``os.replace``, so concurrent writers (the parallel sweep engine) can
race on the same cell safely: one of them wins, both are correct.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache root (default ``.repro_cache`` in the
  working directory).
* ``REPRO_CACHE=0`` — disable reads and writes entirely.
"""

from __future__ import annotations

import ast
import hashlib
import json
import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.sim.config import (
    DEFAULT_CACHE_DIR,
    cache_dir,
    cache_enabled,
    kernel_disk_cache_enabled,
)

_log = logging.getLogger(__name__)

#: Everything a truncated, corrupted, or version-skewed pickle can raise
#: while being read back.  ``OSError`` covers I/O failures mid-read;
#: ``EOFError``/``UnpicklingError`` cover truncated writers;
#: ``AttributeError``/``ImportError``/``IndexError`` are pickle's
#: documented failure modes for stale class layouts; ``ValueError`` and
#: ``KeyError`` surface from corrupt frame headers and memo references.
#: Anything outside this list is a genuine bug and propagates.
_CORRUPT_ENTRY_ERRORS = (
    OSError,
    EOFError,
    pickle.UnpicklingError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    ValueError,
)

#: Result namespaces; one subdirectory each.
KINDS = ("profile", "baseline", "standalone", "partition", "run")

_code_tag: Optional[str] = None


def code_version_tag() -> str:
    """Digest of the result-determining source files (memoized).

    Covers every module of :mod:`repro.sim`, :mod:`repro.workloads`, and
    :mod:`repro.core`, plus the harness itself: a change to any of them
    can change simulation output, so the tag is folded into every cache
    key and stale entries become unreachable rather than wrong.
    """
    global _code_tag
    if _code_tag is None:
        import repro.core as core_pkg
        import repro.sim as sim_pkg
        import repro.workloads as workloads_pkg

        digest = hashlib.sha256()
        sources = []
        for pkg in (sim_pkg, workloads_pkg, core_pkg):
            sources.extend(sorted(Path(pkg.__file__).parent.glob("*.py")))
        here = Path(__file__).parent
        sources.extend(
            here / name for name in ("harness.py", "mixes.py", "metrics.py")
        )
        for source in sources:
            digest.update(source.name.encode("utf-8"))
            digest.update(source.read_bytes())
        _code_tag = digest.hexdigest()[:16]
    return _code_tag


def cache_key(kind: str, parts: Sequence[object]) -> str:
    """Content-addressed key for ``parts`` within the ``kind`` namespace.

    Parts are folded in through their ``repr``; the frozen dataclasses
    used as key material (``MachineConfig``, ``Mix``, ``Policy``) render
    every field, so two cells differing in any one field — or in the
    seed — get distinct keys.
    """
    digest = hashlib.sha256()
    digest.update(code_version_tag().encode("utf-8"))
    digest.update(b"\x1f")
    digest.update(kind.encode("utf-8"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode("utf-8"))
    return digest.hexdigest()


class DiskCache:
    """Pickle store of experiment results under ``root``/``kind``/``key``."""

    def __init__(
        self, root: Optional[os.PathLike] = None, enabled: bool = True
    ) -> None:
        self.root = Path(root if root is not None else DEFAULT_CACHE_DIR)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        #: Entries dropped because they could not be read back (see
        #: ``_CORRUPT_ENTRY_ERRORS``); surfaced by ``repro cache stats``.
        self.corrupt_drops = 0

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / (key + ".pkl")

    def get(self, kind: str, parts: Sequence[object]) -> Tuple[bool, Any]:
        """Look a cell up; returns ``(hit, value)``.

        Unreadable or corrupt entries (killed writer, truncated disk)
        count as misses and are deleted so they cannot wedge the cache.
        """
        if not self.enabled:
            return False, None
        path = self._path(kind, cache_key(kind, parts))
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except _CORRUPT_ENTRY_ERRORS as exc:
            self.corrupt_drops += 1
            _log.debug(
                "dropping unreadable cache entry %s (%s: %s)",
                path, type(exc).__name__, exc,
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, kind: str, parts: Sequence[object], value: Any) -> None:
        """Store a cell (best-effort; atomic against concurrent writers)."""
        if not self.enabled:
            return
        path = self._path(kind, cache_key(kind, parts))
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PickleError):
            # A full disk or an unpicklable payload degrades to
            # recomputation, never to a failed experiment.
            pass

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for kind in KINDS:
            kind_dir = self.root / kind
            if not kind_dir.is_dir():
                continue
            for entry in kind_dir.glob("*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                kind_dir.rmdir()
            except OSError:
                pass
        try:
            self.root.rmdir()
        except OSError:
            pass
        return removed

    def stats(self) -> Dict[str, Any]:
        """Entry counts and byte totals per kind, plus process hit rates."""
        entries: Dict[str, int] = {}
        total_bytes = 0
        for kind in KINDS:
            kind_dir = self.root / kind
            count = 0
            if kind_dir.is_dir():
                for entry in kind_dir.glob("*.pkl"):
                    count += 1
                    try:
                        total_bytes += entry.stat().st_size
                    except OSError:
                        pass
            entries[kind] = count
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "code_version": code_version_tag(),
            "entries": entries,
            "total_entries": sum(entries.values()),
            "total_bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_drops": self.corrupt_drops,
        }


#: Subdirectory of the cache root holding persisted kernel sources.
KERNEL_KIND = "kernels"


class KernelDiskCache:
    """Persistent store of generated span-kernel *sources*.

    Unlike :class:`DiskCache` this holds text, not pickles: each entry
    is a small JSON document ``{shape, tag, sha256, source}`` named by
    the digest of ``(code_version_tag, repr(shape))``.  Any process —
    a fresh sweep worker, the CLI, the lint audit — can load a source
    instead of re-running ``_generate_source``; a warm pool initializer
    preloads the whole namespace in one pass.

    Safety model: the filename digest folds in the code-version tag, so
    editing the simulator orphans old entries instead of serving stale
    code; every load re-hashes the stored source against the recorded
    digest, so torn or doctored writes are dropped (and counted in
    ``corrupt_drops``) rather than ever reaching ``exec``; and lint rule
    GEN003 audits each on-disk source byte-for-byte against a fresh
    ``generate_kernel_source(shape)``.
    """

    def __init__(
        self, root: Optional[os.PathLike] = None, enabled: bool = True
    ) -> None:
        self.root = Path(root if root is not None else DEFAULT_CACHE_DIR)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Entries dropped because they were unreadable or failed the
        #: digest check; surfaced by ``repro cache kernels stats``.
        self.corrupt_drops = 0

    def _dir(self) -> Path:
        return self.root / KERNEL_KIND

    def _path(self, shape: Tuple[object, ...]) -> Path:
        digest = hashlib.sha256()
        digest.update(code_version_tag().encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(repr(shape).encode("utf-8"))
        return self._dir() / (digest.hexdigest() + ".json")

    def _drop(self, path: Path, why: str) -> None:
        self.corrupt_drops += 1
        _log.debug("dropping kernel cache entry %s (%s)", path, why)
        try:
            os.unlink(path)
        except OSError:
            pass

    def _read_entry(self, path: Path) -> Optional[Dict[str, Any]]:
        """Load and verify one entry file; None (and drop) on any damage."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except _CORRUPT_ENTRY_ERRORS as exc:
            self._drop(path, "%s: %s" % (type(exc).__name__, exc))
            return None
        source = entry.get("source") if isinstance(entry, dict) else None
        recorded = entry.get("sha256") if isinstance(entry, dict) else None
        if not isinstance(source, str) or not isinstance(recorded, str):
            self._drop(path, "malformed entry")
            return None
        actual = hashlib.sha256(source.encode("utf-8")).hexdigest()
        if actual != recorded:
            self._drop(path, "digest mismatch")
            return None
        return entry

    def load(self, shape: Tuple[object, ...]) -> Optional[str]:
        """Digest-verified source for ``shape``, or None on miss/damage."""
        if not self.enabled:
            return None
        path = self._path(shape)
        entry = self._read_entry(path)
        if entry is None:
            self.misses += 1
            return None
        if entry.get("shape") != repr(shape):
            # A digest collision is implausible; a hand-copied file is
            # not.  Treat it like corruption.
            self._drop(path, "shape mismatch")
            self.misses += 1
            return None
        self.hits += 1
        return entry["source"]

    def store(self, shape: Tuple[object, ...], source: str) -> None:
        """Persist a source (best-effort; atomic against racers)."""
        if not self.enabled:
            return
        path = self._path(shape)
        entry = {
            "shape": repr(shape),
            "tag": code_version_tag(),
            "sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
            "source": source,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stores += 1
        except OSError:
            pass

    def entries(self) -> Iterator[Tuple[Tuple[object, ...], str]]:
        """Yield ``(shape, source)`` for every valid current-tag entry.

        Stale-tag entries (left behind by older code versions) are
        skipped silently — they are unreachable, not corrupt.  Damaged
        files are dropped exactly as :meth:`load` would drop them.
        """
        if not self.enabled or not self._dir().is_dir():
            return
        tag = code_version_tag()
        for path in sorted(self._dir().glob("*.json")):
            entry = self._read_entry(path)
            if entry is None or entry.get("tag") != tag:
                continue
            try:
                shape = ast.literal_eval(entry.get("shape", ""))
            except (ValueError, SyntaxError):
                self._drop(path, "unparseable shape")
                continue
            if not isinstance(shape, tuple):
                self._drop(path, "non-tuple shape")
                continue
            yield shape, entry["source"]

    def clear(self) -> int:
        """Delete every kernel entry; returns the number removed."""
        removed = 0
        kind_dir = self._dir()
        if kind_dir.is_dir():
            for entry in kind_dir.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                kind_dir.rmdir()
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, Any]:
        """Entry/byte totals on disk plus this process's hit counters."""
        entries = 0
        stale = 0
        total_bytes = 0
        tag = code_version_tag()
        if self._dir().is_dir():
            for path in self._dir().glob("*.json"):
                entries += 1
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    pass
                entry = self._read_entry(path)
                if entry is not None and entry.get("tag") != tag:
                    stale += 1
        return {
            "root": str(self._dir()),
            "enabled": self.enabled,
            "code_version": tag,
            "entries": entries,
            "stale_entries": stale,
            "total_bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_drops": self.corrupt_drops,
        }


_ACTIVE: Optional[DiskCache] = None

_ACTIVE_KERNELS: Optional[KernelDiskCache] = None


def get_kernel_cache() -> KernelDiskCache:
    """Process-wide kernel-source cache bound to the current environment.

    Mirrors :func:`get_cache`: the root and the enabled flag are
    re-read on every call, and the store is live only when both the
    master cache switch and ``REPRO_KERNEL_DISK_CACHE`` allow it.
    """
    global _ACTIVE_KERNELS
    root = cache_dir()
    enabled = cache_enabled() and kernel_disk_cache_enabled()
    if (
        _ACTIVE_KERNELS is None
        or str(_ACTIVE_KERNELS.root) != root
        or _ACTIVE_KERNELS.enabled != enabled
    ):
        _ACTIVE_KERNELS = KernelDiskCache(root, enabled)
    return _ACTIVE_KERNELS


def get_cache() -> DiskCache:
    """Process-wide cache bound to the current environment settings.

    Re-reads ``REPRO_CACHE_DIR``/``REPRO_CACHE`` on every call so tests
    (and worker processes inheriting a parent's environment) pick up
    redirected roots without an explicit reconfiguration hook.
    """
    global _ACTIVE
    root = cache_dir()
    enabled = cache_enabled()
    if (
        _ACTIVE is None
        or str(_ACTIVE.root) != root
        or _ACTIVE.enabled != enabled
    ):
        _ACTIVE = DiskCache(root, enabled)
    return _ACTIVE
