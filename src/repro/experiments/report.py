"""Fixed-width text rendering of figure results."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.figures import FigureResult
from repro.experiments.parallel import SweepResult


def sweep_summary(sweep: SweepResult) -> Tuple[str, ...]:
    """One-line-per-fact summary of how a sweep actually executed.

    Surfaces the dispatch counters that matter when a sweep misbehaves
    (retries, failures, degraded serial fallback) alongside the
    warm-worker telemetry (pool reuse, kernel preloads, steals, IPC
    volume).  Zero-valued degradation counters are omitted so a healthy
    sweep reads as two short lines.
    """
    lines: List[str] = []
    mode = "%s, %d worker%s" % (
        sweep.mode, sweep.workers, "" if sweep.workers == 1 else "s"
    )
    if sweep.fallback_reason:
        mode += " (fallback: %s)" % sweep.fallback_reason
    lines.append("sweep: %d cells in %.2fs (%s)"
                 % (len(sweep.results), sweep.elapsed_s, mode))
    if sweep.pack_sizes:
        lines.append("packs: %d sized %s" % (
            len(sweep.pack_sizes),
            "/".join(str(size) for size in sweep.pack_sizes),
        ))
    if sweep.retried or sweep.failed:
        lines.append("degraded: %d cell(s) retried serially, %d failed"
                     % (sweep.retried, sweep.failed))
    warm_bits = []
    if sweep.warm_starts:
        warm_bits.append("%d warm start(s)" % sweep.warm_starts)
    if sweep.kernels_preloaded:
        warm_bits.append("%d kernel(s) preloaded" % sweep.kernels_preloaded)
    if sweep.kernel_disk_hits:
        warm_bits.append("%d kernel disk hit(s)" % sweep.kernel_disk_hits)
    if warm_bits:
        lines.append("warm workers: %s" % ", ".join(warm_bits))
    if sweep.steals or sweep.packs_split:
        lines.append("stealing: %d steal(s), %d pack(s) split"
                     % (sweep.steals, sweep.packs_split))
    if sweep.ipc_bytes:
        lines.append("transport: %d column bytes from workers"
                     % sweep.ipc_bytes)
    return tuple(lines)


def render(
    result: FigureResult,
    max_rows: int = 0,
    sweep: Optional[SweepResult] = None,
) -> str:
    """Render a :class:`FigureResult` as an aligned text table.

    Args:
        result: The figure data to render.
        max_rows: Truncate to this many rows (0 = no limit).
        sweep: When given, append that sweep's execution summary as a
            footer (dispatch mode, pack sizes, retries, warm-worker
            counters).
    """
    rows = [tuple(str(cell) for cell in row) for row in result.rows]
    shown = rows if max_rows <= 0 else rows[:max_rows]
    headers = tuple(str(h) for h in result.headers)
    widths = [len(h) for h in headers]
    for row in shown:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines: List[str] = [
        "%s — %s" % (result.name, result.title),
        fmt(headers),
        fmt(tuple("-" * w for w in widths)),
    ]
    lines.extend(fmt(row) for row in shown)
    if max_rows and len(rows) > max_rows:
        lines.append("... (%d more rows)" % (len(rows) - max_rows))
    for note in result.notes:
        lines.append("note: %s" % note)
    if sweep is not None:
        lines.extend(sweep_summary(sweep))
    return "\n".join(lines)
