"""Fixed-width text rendering of figure results."""

from __future__ import annotations

from typing import List

from repro.experiments.figures import FigureResult


def render(result: FigureResult, max_rows: int = 0) -> str:
    """Render a :class:`FigureResult` as an aligned text table.

    Args:
        result: The figure data to render.
        max_rows: Truncate to this many rows (0 = no limit).
    """
    rows = [tuple(str(cell) for cell in row) for row in result.rows]
    shown = rows if max_rows <= 0 else rows[:max_rows]
    headers = tuple(str(h) for h in result.headers)
    widths = [len(h) for h in headers]
    for row in shown:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines: List[str] = [
        "%s — %s" % (result.name, result.title),
        fmt(headers),
        fmt(tuple("-" * w for w in widths)),
    ]
    lines.extend(fmt(row) for row in shown)
    if max_rows and len(rows) > max_rows:
        lines.append("... (%d more rows)" % (len(rows) - max_rows))
    for note in result.notes:
        lines.append("note: %s" % note)
    return "\n".join(lines)
