"""Metrics for the paper's evaluation (Section 5.4).

* **FG success ratio** — fraction of FG executions completing within the
  deadline ``mu_baseline + 0.3 * sigma_baseline``.
* **BG performance** — total BG instructions per second, normalized to
  the Baseline configuration (unconstrained contention is the BG
  optimum).
* **Variation** — standard deviation of FG execution time, absolute and
  normalized (to the mean, or to Baseline's sigma).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.stats import mean, stddev
from repro.errors import ExperimentError

#: Deadline slack factor: the paper sets each FG deadline to
#: ``mu_baseline + 0.3 * sigma_baseline``.
DEADLINE_SIGMA_FACTOR = 0.3


@dataclass(frozen=True)
class DurationStats:
    """Summary statistics of a set of FG execution times.

    Attributes:
        count: Number of executions.
        mean_s: Mean execution time.
        std_s: Population standard deviation.
        min_s: Fastest execution.
        max_s: Slowest execution.
    """

    count: int
    mean_s: float
    std_s: float
    min_s: float
    max_s: float

    @property
    def normalized_std(self) -> float:
        """Standard deviation over mean (the paper's "Normalized Std")."""
        if self.mean_s <= 0:
            return 0.0
        return self.std_s / self.mean_s


def duration_stats(durations: Sequence[float]) -> DurationStats:
    """Summarize a sequence of execution times."""
    if not durations:
        raise ExperimentError("no durations to summarize")
    return DurationStats(
        count=len(durations),
        mean_s=mean(durations),
        std_s=stddev(durations),
        min_s=min(durations),
        max_s=max(durations),
    )


def deadline_for(stats: DurationStats, factor: float = DEADLINE_SIGMA_FACTOR) -> float:
    """The paper's deadline definition: ``mu + factor * sigma``."""
    return stats.mean_s + factor * stats.std_s


def success_ratio(durations: Sequence[float], deadline_s: float) -> float:
    """Fraction of executions completing within ``deadline_s``."""
    if not durations:
        raise ExperimentError("no durations for success ratio")
    if deadline_s <= 0:
        raise ExperimentError("deadline must be positive")
    return sum(1 for d in durations if d <= deadline_s) / len(durations)


def histogram(
    durations: Sequence[float],
    bins: int = 30,
    lo: float = None,
    hi: float = None,
) -> Tuple[List[float], List[float]]:
    """Probability-density histogram (Figure 11's pdf curves).

    Returns bin centers and densities normalized so the histogram
    integrates to one.
    """
    if not durations:
        raise ExperimentError("no durations to histogram")
    if bins < 1:
        raise ExperimentError("bins must be >= 1")
    lo = min(durations) if lo is None else lo
    hi = max(durations) if hi is None else hi
    if hi <= lo:
        hi = lo + 1e-9
    width = (hi - lo) / bins
    counts = [0] * bins
    for d in durations:
        idx = int((d - lo) / width)
        idx = min(max(idx, 0), bins - 1)
        counts[idx] += 1
    total = len(durations)
    centers = [lo + (i + 0.5) * width for i in range(bins)]
    densities = [c / (total * width) for c in counts]
    return centers, densities


def std_reduction(baseline_std: float, managed_std: float) -> float:
    """Relative reduction in execution-time sigma vs. Baseline.

    The paper's headline: Dirigent achieves an 85% reduction on average.
    """
    if baseline_std <= 0:
        return 0.0
    return 1.0 - managed_std / baseline_std


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ExperimentError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ExperimentError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
